"""Run ledgers: per-run I/O accounting and per-shard ledger merging.

:class:`RunResult` is the quantity every figure in the paper plots -- update
and query page I/O for one driven index.  It historically lived in
``workload.driver``; it moved here so the sharded engine can merge per-shard
ledgers without importing the driver (the driver re-exports it for
back-compat).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.storage.iostats import IOCounter


@dataclass
class RunResult:
    """I/O accounting for one driver run."""

    kind: str
    n_updates: int = 0
    n_queries: int = 0
    result_count: int = 0
    update_io: IOCounter = field(default_factory=IOCounter)
    query_io: IOCounter = field(default_factory=IOCounter)
    wall_clock_s: float = 0.0
    #: Batched execution: how many times the update buffer drained, how many
    #: incoming updates were absorbed by coalescing (never applied), and how
    #: many index operations the flushes actually performed.  All zero for
    #: unbatched runs.
    n_flushes: int = 0
    n_coalesced: int = 0
    n_applied: int = 0

    @property
    def update_ios(self) -> int:
        return self.update_io.total

    @property
    def query_ios(self) -> int:
        return self.query_io.total

    @property
    def total_ios(self) -> int:
        return self.update_ios + self.query_ios

    @property
    def ios_per_update(self) -> float:
        return self.update_ios / self.n_updates if self.n_updates else 0.0

    @property
    def ios_per_query(self) -> float:
        return self.query_ios / self.n_queries if self.n_queries else 0.0

    def to_dict(self) -> Dict[str, object]:
        """The run ledger as JSON-ready plain data (bench/metrics schema)."""
        return {
            "kind": self.kind,
            "n_updates": self.n_updates,
            "n_queries": self.n_queries,
            "result_count": self.result_count,
            "update_io": self.update_io.to_dict(),
            "query_io": self.query_io.to_dict(),
            "ios_per_update": self.ios_per_update,
            "ios_per_query": self.ios_per_query,
            "total_ios": self.total_ios,
            "wall_clock_s": self.wall_clock_s,
            "n_flushes": self.n_flushes,
            "n_coalesced": self.n_coalesced,
            "n_applied": self.n_applied,
        }

    def __repr__(self) -> str:
        return (
            f"RunResult({self.kind}: {self.n_updates}u/{self.n_queries}q, "
            f"update={self.update_ios} query={self.query_ios} "
            f"total={self.total_ios} I/Os)"
        )


def merge_results(
    results: Iterable[RunResult], kind: Optional[str] = None
) -> RunResult:
    """Merge per-shard ledgers into one.

    Counters add; ``n_queries`` adds *fan-outs* (a range query touching two
    shards counts once per shard it visited), which is the honest per-shard
    work measure.  Wall clocks add too -- the engine replays shards in one
    process; a parallel deployment would take the max instead.
    """
    items: List[RunResult] = list(results)
    if not items:
        raise ValueError("cannot merge zero RunResults")
    merged = RunResult(kind=kind if kind is not None else items[0].kind)
    for item in items:
        merged.n_updates += item.n_updates
        merged.n_queries += item.n_queries
        merged.result_count += item.result_count
        merged.update_io = merged.update_io + item.update_io
        merged.query_io = merged.query_io + item.query_io
        merged.wall_clock_s += item.wall_clock_s
        merged.n_flushes += item.n_flushes
        merged.n_coalesced += item.n_coalesced
        merged.n_applied += item.n_applied
    return merged
