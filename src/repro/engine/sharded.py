"""The sharded engine: a space-partitioned router over per-shard indexes.

MOIST-style scaling lever: moving objects are partitioned by a **static
space partition** (equal-width slabs along the domain's widest axis), with
one pager and one index per shard.  Updates route to the shard owning the
object's position; an object crossing a slab boundary is deleted from its
old shard and inserted into the new one; range queries fan out to every
shard whose slab intersects the query rectangle and merge the results.

Accounting: every shard pager charges a **shared** ledger (so the driver's
per-run `RunResult` is exactly comparable to an unsharded run) *and* its own
per-shard ledger (so hot shards are visible).  Both ledgers attribute I/O to
the same category scope -- the shard stats share the shared ledger's
category stack.

The router itself satisfies the :class:`~repro.engine.protocol.SpatialIndex`
protocol, so the simulation driver, the update buffer, and the snapshot
layer treat a 4-shard engine exactly like a single tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
    cast,
)

from repro.core.geometry import Point, Rect
from repro.core.params import CTParams
from repro.engine.protocol import PageStore, SpatialIndex, position_of
from repro.engine.registry import IndexOptions, get_spec
from repro.engine.results import RunResult, merge_results
from repro.storage.buffer_pool import BufferPool
from repro.storage.iostats import IOCategory, IOStats
from repro.storage.page import Page, PageId
from repro.storage.pager import Pager

if TYPE_CHECKING:  # pragma: no cover - typing only (rebalance imports us)
    from repro.engine.rebalance import Partitioner, ShardRebalancer


class SpacePartition:
    """Equal-width slabs along the domain's widest axis.

    Static by design (the paper's premise is that object *behaviour* is
    stable; MOIST likewise fixes the grid): routing is a constant-time
    arithmetic map, and a point outside the domain clamps into the nearest
    edge slab rather than erroring.
    """

    def __init__(self, domain: Rect, n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.domain = domain
        extents = tuple(h - l for l, h in zip(domain.lo, domain.hi))
        self.axis = max(range(len(extents)), key=lambda d: extents[d])
        if extents[self.axis] <= 0.0:
            # A zero-extent domain has no interior to slice: degenerate to
            # a single slab covering the (point) domain, instead of
            # inventing a width that pushes region() past domain.hi.
            n_shards = 1
        self.n_shards = n_shards
        self._lo = domain.lo[self.axis]
        self._width = extents[self.axis] or 1.0

    def slab_of(self, value: float) -> int:
        """The slab owning axis coordinate ``value`` (half-open slabs;
        out-of-domain values clamp into the nearest edge slab)."""
        frac = (value - self._lo) / self._width
        return min(self.n_shards - 1, max(0, int(frac * self.n_shards)))

    def shard_of(self, point: Sequence[float]) -> int:
        return self.slab_of(point[self.axis])

    def shard_for(self, obj_id: int, point: Sequence[float]) -> int:
        """Identity-aware routing hook; spatial-only for the grid (the
        speed partitioner overrides the decision per object)."""
        return self.slab_of(point[self.axis])

    def region(self, sid: int) -> Rect:
        if not 0 <= sid < self.n_shards:
            raise ValueError(f"shard id {sid} out of range")
        lo = list(self.domain.lo)
        hi = list(self.domain.hi)
        step = self._width / self.n_shards
        if sid > 0:
            lo[self.axis] = self._lo + sid * step
        if sid < self.n_shards - 1:
            hi[self.axis] = self._lo + (sid + 1) * step
        return Rect(tuple(lo), tuple(hi))

    def intersecting(self, rect: Rect) -> List[int]:
        """Shard ids whose slab intersects ``rect`` (always non-empty).

        Both edges go through the same ``slab_of`` map that routes points:
        the edge shards are exactly where points on the rectangle's edges
        route.  (The old closed-``floor`` math used a different arithmetic
        -- ``floor(x / step)`` vs ``int(frac * n)`` -- which could both
        probe a shard no contained point routes to and, in the last ulp,
        *miss* the shard an edge point routes to.)
        """
        return list(
            range(
                self.slab_of(rect.lo[self.axis]),
                self.slab_of(rect.hi[self.axis]) + 1,
            )
        )

    def boundaries(self) -> List[float]:
        """Interior slab cut coordinates (``n_shards - 1`` of them)."""
        step = self._width / self.n_shards
        return [self._lo + sid * step for sid in range(1, self.n_shards)]

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": 2,
            "partitioner": "grid",
            "n_shards": self.n_shards,
            "axis": self.axis,
            "domain": [list(self.domain.lo), list(self.domain.hi)],
            "boundaries": self.boundaries(),
        }


class ShardIOStats(IOStats):
    """A per-shard ledger that mirrors every charge into the shared ledger.

    The category *stack* is shared with the engine-wide ledger, so an
    ``IOStats.category`` scope entered on either object attributes both
    ledgers identically -- per-shard and merged figures always agree on
    update/query/build attribution.
    """

    def __init__(self, shared: IOStats) -> None:
        super().__init__()
        self._shared = shared
        self._stack = shared._stack  # shared category scope (by reference)

    def record_read(self, count: int = 1) -> None:
        super().record_read(count)
        self._shared.record_read(count)

    def record_write(self, count: int = 1) -> None:
        super().record_write(count)
        self._shared.record_write(count)


def route_histories(
    partition: "Partitioner",
    histories: Optional[Mapping[int, Sequence[Tuple[Point, float]]]],
) -> List[Dict[int, Sequence[Tuple[Point, float]]]]:
    """Split a history profile by the shard owning each trail's last sample.

    Shared by :class:`ShardedIndex` and the parallel engine so both route a
    CT history profile identically.  Identity-aware (``shard_for``): a
    speed partition sends a fast mover's trail to its churn shard, the
    shard that will actually load the object.
    """
    routed: List[Dict[int, Sequence[Tuple[Point, float]]]] = [
        {} for _ in range(partition.n_shards)
    ]
    if histories:
        for oid, trail in histories.items():
            if not trail:
                continue
            sid = partition.shard_for(oid, trail[-1][0])
            routed[sid][oid] = trail
    return routed


def replay_order(
    positions: Mapping[int, Tuple[Point, Optional[float]]],
) -> List[Tuple[int, Point, Optional[float]]]:
    """Deterministic replay sequence for a positions ledger.

    Timestamp order with untimed inserts first and object id as the
    tiebreaker -- the order the parallel engine's inline fallback already
    replays, now shared with rebalance cutovers: any two rebuilds of the
    same ledger feed a time-driven index the same monotone clock and
    charge identical I/O.
    """
    return sorted(
        ((oid, pos, t) for oid, (pos, t) in positions.items()),
        key=lambda item: (
            item[2] is not None,
            item[2] if item[2] is not None else 0.0,
            item[0],
        ),
    )


@dataclass
class Shard:
    """One slab of the space partition with its private storage and index."""

    sid: int
    region: Rect
    pager: Pager
    store: PageStore
    index: SpatialIndex
    n_updates: int = 0
    n_queries: int = 0
    result_count: int = 0
    #: Cumulative seconds spent inside this shard's index operations
    #: (the shard-local apply/search time, excluding routing overhead).
    wall_clock_s: float = 0.0

    def run_result(self, kind: str) -> RunResult:
        """This shard's ledger as a :class:`RunResult` (UPDATE/QUERY scopes)."""
        stats = self.pager.stats
        return RunResult(
            kind=f"{kind}/shard{self.sid}",
            n_updates=self.n_updates,
            n_queries=self.n_queries,
            result_count=self.result_count,
            update_io=stats.counter(IOCategory.UPDATE),
            query_io=stats.counter(IOCategory.QUERY),
            wall_clock_s=self.wall_clock_s,
        )


def build_shard(
    kind: str,
    sid: int,
    region: Rect,
    options: IndexOptions,
    *,
    stats: Optional[IOStats] = None,
    pool_frames: int = 0,
    page_size: int = 4096,
) -> Shard:
    """Construct one shard (pager, optional pool, index) for ``region``.

    Shared by :class:`ShardedIndex` (which passes a mirrored
    :class:`ShardIOStats` ledger) and by parallel workers (which pass a
    private ledger and reconcile deltas back through ``IOStats.charge``).
    """
    spec = get_spec(kind)
    pager = Pager(
        page_size=page_size, stats=stats if stats is not None else IOStats()
    )
    store: PageStore = (
        BufferPool(pager, capacity=pool_frames) if pool_frames else pager
    )
    index = spec.factory(store, region, options)
    return Shard(sid=sid, region=region, pager=pager, store=store, index=index)


class ShardedStore:
    """Pager facade over the per-shard stores: one stats ledger, merged
    telemetry.  Satisfies what the driver and the CLI need from a "pager"
    (``stats``, ``page_count``, ``metrics_dict``); direct page access goes
    through the shards.

    The facade reads the shard sequence **live** from its source: handed
    the owning engine, every property reflects the current shard
    generation even after a rebalance split/merge replaces the list (a
    construction-time ``list(shards)`` copy would silently keep reporting
    the retired shards).  A plain sequence still works for frozen views.
    """

    def __init__(
        self, shards: Union[Sequence[Shard], "ShardedIndex"], stats: IOStats
    ) -> None:
        self._source = shards
        self._stats = stats

    @property
    def _shards(self) -> Sequence[Shard]:
        live = getattr(self._source, "shards", None)
        if live is not None:
            return cast(Sequence[Shard], live)
        return cast(Sequence[Shard], self._source)

    @property
    def stats(self) -> IOStats:
        return self._stats

    @property
    def page_size(self) -> int:
        return self._shards[0].pager.page_size

    @property
    def page_count(self) -> int:
        return sum(shard.pager.page_count for shard in self._shards)

    @property
    def hit_rate(self) -> float:
        """Aggregate LRU hit rate across pooled shards (0.0 unpooled)."""
        hits = misses = 0
        for shard in self._shards:
            pool = shard.store if isinstance(shard.store, BufferPool) else None
            if pool is not None:
                hits += pool.hits
                misses += pool.misses
        total = hits + misses
        return hits / total if total else 0.0

    def iter_pids(self) -> Iterator[Tuple[int, PageId]]:
        for shard in self._shards:
            for pid in shard.pager.iter_pids():
                yield shard.sid, pid

    def inspect(self, sid: int, pid: PageId) -> Page:
        return self._shards[sid].pager.inspect(pid)

    def metrics_dict(self) -> Dict[str, object]:
        return {
            "n_shards": len(self._shards),
            "page_count": self.page_count,
            "io": self._stats.to_dict(),
            "shards": [
                {
                    "sid": shard.sid,
                    "pager": shard.pager.metrics_dict(),
                    "buffer_pool": (
                        shard.store.metrics_dict()
                        if isinstance(shard.store, BufferPool)
                        else None
                    ),
                }
                for shard in self._shards
            ],
        }


class ShardedIndex:
    """A :class:`SpatialIndex` router over a static space partition.

    Args:
        kind: registered index kind to build per shard.
        domain: the full data domain (partitioned into slabs).
        n_shards: number of slabs.
        histories: CT-only history profile; trails are routed to the shard
            owning their most recent sample, so each shard mines qs-regions
            from the objects it will load.
        pool_frames: wrap each shard's pager in an LRU buffer pool of this
            many frames (0 = paper accounting).
        stats: an existing shared ledger to charge instead of a fresh one.
            The parallel engine's inline fallback passes its own ledger here
            so counters stay monotone across the worker -> inline cutover
            (the driver's delta accounting would otherwise go negative).
        partition: a :class:`~repro.engine.rebalance.Partitioner` to route
            with instead of the default equal-width grid (``n_shards`` may
            then be omitted; if given, it must agree).
        rebalancer: a :class:`~repro.engine.rebalance.ShardRebalancer`
            notified after every routed operation; when its hot-shard
            detector fires it calls :meth:`apply_partition` back.
    """

    def __init__(
        self,
        kind: str,
        domain: Rect,
        n_shards: Optional[int] = None,
        *,
        max_entries: int = 20,
        ct_params: Optional[CTParams] = None,
        histories: Optional[Mapping[int, Sequence[Tuple[Point, float]]]] = None,
        query_rate: float = 50.0,
        adaptive: bool = True,
        split: str = "quadratic",
        pool_frames: int = 0,
        page_size: int = 4096,
        stats: Optional[IOStats] = None,
        partition: Optional["Partitioner"] = None,
        rebalancer: Optional["ShardRebalancer"] = None,
    ) -> None:
        self.kind = kind
        self.domain = domain
        spec = get_spec(kind)
        self._spec = spec
        if partition is None:
            if n_shards is None:
                raise ValueError("pass n_shards or an explicit partition")
            partition = SpacePartition(domain, n_shards)
        elif n_shards is not None and n_shards != partition.n_shards:
            raise ValueError(
                f"n_shards={n_shards} disagrees with the supplied "
                f"partition ({partition.n_shards} shards)"
            )
        self.partition: "Partitioner" = partition
        self._stats = stats if stats is not None else IOStats()
        #: Object id -> owning shard id (the router's own secondary index;
        #: uncharged, like the structures' parent-pointer metadata).
        self._owner: Dict[int, int] = {}
        #: Authoritative current state: oid -> (position, last timestamp).
        #: A rebalance cutover replays this ledger into the new shards.
        self._positions: Dict[int, Tuple[Point, Optional[float]]] = {}
        #: Per-object cross-shard move counts (the speed strategy's
        #: churn signal; uncharged router metadata).
        self._move_counts: Dict[int, int] = {}
        self.cross_shard_moves = 0
        self.cross_shard_move_failures = 0
        self.rebalances = 0
        #: Run ledgers of shard generations retired by rebalance cutovers
        #: (so merged_result() stays cumulative across cutovers).
        self._retired_results: List[RunResult] = []
        self._rebalancer = rebalancer
        #: Shard-construction inputs, kept so a rebalance can rebuild
        #: shards (and re-route the CT history profile) under a new
        #: partition.
        self._histories = histories
        self._max_entries = max_entries
        self._ct_params = ct_params
        self._query_rate = query_rate
        self._adaptive = adaptive
        self._split = split
        self._pool_frames = pool_frames
        self._page_size = page_size

        self.shards: List[Shard] = self._build_shards(self.partition)
        self._store = ShardedStore(self, self._stats)

    def _build_shards(self, partition: "Partitioner") -> List[Shard]:
        """One fresh shard per partition region (ctor and rebalance path)."""
        routed = route_histories(partition, self._histories)
        shards: List[Shard] = []
        for sid in range(partition.n_shards):
            options = IndexOptions(
                max_entries=self._max_entries,
                ct_params=self._ct_params,
                histories=routed[sid] if self._spec.needs_histories else None,
                query_rate=self._query_rate,
                adaptive=self._adaptive,
                split=self._split,
            )
            shards.append(
                build_shard(
                    self.kind,
                    sid,
                    partition.region(sid),
                    options,
                    stats=ShardIOStats(self._stats),
                    pool_frames=self._pool_frames,
                    page_size=self._page_size,
                )
            )
        return shards

    def _route_histories(
        self,
        histories: Optional[Mapping[int, Sequence[Tuple[Point, float]]]],
    ) -> List[Dict[int, Sequence[Tuple[Point, float]]]]:
        return route_histories(self.partition, histories)

    def _note_op(self) -> None:
        """Post-op rebalancer hook (after the op's accounting settled)."""
        if self._rebalancer is not None:
            self._rebalancer.note_op(self)

    # -- SpatialIndex surface ------------------------------------------------

    @property
    def pager(self) -> ShardedStore:
        return self._store

    @property
    def n_shards(self) -> int:
        return self.partition.n_shards

    def __len__(self) -> int:
        return sum(len(shard.index) for shard in self.shards)

    def insert(
        self, obj_id: int, point: Sequence[float], now: Optional[float] = None
    ) -> PageId:
        pos = position_of(point)
        shard = self.shards[self.partition.shard_for(obj_id, pos)]
        t0 = perf_counter()
        pid = shard.index.insert(obj_id, pos, now=now)
        shard.wall_clock_s += perf_counter() - t0
        self._owner[obj_id] = shard.sid
        self._positions[obj_id] = (pos, now)
        shard.n_updates += 1
        self._note_op()
        return pid

    def update(
        self,
        obj_id: int,
        old_point: Sequence[float],
        new_point: Sequence[float],
        now: Optional[float] = None,
    ) -> PageId:
        new_pos = position_of(new_point)
        old_sid = self._owner.get(obj_id)
        if old_sid is None:
            raise KeyError(f"object {obj_id} is not indexed")
        new_sid = self.partition.shard_for(obj_id, new_pos)
        if new_sid == old_sid:
            shard = self.shards[old_sid]
            t0 = perf_counter()
            pid = shard.index.update(obj_id, old_point, new_pos, now=now)
            shard.wall_clock_s += perf_counter() - t0
            shard.n_updates += 1
            self._positions[obj_id] = (new_pos, now)
            self._note_op()
            return pid
        # Boundary crossing: remove from the old shard, insert into the new.
        old_shard = self.shards[old_sid]
        old_pos = None if old_point is None else position_of(old_point)
        t0 = perf_counter()
        self._spec.delete(old_shard.index, obj_id, old_pos, now)
        old_shard.wall_clock_s += perf_counter() - t0
        old_shard.n_updates += 1
        new_shard = self.shards[new_sid]
        t0 = perf_counter()
        try:
            pid = new_shard.index.insert(obj_id, new_pos, now=now)
        except Exception:
            # Exception safety: the delete already happened, so a failed
            # insert would silently drop the object.  Restore it to the
            # source shard at its old position (the owner map never moved),
            # then surface the failure.
            self.cross_shard_move_failures += 1
            if old_pos is not None:
                old_shard.index.insert(obj_id, old_pos, now=now)
                old_shard.n_updates += 1
            raise
        finally:
            new_shard.wall_clock_s += perf_counter() - t0
        self.cross_shard_moves += 1
        new_shard.n_updates += 1
        self._owner[obj_id] = new_sid
        self._positions[obj_id] = (new_pos, now)
        self._move_counts[obj_id] = self._move_counts.get(obj_id, 0) + 1
        self._note_op()
        return pid

    def delete(
        self,
        obj_id: int,
        old_point: Optional[Sequence[float]] = None,
        now: Optional[float] = None,
    ) -> bool:
        sid = self._owner.get(obj_id)
        if sid is None:
            return False
        pos = None if old_point is None else position_of(old_point)
        shard = self.shards[sid]
        t0 = perf_counter()
        removed = self._spec.delete(shard.index, obj_id, pos, now)
        shard.wall_clock_s += perf_counter() - t0
        if removed:
            del self._owner[obj_id]
            self._positions.pop(obj_id, None)
            self._move_counts.pop(obj_id, None)
        return bool(removed)

    def range_search(self, rect: Rect) -> List[Tuple[int, Point]]:
        """Fan out to intersecting shards; each object lives in exactly one
        shard, so concatenation is duplicate-free."""
        results: List[Tuple[int, Point]] = []
        for sid in self.partition.intersecting(rect):
            shard = self.shards[sid]
            t0 = perf_counter()
            matches = shard.index.range_search(rect)
            shard.wall_clock_s += perf_counter() - t0
            shard.n_queries += 1
            shard.result_count += len(matches)
            results.extend(matches)
        self._note_op()
        return results

    # -- rebalance -----------------------------------------------------------

    def position_map(self) -> Dict[int, Point]:
        """Current object positions (authoritative, uncharged router state)."""
        return {oid: pos for oid, (pos, _t) in self._positions.items()}

    def cross_move_counts(self) -> Dict[int, int]:
        """Cross-shard moves per object since birth (the churn signal)."""
        return dict(self._move_counts)

    def apply_partition(self, partition: "Partitioner") -> None:
        """Online rebalance: cut over to ``partition`` atomically.

        The self-heal shadow-rebuild template: build a complete new shard
        set, replay the positions ledger into it under
        ``IOCategory.BUILD`` (migration is reconstruction, not stream
        work -- UPDATE/QUERY attribution stays bit-identical to an engine
        born with ``partition``), verify the shadow holds every object,
        then cut over with reference swaps.  An exception anywhere before
        the swap leaves the engine serving the old shards untouched.
        """
        old_shards = self.shards
        with self._stats.category(IOCategory.BUILD):
            new_shards = self._build_shards(partition)
            new_owner: Dict[int, int] = {}
            for oid, pos, t in replay_order(self._positions):
                sid = partition.shard_for(oid, pos)
                new_shards[sid].index.insert(oid, pos, now=t)
                new_owner[oid] = sid
        resident = sum(len(shard.index) for shard in new_shards)
        if resident != len(self._positions):
            raise RuntimeError(
                f"rebalance shadow holds {resident} objects, expected "
                f"{len(self._positions)}; cutover aborted"
            )
        self._retired_results.extend(
            shard.run_result(self.kind) for shard in old_shards
        )
        # Atomic cutover: reference swaps only; no reader sees a mix.
        self.partition = partition
        self.shards = new_shards
        self._owner = new_owner
        self.rebalances += 1

    # -- aggregated telemetry ------------------------------------------------

    @property
    def lazy_hits(self) -> int:
        return sum(getattr(s.index, "lazy_hits", 0) or 0 for s in self.shards)

    @property
    def relocations(self) -> int:
        return sum(getattr(s.index, "relocations", 0) or 0 for s in self.shards)

    def shard_results(self) -> List[RunResult]:
        """Per-shard ledgers (UPDATE/QUERY categories of each shard pager)."""
        return [shard.run_result(self.kind) for shard in self.shards]

    def merged_result(self) -> RunResult:
        """All shard ledgers merged into one (query counts are fan-outs);
        cumulative across rebalance cutovers (retired generations count)."""
        return merge_results(
            self._retired_results + self.shard_results(),
            kind=f"{self.kind}x{self.n_shards}",
        )

    def owner_of(self, obj_id: int) -> Optional[int]:
        return self._owner.get(obj_id)

    def engine_dict(self) -> Dict[str, object]:
        """Engine telemetry for metrics/bench documents."""
        out: Dict[str, object] = {
            "kind": self.kind,
            "partition": self.partition.to_dict(),
            "cross_shard_moves": self.cross_shard_moves,
            "cross_shard_move_failures": getattr(
                self, "cross_shard_move_failures", 0
            ),
            "rebalances": getattr(self, "rebalances", 0),
            "objects": len(self),
            "shards": [
                {
                    "sid": shard.sid,
                    "region": [list(shard.region.lo), list(shard.region.hi)],
                    "objects": len(shard.index),
                    "run": shard.run_result(self.kind).to_dict(),
                }
                for shard in self.shards
            ],
        }
        rebalancer = getattr(self, "_rebalancer", None)
        if rebalancer is not None:
            out["rebalancer"] = rebalancer.to_dict()
        return out

    def __repr__(self) -> str:
        return (
            f"ShardedIndex(kind={self.kind!r}, shards={self.n_shards}, "
            f"objects={len(self)}, cross_moves={self.cross_shard_moves})"
        )
