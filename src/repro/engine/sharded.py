"""The sharded engine: a space-partitioned router over per-shard indexes.

MOIST-style scaling lever: moving objects are partitioned by a **static
space partition** (equal-width slabs along the domain's widest axis), with
one pager and one index per shard.  Updates route to the shard owning the
object's position; an object crossing a slab boundary is deleted from its
old shard and inserted into the new one; range queries fan out to every
shard whose slab intersects the query rectangle and merge the results.

Accounting: every shard pager charges a **shared** ledger (so the driver's
per-run `RunResult` is exactly comparable to an unsharded run) *and* its own
per-shard ledger (so hot shards are visible).  Both ledgers attribute I/O to
the same category scope -- the shard stats share the shared ledger's
category stack.

The router itself satisfies the :class:`~repro.engine.protocol.SpatialIndex`
protocol, so the simulation driver, the update buffer, and the snapshot
layer treat a 4-shard engine exactly like a single tree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.geometry import Point, Rect
from repro.core.params import CTParams
from repro.engine.protocol import PageStore, SpatialIndex, position_of
from repro.engine.registry import IndexOptions, get_spec
from repro.engine.results import RunResult, merge_results
from repro.storage.buffer_pool import BufferPool
from repro.storage.iostats import IOCategory, IOStats
from repro.storage.page import Page, PageId
from repro.storage.pager import Pager


class SpacePartition:
    """Equal-width slabs along the domain's widest axis.

    Static by design (the paper's premise is that object *behaviour* is
    stable; MOIST likewise fixes the grid): routing is a constant-time
    arithmetic map, and a point outside the domain clamps into the nearest
    edge slab rather than erroring.
    """

    def __init__(self, domain: Rect, n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.domain = domain
        self.n_shards = n_shards
        extents = tuple(h - l for l, h in zip(domain.lo, domain.hi))
        self.axis = max(range(len(extents)), key=lambda d: extents[d])
        self._lo = domain.lo[self.axis]
        self._width = extents[self.axis] or 1.0

    def shard_of(self, point: Sequence[float]) -> int:
        frac = (point[self.axis] - self._lo) / self._width
        return min(self.n_shards - 1, max(0, int(frac * self.n_shards)))

    def region(self, sid: int) -> Rect:
        if not 0 <= sid < self.n_shards:
            raise ValueError(f"shard id {sid} out of range")
        lo = list(self.domain.lo)
        hi = list(self.domain.hi)
        step = self._width / self.n_shards
        lo[self.axis] = self._lo + sid * step
        hi[self.axis] = self._lo + (sid + 1) * step
        return Rect(tuple(lo), tuple(hi))

    def intersecting(self, rect: Rect) -> List[int]:
        """Shard ids whose slab intersects ``rect`` (always non-empty)."""
        step = self._width / self.n_shards
        first = int(math.floor((rect.lo[self.axis] - self._lo) / step))
        last = int(math.floor((rect.hi[self.axis] - self._lo) / step))
        first = min(self.n_shards - 1, max(0, first))
        last = min(self.n_shards - 1, max(0, last))
        return list(range(first, last + 1))

    def to_dict(self) -> Dict[str, object]:
        return {
            "n_shards": self.n_shards,
            "axis": self.axis,
            "domain": [list(self.domain.lo), list(self.domain.hi)],
        }


class ShardIOStats(IOStats):
    """A per-shard ledger that mirrors every charge into the shared ledger.

    The category *stack* is shared with the engine-wide ledger, so an
    ``IOStats.category`` scope entered on either object attributes both
    ledgers identically -- per-shard and merged figures always agree on
    update/query/build attribution.
    """

    def __init__(self, shared: IOStats) -> None:
        super().__init__()
        self._shared = shared
        self._stack = shared._stack  # shared category scope (by reference)

    def record_read(self, count: int = 1) -> None:
        super().record_read(count)
        self._shared.record_read(count)

    def record_write(self, count: int = 1) -> None:
        super().record_write(count)
        self._shared.record_write(count)


def route_histories(
    partition: SpacePartition,
    histories: Optional[Mapping[int, Sequence[Tuple[Point, float]]]],
) -> List[Dict[int, Sequence[Tuple[Point, float]]]]:
    """Split a history profile by the shard owning each trail's last sample.

    Shared by :class:`ShardedIndex` and the parallel engine so both route a
    CT history profile identically.
    """
    routed: List[Dict[int, Sequence[Tuple[Point, float]]]] = [
        {} for _ in range(partition.n_shards)
    ]
    if histories:
        for oid, trail in histories.items():
            if not trail:
                continue
            sid = partition.shard_of(trail[-1][0])
            routed[sid][oid] = trail
    return routed


@dataclass
class Shard:
    """One slab of the space partition with its private storage and index."""

    sid: int
    region: Rect
    pager: Pager
    store: PageStore
    index: SpatialIndex
    n_updates: int = 0
    n_queries: int = 0
    result_count: int = 0
    #: Cumulative seconds spent inside this shard's index operations
    #: (the shard-local apply/search time, excluding routing overhead).
    wall_clock_s: float = 0.0

    def run_result(self, kind: str) -> RunResult:
        """This shard's ledger as a :class:`RunResult` (UPDATE/QUERY scopes)."""
        stats = self.pager.stats
        return RunResult(
            kind=f"{kind}/shard{self.sid}",
            n_updates=self.n_updates,
            n_queries=self.n_queries,
            result_count=self.result_count,
            update_io=stats.counter(IOCategory.UPDATE),
            query_io=stats.counter(IOCategory.QUERY),
            wall_clock_s=self.wall_clock_s,
        )


def build_shard(
    kind: str,
    sid: int,
    region: Rect,
    options: IndexOptions,
    *,
    stats: Optional[IOStats] = None,
    pool_frames: int = 0,
    page_size: int = 4096,
) -> Shard:
    """Construct one shard (pager, optional pool, index) for ``region``.

    Shared by :class:`ShardedIndex` (which passes a mirrored
    :class:`ShardIOStats` ledger) and by parallel workers (which pass a
    private ledger and reconcile deltas back through ``IOStats.charge``).
    """
    spec = get_spec(kind)
    pager = Pager(
        page_size=page_size, stats=stats if stats is not None else IOStats()
    )
    store: PageStore = (
        BufferPool(pager, capacity=pool_frames) if pool_frames else pager
    )
    index = spec.factory(store, region, options)
    return Shard(sid=sid, region=region, pager=pager, store=store, index=index)


class ShardedStore:
    """Pager facade over the per-shard stores: one stats ledger, merged
    telemetry.  Satisfies what the driver and the CLI need from a "pager"
    (``stats``, ``page_count``, ``metrics_dict``); direct page access goes
    through the shards."""

    def __init__(self, shards: Sequence[Shard], stats: IOStats) -> None:
        self._shards = list(shards)
        self._stats = stats

    @property
    def stats(self) -> IOStats:
        return self._stats

    @property
    def page_size(self) -> int:
        return self._shards[0].pager.page_size

    @property
    def page_count(self) -> int:
        return sum(shard.pager.page_count for shard in self._shards)

    @property
    def hit_rate(self) -> float:
        """Aggregate LRU hit rate across pooled shards (0.0 unpooled)."""
        hits = misses = 0
        for shard in self._shards:
            pool = shard.store if isinstance(shard.store, BufferPool) else None
            if pool is not None:
                hits += pool.hits
                misses += pool.misses
        total = hits + misses
        return hits / total if total else 0.0

    def iter_pids(self) -> Iterator[Tuple[int, PageId]]:
        for shard in self._shards:
            for pid in shard.pager.iter_pids():
                yield shard.sid, pid

    def inspect(self, sid: int, pid: PageId) -> Page:
        return self._shards[sid].pager.inspect(pid)

    def metrics_dict(self) -> Dict[str, object]:
        return {
            "n_shards": len(self._shards),
            "page_count": self.page_count,
            "io": self._stats.to_dict(),
            "shards": [
                {
                    "sid": shard.sid,
                    "pager": shard.pager.metrics_dict(),
                    "buffer_pool": (
                        shard.store.metrics_dict()
                        if isinstance(shard.store, BufferPool)
                        else None
                    ),
                }
                for shard in self._shards
            ],
        }


class ShardedIndex:
    """A :class:`SpatialIndex` router over a static space partition.

    Args:
        kind: registered index kind to build per shard.
        domain: the full data domain (partitioned into slabs).
        n_shards: number of slabs.
        histories: CT-only history profile; trails are routed to the shard
            owning their most recent sample, so each shard mines qs-regions
            from the objects it will load.
        pool_frames: wrap each shard's pager in an LRU buffer pool of this
            many frames (0 = paper accounting).
        stats: an existing shared ledger to charge instead of a fresh one.
            The parallel engine's inline fallback passes its own ledger here
            so counters stay monotone across the worker -> inline cutover
            (the driver's delta accounting would otherwise go negative).
    """

    def __init__(
        self,
        kind: str,
        domain: Rect,
        n_shards: int,
        *,
        max_entries: int = 20,
        ct_params: Optional[CTParams] = None,
        histories: Optional[Mapping[int, Sequence[Tuple[Point, float]]]] = None,
        query_rate: float = 50.0,
        adaptive: bool = True,
        split: str = "quadratic",
        pool_frames: int = 0,
        page_size: int = 4096,
        stats: Optional[IOStats] = None,
    ) -> None:
        self.kind = kind
        self.domain = domain
        spec = get_spec(kind)
        self._spec = spec
        self.partition = SpacePartition(domain, n_shards)
        self._stats = stats if stats is not None else IOStats()
        #: Object id -> owning shard id (the router's own secondary index;
        #: uncharged, like the structures' parent-pointer metadata).
        self._owner: Dict[int, int] = {}
        self.cross_shard_moves = 0
        self.cross_shard_move_failures = 0

        routed = self._route_histories(histories)
        self.shards: List[Shard] = []
        for sid in range(n_shards):
            region = self.partition.region(sid)
            options = IndexOptions(
                max_entries=max_entries,
                ct_params=ct_params,
                histories=routed[sid] if spec.needs_histories else None,
                query_rate=query_rate,
                adaptive=adaptive,
                split=split,
            )
            self.shards.append(
                build_shard(
                    kind,
                    sid,
                    region,
                    options,
                    stats=ShardIOStats(self._stats),
                    pool_frames=pool_frames,
                    page_size=page_size,
                )
            )
        self._store = ShardedStore(self.shards, self._stats)

    def _route_histories(
        self,
        histories: Optional[Mapping[int, Sequence[Tuple[Point, float]]]],
    ) -> List[Dict[int, Sequence[Tuple[Point, float]]]]:
        return route_histories(self.partition, histories)

    # -- SpatialIndex surface ------------------------------------------------

    @property
    def pager(self) -> ShardedStore:
        return self._store

    @property
    def n_shards(self) -> int:
        return self.partition.n_shards

    def __len__(self) -> int:
        return sum(len(shard.index) for shard in self.shards)

    def insert(
        self, obj_id: int, point: Sequence[float], now: Optional[float] = None
    ) -> PageId:
        pos = position_of(point)
        shard = self.shards[self.partition.shard_of(pos)]
        t0 = perf_counter()
        pid = shard.index.insert(obj_id, pos, now=now)
        shard.wall_clock_s += perf_counter() - t0
        self._owner[obj_id] = shard.sid
        shard.n_updates += 1
        return pid

    def update(
        self,
        obj_id: int,
        old_point: Sequence[float],
        new_point: Sequence[float],
        now: Optional[float] = None,
    ) -> PageId:
        new_pos = position_of(new_point)
        old_sid = self._owner.get(obj_id)
        if old_sid is None:
            raise KeyError(f"object {obj_id} is not indexed")
        new_sid = self.partition.shard_of(new_pos)
        if new_sid == old_sid:
            shard = self.shards[old_sid]
            t0 = perf_counter()
            pid = shard.index.update(obj_id, old_point, new_pos, now=now)
            shard.wall_clock_s += perf_counter() - t0
            shard.n_updates += 1
            return pid
        # Boundary crossing: remove from the old shard, insert into the new.
        old_shard = self.shards[old_sid]
        old_pos = None if old_point is None else position_of(old_point)
        t0 = perf_counter()
        self._spec.delete(old_shard.index, obj_id, old_pos, now)
        old_shard.wall_clock_s += perf_counter() - t0
        old_shard.n_updates += 1
        new_shard = self.shards[new_sid]
        t0 = perf_counter()
        try:
            pid = new_shard.index.insert(obj_id, new_pos, now=now)
        except Exception:
            # Exception safety: the delete already happened, so a failed
            # insert would silently drop the object.  Restore it to the
            # source shard at its old position (the owner map never moved),
            # then surface the failure.
            self.cross_shard_move_failures += 1
            if old_pos is not None:
                old_shard.index.insert(obj_id, old_pos, now=now)
                old_shard.n_updates += 1
            raise
        finally:
            new_shard.wall_clock_s += perf_counter() - t0
        self.cross_shard_moves += 1
        new_shard.n_updates += 1
        self._owner[obj_id] = new_sid
        return pid

    def delete(
        self,
        obj_id: int,
        old_point: Optional[Sequence[float]] = None,
        now: Optional[float] = None,
    ) -> bool:
        sid = self._owner.get(obj_id)
        if sid is None:
            return False
        pos = None if old_point is None else position_of(old_point)
        shard = self.shards[sid]
        t0 = perf_counter()
        removed = self._spec.delete(shard.index, obj_id, pos, now)
        shard.wall_clock_s += perf_counter() - t0
        if removed:
            del self._owner[obj_id]
        return bool(removed)

    def range_search(self, rect: Rect) -> List[Tuple[int, Point]]:
        """Fan out to intersecting shards; each object lives in exactly one
        shard, so concatenation is duplicate-free."""
        results: List[Tuple[int, Point]] = []
        for sid in self.partition.intersecting(rect):
            shard = self.shards[sid]
            t0 = perf_counter()
            matches = shard.index.range_search(rect)
            shard.wall_clock_s += perf_counter() - t0
            shard.n_queries += 1
            shard.result_count += len(matches)
            results.extend(matches)
        return results

    # -- aggregated telemetry ------------------------------------------------

    @property
    def lazy_hits(self) -> int:
        return sum(getattr(s.index, "lazy_hits", 0) or 0 for s in self.shards)

    @property
    def relocations(self) -> int:
        return sum(getattr(s.index, "relocations", 0) or 0 for s in self.shards)

    def shard_results(self) -> List[RunResult]:
        """Per-shard ledgers (UPDATE/QUERY categories of each shard pager)."""
        return [shard.run_result(self.kind) for shard in self.shards]

    def merged_result(self) -> RunResult:
        """All shard ledgers merged into one (query counts are fan-outs)."""
        return merge_results(
            self.shard_results(), kind=f"{self.kind}x{self.n_shards}"
        )

    def owner_of(self, obj_id: int) -> Optional[int]:
        return self._owner.get(obj_id)

    def engine_dict(self) -> Dict[str, object]:
        """Engine telemetry for metrics/bench documents."""
        return {
            "kind": self.kind,
            "partition": self.partition.to_dict(),
            "cross_shard_moves": self.cross_shard_moves,
            "cross_shard_move_failures": getattr(
                self, "cross_shard_move_failures", 0
            ),
            "objects": len(self),
            "shards": [
                {
                    "sid": shard.sid,
                    "region": [list(shard.region.lo), list(shard.region.hi)],
                    "objects": len(shard.index),
                    "run": shard.run_result(self.kind).to_dict(),
                }
                for shard in self.shards
            ],
        }

    def __repr__(self) -> str:
        return (
            f"ShardedIndex(kind={self.kind!r}, shards={self.n_shards}, "
            f"objects={len(self)}, cross_moves={self.cross_shard_moves})"
        )
