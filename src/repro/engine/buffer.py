"""The batched update executor: a memtable-style buffer over any index.

Update-intensive follow-ups to the paper (LSM-based R-trees, buffered
bulk-apply schemes) get their wins from one observation: a moving object
reports many locations, but only the newest matters.  :class:`UpdateBuffer`
holds pending location updates in memory, **coalesces** superseded updates
to the same object id, and group-applies a batch per flush.

I/O accounting rules (so per-op figures stay comparable to the paper's
ledgers):

* buffering an update charges **nothing** -- the memtable is main memory
  (a production system would add a sequential log write, which the paper's
  page-I/O metric does not count for in-place indexes either);
* a flush charges exactly the index I/O of the operations it applies, under
  whatever :class:`~repro.storage.iostats.IOStats` category is active at the
  caller (the driver flushes inside its UPDATE scope);
* reads must not see stale data: the executor's contract is that callers
  flush before serving a query (the driver does), so a batched run returns
  bit-identical query results to an unbatched one.

Flush policies: **size** (``batch_size`` distinct pending objects) and
**time-horizon** (oldest pending update older than ``horizon`` relative to
the incoming timestamp).  Either alone or both together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence, runtime_checkable

from repro.core.geometry import Point
from repro.engine.protocol import SpatialIndex, position_of
from repro.obs.metrics import get_registry


@runtime_checkable
class UpdateLog(Protocol):
    """What the buffer needs from a write-ahead log.

    Satisfied by :class:`repro.durability.manager.DurabilityManager` (the
    protocol lives here so the engine layer never imports durability --
    dependency points outward, durability -> engine).
    """

    def log_insert(self, oid: int, point: Sequence[float], t: float) -> int: ...

    def log_update(
        self,
        oid: int,
        old_point: Sequence[float],
        point: Sequence[float],
        t: float,
    ) -> int: ...

    def log_flush(self) -> None: ...


@dataclass(frozen=True)
class FlushPolicy:
    """When the buffer drains.

    Args:
        batch_size: flush once this many distinct objects pend (0 disables
            the size trigger).
        horizon: flush once ``now - oldest_pending_t >= horizon`` (None
            disables the time trigger).  A horizon bounds the staleness a
            crash could lose and keeps time-driven structures' clocks from
            drifting far behind the stream.
    """

    batch_size: int = 64
    horizon: Optional[float] = None

    def __post_init__(self) -> None:
        if self.batch_size < 0:
            raise ValueError("batch_size must be >= 0")
        if self.horizon is not None and self.horizon < 0:
            raise ValueError("horizon must be >= 0")
        if self.batch_size == 0 and self.horizon is None:
            raise ValueError(
                "FlushPolicy needs a size trigger, a time trigger, or both"
            )

    def should_flush(
        self, pending: int, oldest_t: Optional[float], now: Optional[float]
    ) -> bool:
        return self.flush_reason(pending, oldest_t, now) is not None

    def flush_reason(
        self, pending: int, oldest_t: Optional[float], now: Optional[float]
    ) -> Optional[str]:
        """Which trigger fires: ``"size"``, ``"horizon"``, or None.

        The tag feeds :class:`FlushStats` and the ``engine.buffer.flush.*``
        obs counters, so a run's flush mix (policy-driven vs. forced by
        queries, stream end, or a CRITICAL health transition) is auditable.
        """
        if pending == 0:
            return None
        if self.batch_size and pending >= self.batch_size:
            return "size"
        if (
            self.horizon is not None
            and oldest_t is not None
            and now is not None
            and now - oldest_t >= self.horizon
        ):
            return "horizon"
        return None


@dataclass
class PendingUpdate:
    """The newest buffered state of one object.

    ``old_point`` is the position the *index* still holds (None if the
    object was never applied), frozen at first buffering; coalescing only
    advances ``point``/``t``.
    """

    oid: int
    old_point: Optional[Point]
    point: Point
    t: float
    seq: int
    absorbed: int = 0


@dataclass
class FlushStats:
    """Lifetime tallies of one buffer (monotone; snapshot for deltas)."""

    buffered: int = 0
    coalesced: int = 0
    applied: int = 0
    flushes: int = 0
    #: Flush tally by trigger tag ("size", "horizon", "query", "final",
    #: "critical", "manual").
    reasons: Dict[str, int] = field(default_factory=dict)

    def copy(self) -> "FlushStats":
        return FlushStats(
            self.buffered,
            self.coalesced,
            self.applied,
            self.flushes,
            dict(self.reasons),
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "buffered": self.buffered,
            "coalesced": self.coalesced,
            "applied": self.applied,
            "flushes": self.flushes,
            "reasons": dict(self.reasons),
        }


class UpdateBuffer:
    """Coalescing memtable for location updates against one index.

    Args:
        policy: when to drain (size and/or time-horizon triggers).
        wal: optional write-ahead log.  When set, every update is logged
            **before** it is buffered -- the acknowledgement a caller gets
            from :meth:`put` then implies the update survives a crash (per
            the log's sync policy), even though the index has not applied
            it yet.  Coalescing does not thin the log: each superseded
            update was individually acknowledged, so each is individually
            recoverable.
    """

    def __init__(
        self,
        policy: Optional[FlushPolicy] = None,
        wal: Optional[UpdateLog] = None,
    ) -> None:
        self.policy = policy if policy is not None else FlushPolicy()
        self.wal = wal
        self._pending: Dict[int, PendingUpdate] = {}
        self._seq = 0
        self.stats = FlushStats()

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def oldest_t(self) -> Optional[float]:
        """Timestamp of the oldest pending (coalesced) update."""
        if not self._pending:
            return None
        return min(update.t for update in self._pending.values())

    def pending_for(self, oid: int) -> Optional[PendingUpdate]:
        return self._pending.get(oid)

    def iter_pending(self) -> List[PendingUpdate]:
        """The pending updates in arrival (seq) order; read-only callers.

        The LSM memtable serves queries straight from here (main memory,
        uncharged) and snapshots serialize it in this canonical order.
        """
        return sorted(self._pending.values(), key=lambda u: u.seq)

    def drop(self, oid: int) -> Optional[PendingUpdate]:
        """Discard the pending update for ``oid`` (a delete superseded it).

        The WAL is *not* thinned -- each dropped update was individually
        acknowledged and stays individually recoverable; the caller's
        tombstone supersedes it on replay exactly as it did live.
        """
        return self._pending.pop(oid, None)

    def put(
        self,
        oid: int,
        old_point: Optional[Sequence[float]],
        point: Sequence[float],
        t: float,
    ) -> None:
        """Buffer a location update; supersedes any pending one for ``oid``.

        ``old_point`` is the position the caller's ledger holds -- the last
        *acknowledged* position, which on replay is exactly the state the
        log reproduces record by record (so logging the caller's view keeps
        the traditional R-tree's delete-by-old-point correct during both
        coalesced apply and replay).
        """
        if self.wal is not None:
            # Log before acknowledging; a crash after this line loses
            # nothing that put() promised.
            if old_point is None:
                self.wal.log_insert(oid, point, t)
            else:
                self.wal.log_update(oid, old_point, point, t)
        self.stats.buffered += 1
        self._seq += 1
        existing = self._pending.get(oid)
        if existing is not None:
            existing.point = position_of(point)
            existing.t = t
            existing.seq = self._seq
            existing.absorbed += 1
            self.stats.coalesced += 1
            return
        self._pending[oid] = PendingUpdate(
            oid=oid,
            old_point=None if old_point is None else position_of(old_point),
            point=position_of(point),
            t=t,
            seq=self._seq,
        )

    def should_flush(self, now: Optional[float] = None) -> bool:
        return self.policy.should_flush(len(self._pending), self.oldest_t, now)

    def flush(self, index: SpatialIndex, reason: str = "manual") -> int:
        """Apply every pending update to ``index`` in timestamp order.

        ``reason`` tags why the buffer drained ("size", "horizon", "query",
        "final", "critical", or the default "manual") in :class:`FlushStats`
        and the ``engine.buffer.flush.<reason>`` obs counter.

        Applies are ordered by ``(t, arrival)`` ascending so a time-driven
        index (the CT-R-tree's adaptation clock) observes the same monotone
        ``now`` sequence an unbatched run would; ties preserve arrival order.
        Returns the number of index operations performed.

        Exception safety: each pending entry is removed only after *its*
        apply succeeds.  If the index raises mid-batch, the failed and
        still-unapplied updates stay pending -- a retry (or a WAL replay
        after a crash) sees them again instead of silently losing them.

        Batch dispatch: an index exposing ``apply_batch`` (the parallel
        sharded engine) receives the whole sorted batch in one call, so it
        can group the applies by shard and dispatch them to workers
        concurrently instead of one routing round-trip per update.  The
        contract is all-or-nothing per call: ``apply_batch`` either applies
        the full batch (returning the op count) or raises with the index
        unchanged, in which case everything stays pending.
        """
        if not self._pending:
            return 0
        batch: List[PendingUpdate] = sorted(
            self._pending.values(), key=lambda u: (u.t, u.seq)
        )
        applied = 0
        apply_batch = getattr(index, "apply_batch", None)
        if apply_batch is not None:
            applied = int(apply_batch(batch))
            self._pending.clear()
            self.stats.applied += applied
        else:
            try:
                for update in batch:
                    if update.old_point is None:
                        index.insert(update.oid, update.point, now=update.t)
                    else:
                        index.update(
                            update.oid,
                            update.old_point,
                            update.point,
                            now=update.t,
                        )
                    del self._pending[update.oid]
                    applied += 1
            finally:
                self.stats.applied += applied
        self.stats.flushes += 1
        self.stats.reasons[reason] = self.stats.reasons.get(reason, 0) + 1
        registry = get_registry()
        if registry.enabled:
            registry.inc(f"engine.buffer.flush.{reason}")
        if self.wal is not None:
            self.wal.log_flush()
        return applied
