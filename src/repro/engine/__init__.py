"""The execution engine: index contracts, registry, batching, sharding.

The seam every scaling lever plugs into.  Four layers sit below it
(geometry/params, storage, index structures, workload replay); the engine
formalizes how they compose:

* :mod:`repro.engine.protocol` -- the :class:`SpatialIndex` contract the
  four evaluated structures (and future ones) conform to;
* :mod:`repro.engine.registry` -- index construction by kind
  (``IndexKind``/``make_index`` live here now; ``workload.driver``
  re-exports them);
* :mod:`repro.engine.buffer` -- the memtable-style batched update executor
  (coalescing, size/time-horizon flush policies);
* :mod:`repro.engine.sharded` -- the space-partitioned router with per-shard
  pagers and merged ledgers;
* :mod:`repro.engine.rebalance` -- pluggable partitioners (grid, density,
  speed) and the online hot-shard rebalancer;
* :mod:`repro.engine.results` -- :class:`RunResult` and per-shard merging.
"""

from repro.engine.buffer import (
    FlushPolicy,
    FlushStats,
    PendingUpdate,
    UpdateBuffer,
    UpdateLog,
)
from repro.engine.protocol import (
    Introspectable,
    LinearIndex,
    PageStore,
    SpatialIndex,
    UpdatableIndex,
    conforms_to_spatial,
)
from repro.engine.registry import (
    IndexKind,
    IndexOptions,
    IndexSpec,
    available_kinds,
    delete_object,
    get_spec,
    index_label,
    make_index,
    register_index,
    unregister_index,
)
from repro.engine.rebalance import (
    PARTITIONER_KINDS,
    BoundaryPartition,
    Partitioner,
    RebalancePolicy,
    ShardRebalancer,
    SpeedPartition,
    density_boundaries,
    make_partition,
    partition_from_dict,
)
from repro.engine.results import RunResult, merge_results
from repro.engine.sharded import (
    Shard,
    ShardedIndex,
    ShardedStore,
    ShardIOStats,
    SpacePartition,
    replay_order,
    route_histories,
)

__all__ = [
    "FlushPolicy",
    "FlushStats",
    "PendingUpdate",
    "UpdateBuffer",
    "UpdateLog",
    "Introspectable",
    "LinearIndex",
    "PageStore",
    "SpatialIndex",
    "UpdatableIndex",
    "conforms_to_spatial",
    "IndexKind",
    "IndexOptions",
    "IndexSpec",
    "available_kinds",
    "delete_object",
    "get_spec",
    "index_label",
    "make_index",
    "register_index",
    "unregister_index",
    "RunResult",
    "merge_results",
    "Shard",
    "ShardedIndex",
    "ShardedStore",
    "ShardIOStats",
    "SpacePartition",
    "replay_order",
    "route_histories",
    "PARTITIONER_KINDS",
    "BoundaryPartition",
    "Partitioner",
    "RebalancePolicy",
    "ShardRebalancer",
    "SpeedPartition",
    "density_boundaries",
    "make_partition",
    "partition_from_dict",
]
