"""Formal contracts between the engine and the index structures.

The four evaluated structures (traditional R-tree, lazy-R-tree, alpha-tree,
CT-R-tree) and the 1-D B+-tree baselines all grew the same moving-object
surface organically; these protocols write that surface down so the engine
layer (registry, batched executor, sharded router) can be typed against a
contract instead of a hand-rolled ``Union``.

Two axes:

* **Position type** -- the spatial family indexes points and answers
  rectangle range queries (:class:`SpatialIndex`); the B+-tree baselines
  index scalar keys and answer interval queries (:class:`LinearIndex`).
  Both share the update surface (:class:`UpdatableIndex`).
* **Storage** -- everything runs over a page store charging one I/O per
  page touched (:class:`PageStore`), satisfied by both the raw
  :class:`~repro.storage.pager.Pager` and the LRU
  :class:`~repro.storage.buffer_pool.BufferPool`.

The protocols are ``runtime_checkable``: ``isinstance`` verifies member
*presence* (Python checks names, not signatures), which is what the
registry's construction-time sanity check uses; full signature conformance
is enforced statically (mypy runs strict on ``repro.engine``).
"""

from __future__ import annotations

from typing import (
    Any,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.core.geometry import Point, Rect
from repro.storage.iostats import IOStats
from repro.storage.page import Page, PageId


@runtime_checkable
class PageStore(Protocol):
    """One-I/O-per-page-touched storage: Pager or BufferPool."""

    @property
    def stats(self) -> IOStats: ...

    @property
    def page_size(self) -> int: ...

    @property
    def page_count(self) -> int: ...

    def allocate(self, page: Page) -> PageId: ...

    def free(self, pid: PageId) -> None: ...

    def read(self, pid: PageId) -> Page: ...

    def write(self, page: Page) -> None: ...

    def inspect(self, pid: PageId) -> Page: ...

    def contains(self, pid: PageId) -> bool: ...

    def iter_pids(self) -> Iterator[PageId]: ...

    def metrics_dict(self) -> dict: ...


@runtime_checkable
class UpdatableIndex(Protocol):
    """The update surface shared by every index family in the repo.

    ``now`` is the logical timestamp of the operation; time-driven structures
    (the CT-R-tree's adaptation clock) consume it, the others accept and
    ignore it for interface parity.  ``old_position`` likewise: pointer-based
    structures locate the object through their secondary hash index, while
    the traditional R-tree needs the old position to delete-and-reinsert.
    """

    @property
    def pager(self) -> Any: ...

    def __len__(self) -> int: ...

    def insert(
        self, obj_id: int, position: Any, now: Optional[float] = None
    ) -> PageId: ...

    def update(
        self,
        obj_id: int,
        old_position: Any,
        new_position: Any,
        now: Optional[float] = None,
    ) -> PageId: ...


@runtime_checkable
class SpatialIndex(UpdatableIndex, Protocol):
    """A 2-D (or n-D) point index answering rectangle range queries.

    This is the contract the simulation driver, the batched update executor
    and the sharded router all program against.
    """

    def range_search(self, rect: Rect) -> List[Tuple[int, Point]]: ...


@runtime_checkable
class LinearIndex(UpdatableIndex, Protocol):
    """A 1-D key index answering interval range queries (B+-tree family)."""

    def range_search(self, low: float, high: float) -> List[Tuple[int, float]]: ...


@runtime_checkable
class Introspectable(Protocol):
    """What :func:`repro.obs.tree_stats` duck-types against (paged trees).

    Wrapper indexes (lazy-R-tree, the sharded router) satisfy the probe
    differently -- by delegation (``.tree``) or aggregation (``.shards``) --
    so the engine treats this as a capability, not a requirement.
    """

    @property
    def pager(self) -> Any: ...

    @property
    def root_pid(self) -> PageId: ...

    @property
    def height(self) -> int: ...

    max_entries: int


def conforms_to_spatial(index: object) -> bool:
    """Runtime presence check for the :class:`SpatialIndex` surface."""
    return isinstance(index, SpatialIndex)


def position_of(point: Sequence[float]) -> Point:
    """Normalize a caller-supplied position to the canonical tuple form.

    Every structure stores positions as tuples; list-vs-tuple mismatches
    break delete-by-old-point equality, so the engine normalizes once at its
    boundary (the driver does the same for its ``positions`` ledger).
    """
    return tuple(point)
