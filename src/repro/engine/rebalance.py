"""Adaptive shard management: pluggable partitioners and online rebalance.

PR 5's worker pool parallelised the sharded engine but kept MOIST's static
equal-width grid.  On a skewed workload (a flash crowd dwelling in one
narrow slab, fast movers churning across boundaries) the pool serialises
on one hot worker and every cross-boundary move pays a two-round-trip
sequenced delete+insert -- the measured result is the *below break-even*
row in ``BENCH_driver.json``.  This module makes the partition a pluggable
policy and adds an online rebalancer:

* :class:`Partitioner` -- the routing protocol shared by the equal-width
  grid (:class:`~repro.engine.sharded.SpacePartition`), the
  density-balanced :class:`BoundaryPartition` (slab boundaries at object
  count quantiles, so every shard owns roughly the same number of
  objects), and the :class:`SpeedPartition` (after "Speed Partitioning
  for Indexing Moving Objects": objects whose observed inter-update
  displacement marks them as fast movers are pinned to a dedicated churn
  shard, so they never cross a slab boundary again).
* :class:`ShardRebalancer` -- watches the per-shard run ledgers the
  engine already keeps, detects hot shards (windowed update+query I/O
  skew with double-threshold hysteresis), plans a replacement partition
  (density re-cut, split+merge, or churner promotion), and asks the
  engine to apply it through ``apply_partition`` -- the shadow-rebuild /
  atomic-cutover template the self-heal subsystem introduced: build the
  new shard set, replay the positions ledger as ``BUILD`` I/O, verify the
  shadow holds every object, then swap references.  ``UPDATE``/``QUERY``
  attribution stays bit-identical to an engine that was born with the new
  partition, because migration work never leaks into the stream scopes.

Routing is identity-aware: engines ask ``shard_for(obj_id, point)``, which
defaults to the spatial ``shard_of(point)`` and lets the speed partitioner
override the decision per object.  Query fan-out still goes through
``intersecting(rect)``; the churn shard's region is the whole domain, so
it joins every fan-out.
"""

from __future__ import annotations

import math
from bisect import bisect_right, insort
from dataclasses import asdict, dataclass
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
    runtime_checkable,
)

from repro.core.geometry import Point, Rect
from repro.engine.results import RunResult
from repro.engine.sharded import SpacePartition

#: ``to_dict`` document version.  Version 1 (PR 3..5) was the bare grid
#: triple ``{n_shards, axis, domain}``; version 2 adds ``partitioner`` and
#: ``boundaries`` (and ``inner``/``fast_ids`` for the speed partitioner).
PARTITION_FORMAT_VERSION = 2

#: CLI / factory names, in presentation order.
PARTITIONER_KINDS = ("grid", "density", "speed")


@runtime_checkable
class Partitioner(Protocol):
    """What the sharded engines need from a partition policy."""

    domain: Rect
    n_shards: int
    axis: int

    def shard_of(self, point: Sequence[float]) -> int:
        """Spatial routing: the shard owning ``point`` (clamped, total)."""
        ...

    def shard_for(self, obj_id: int, point: Sequence[float]) -> int:
        """Identity-aware routing; defaults to ``shard_of(point)``."""
        ...

    def region(self, sid: int) -> Rect:
        """The slab (or whole-domain churn region) shard ``sid`` owns."""
        ...

    def intersecting(self, rect: Rect) -> List[int]:
        """Every shard that could hold an object inside ``rect``."""
        ...

    def boundaries(self) -> List[float]:
        """Interior slab cut coordinates along :attr:`axis`."""
        ...

    def to_dict(self) -> Dict[str, object]:
        """Versioned snapshot document (see :func:`partition_from_dict`)."""
        ...


class RoutedEngine(Protocol):
    """What the rebalancer needs from an engine (both sharded engines)."""

    partition: Any
    domain: Rect

    def shard_results(self) -> List[RunResult]: ...

    def position_map(self) -> Dict[int, Point]: ...

    def cross_move_counts(self) -> Dict[int, int]: ...

    def apply_partition(self, partition: "Partitioner") -> None: ...


def _widest_axis(domain: Rect) -> int:
    extents = tuple(h - l for l, h in zip(domain.lo, domain.hi))
    return max(range(len(extents)), key=lambda d: extents[d])


def _repair_cuts(lo: float, hi: float, cuts: Iterable[float], want: int) -> List[float]:
    """Force a cut list into shape: strictly increasing, strictly inside
    ``(lo, hi)``, topped up to ``want`` cuts by splitting the widest gap.

    Degenerate inputs (all objects at one coordinate, domains too tight to
    hold ``want`` distinct floats) may yield fewer cuts -- the caller gets
    a partition with fewer shards rather than an invalid one.
    """
    uniq = sorted({float(c) for c in cuts if lo < c < hi})
    del uniq[want:]
    while len(uniq) < want:
        pts = [lo, *uniq, hi]
        gap, left = max((pts[i + 1] - pts[i], pts[i]) for i in range(len(pts) - 1))
        mid = left + gap / 2.0
        if not left < mid < left + gap:
            break  # FP exhaustion: the interval cannot hold another cut
        insort(uniq, mid)
    return uniq


def density_boundaries(
    domain: Rect, axis: int, values: Iterable[float], n_shards: int
) -> List[float]:
    """Interior boundaries placing ~equal object counts in every slab.

    Quantile cuts over the observed axis coordinates, each placed at the
    midpoint between the two straddling samples so edge-exact objects do
    not flip shards on an epsilon move.  Out-of-domain samples clamp to
    the domain edge (they route to edge slabs anyway).
    """
    lo = float(domain.lo[axis])
    hi = float(domain.hi[axis])
    if n_shards <= 1 or not hi > lo:
        return []
    coords = sorted(min(hi, max(lo, float(v))) for v in values)
    cuts: List[float] = []
    if coords:
        for k in range(1, n_shards):
            i = (k * len(coords)) // n_shards
            left = coords[i - 1] if i > 0 else lo
            right = coords[i] if i < len(coords) else hi
            cuts.append((left + right) / 2.0)
    return _repair_cuts(lo, hi, cuts, n_shards - 1)


class BoundaryPartition:
    """Half-open slabs with explicit interior boundaries along one axis.

    The generalisation of :class:`~repro.engine.sharded.SpacePartition`
    that density balancing and split/merge rebalancing produce: routing is
    a ``bisect`` over the boundary list, so ``shard_of``, ``shard_for``
    and ``intersecting`` share one arithmetic by construction -- the
    half-open consistency the grid had to be fixed to guarantee.
    """

    def __init__(
        self, domain: Rect, boundaries: Sequence[float], axis: Optional[int] = None
    ) -> None:
        self.domain = domain
        self.axis = _widest_axis(domain) if axis is None else int(axis)
        if not 0 <= self.axis < len(domain.lo):
            raise ValueError(f"axis {self.axis} out of range for domain")
        lo = float(domain.lo[self.axis])
        hi = float(domain.hi[self.axis])
        bounds = [float(b) for b in boundaries]
        for a, b in zip(bounds, bounds[1:]):
            if not a < b:
                raise ValueError("boundaries must be strictly increasing")
        if bounds and not (lo < bounds[0] and bounds[-1] < hi):
            raise ValueError("boundaries must lie strictly inside the domain")
        self._bounds = bounds
        self.n_shards = len(bounds) + 1

    @classmethod
    def from_points(
        cls,
        domain: Rect,
        n_shards: int,
        points: Iterable[Sequence[float]],
        axis: Optional[int] = None,
    ) -> "BoundaryPartition":
        """Density-balanced partition over the observed object positions."""
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        use_axis = _widest_axis(domain) if axis is None else int(axis)
        cuts = density_boundaries(
            domain, use_axis, (p[use_axis] for p in points), n_shards
        )
        return cls(domain, cuts, axis=use_axis)

    def slab_of(self, value: float) -> int:
        """Half-open routing: a coordinate exactly on a boundary belongs to
        the upper slab, matching the grid's arithmetic."""
        return bisect_right(self._bounds, value)

    def shard_of(self, point: Sequence[float]) -> int:
        return self.slab_of(point[self.axis])

    def shard_for(self, obj_id: int, point: Sequence[float]) -> int:
        return self.slab_of(point[self.axis])

    def region(self, sid: int) -> Rect:
        if not 0 <= sid < self.n_shards:
            raise ValueError(f"shard id {sid} out of range")
        lo = list(self.domain.lo)
        hi = list(self.domain.hi)
        if sid > 0:
            lo[self.axis] = self._bounds[sid - 1]
        if sid < self.n_shards - 1:
            hi[self.axis] = self._bounds[sid]
        return Rect(tuple(lo), tuple(hi))

    def intersecting(self, rect: Rect) -> List[int]:
        return list(
            range(
                self.slab_of(rect.lo[self.axis]),
                self.slab_of(rect.hi[self.axis]) + 1,
            )
        )

    def boundaries(self) -> List[float]:
        return list(self._bounds)

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": PARTITION_FORMAT_VERSION,
            "partitioner": "density",
            "n_shards": self.n_shards,
            "axis": self.axis,
            "domain": [list(self.domain.lo), list(self.domain.hi)],
            "boundaries": list(self._bounds),
        }

    def __repr__(self) -> str:
        return (
            f"BoundaryPartition(axis={self.axis}, "
            f"boundaries={self._bounds!r})"
        )


def object_speeds(
    histories: Mapping[int, Sequence[Tuple[Point, float]]],
) -> Dict[int, float]:
    """Mean per-report displacement of each trail -- the observed speed
    proxy the speed partitioner classifies on (report cadence is roughly
    uniform in the citysim regime, so distance-per-report orders objects
    the same way distance-per-second would)."""
    speeds: Dict[int, float] = {}
    for oid, trail in histories.items():
        if len(trail) < 2:
            speeds[oid] = 0.0
            continue
        dist = 0.0
        for (p0, _t0), (p1, _t1) in zip(trail, trail[1:]):
            dist += math.sqrt(sum((b - a) ** 2 for a, b in zip(p0, p1)))
        speeds[oid] = dist / (len(trail) - 1)
    return speeds


class SpeedPartition:
    """A dweller partition plus one dedicated churn shard for fast movers.

    Fast movers are the objects that defeat slab partitioning: every slab
    boundary they cross costs a sequenced delete+insert through the
    router.  Pinning them to an identity-routed churn shard (region = the
    whole domain) makes their updates ordinary same-shard updates forever;
    the price is that every query fans out to one extra shard, which is
    the right trade exactly when churners are few and updates dominate.
    """

    def __init__(
        self, domain: Rect, inner: Partitioner, fast_ids: Iterable[int]
    ) -> None:
        self.domain = domain
        self.inner = inner
        self.axis = inner.axis
        self.fast_ids: FrozenSet[int] = frozenset(int(i) for i in fast_ids)
        self.n_shards = inner.n_shards + 1
        #: The churn shard is always the last shard id.
        self.churn_sid = inner.n_shards

    @classmethod
    def from_histories(
        cls,
        domain: Rect,
        n_shards: int,
        histories: Mapping[int, Sequence[Tuple[Point, float]]],
        axis: Optional[int] = None,
        speed_threshold: Optional[float] = None,
    ) -> "SpeedPartition":
        """Classify fast movers from a history profile; dwellers get a
        density-balanced partition over the remaining ``n_shards - 1``
        slabs.

        The default threshold is a quarter of a dweller slab's width per
        report: an object moving that fast crosses a boundary within a
        handful of reports, so keeping it slab-routed guarantees churn.
        """
        if n_shards < 2:
            raise ValueError(
                "speed partitioning needs >= 2 shards (dwellers + churn)"
            )
        use_axis = _widest_axis(domain) if axis is None else int(axis)
        if speed_threshold is None:
            extent = float(domain.hi[use_axis] - domain.lo[use_axis])
            speed_threshold = extent / max(1, n_shards - 1) / 4.0
        speeds = object_speeds(histories)
        fast: Set[int] = (
            {oid for oid, s in speeds.items() if s >= speed_threshold}
            if speed_threshold > 0
            else set()
        )
        dweller_points = [
            trail[-1][0]
            for oid, trail in histories.items()
            if trail and oid not in fast
        ]
        inner = BoundaryPartition.from_points(
            domain, n_shards - 1, dweller_points, axis=use_axis
        )
        return cls(domain, inner, fast)

    def shard_of(self, point: Sequence[float]) -> int:
        return self.inner.shard_of(point)

    def shard_for(self, obj_id: int, point: Sequence[float]) -> int:
        if obj_id in self.fast_ids:
            return self.churn_sid
        return self.inner.shard_of(point)

    def region(self, sid: int) -> Rect:
        if sid == self.churn_sid:
            return self.domain
        return self.inner.region(sid)

    def intersecting(self, rect: Rect) -> List[int]:
        # The churn shard can hold objects anywhere, so it joins every
        # fan-out (kept last: merge order must match shard-id order).
        return self.inner.intersecting(rect) + [self.churn_sid]

    def boundaries(self) -> List[float]:
        return self.inner.boundaries()

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": PARTITION_FORMAT_VERSION,
            "partitioner": "speed",
            "n_shards": self.n_shards,
            "axis": self.axis,
            "domain": [list(self.domain.lo), list(self.domain.hi)],
            "boundaries": self.boundaries(),
            "inner": self.inner.to_dict(),
            "fast_ids": sorted(self.fast_ids),
        }

    def __repr__(self) -> str:
        return (
            f"SpeedPartition(dweller_shards={self.inner.n_shards}, "
            f"fast={len(self.fast_ids)})"
        )


def make_partition(
    name: str,
    domain: Rect,
    n_shards: int,
    positions: Optional[Mapping[int, Point]] = None,
    histories: Optional[Mapping[int, Sequence[Tuple[Point, float]]]] = None,
    axis: Optional[int] = None,
    speed_threshold: Optional[float] = None,
) -> Partitioner:
    """Factory keyed by the CLI's ``--partitioner`` names.

    ``density`` mines boundaries from ``positions`` (falling back to the
    last history samples); ``speed`` classifies from ``histories``
    (objects known only by position count as dwellers).
    """
    if name == "grid":
        return SpacePartition(domain, n_shards)
    if name == "density":
        points: List[Sequence[float]] = []
        if positions:
            points = list(positions.values())
        elif histories:
            points = [trail[-1][0] for trail in histories.values() if trail]
        return BoundaryPartition.from_points(domain, n_shards, points, axis=axis)
    if name == "speed":
        hists: Mapping[int, Sequence[Tuple[Point, float]]] = histories or {}
        if not hists and positions:
            # Single-sample trails: zero observed speed, everyone a dweller
            # until the rebalancer promotes churners at runtime.
            hists = {oid: [(pos, 0.0)] for oid, pos in positions.items()}
        return SpeedPartition.from_histories(
            domain, n_shards, hists, axis=axis, speed_threshold=speed_threshold
        )
    raise ValueError(
        f"unknown partitioner {name!r} (expected one of {PARTITIONER_KINDS})"
    )


def partition_from_dict(data: Mapping[str, Any]) -> Partitioner:
    """Rebuild a partitioner from its ``to_dict`` document.

    Version 1 documents (PR 3..5 snapshots) carry only the grid triple
    ``{n_shards, axis, domain}`` and load as :class:`SpacePartition`.
    Reconstruction is exact -- the loaded partitioner uses the same
    routing arithmetic as the saved one, so no object changes shards
    across a save/load cycle.
    """
    domain_doc = data["domain"]
    domain = Rect(
        tuple(float(v) for v in domain_doc[0]),
        tuple(float(v) for v in domain_doc[1]),
    )
    name = str(data.get("partitioner", "grid"))
    if name == "grid":
        return SpacePartition(domain, int(data["n_shards"]))
    if name == "density":
        return BoundaryPartition(
            domain,
            [float(b) for b in data["boundaries"]],
            axis=int(data["axis"]),
        )
    if name == "speed":
        inner = partition_from_dict(data["inner"])
        return SpeedPartition(
            domain, inner, (int(i) for i in data["fast_ids"])
        )
    raise ValueError(f"unknown partitioner kind {name!r} in document")


# -- the rebalancer ----------------------------------------------------------


@dataclass(frozen=True)
class RebalancePolicy:
    """Hot-shard detection and plan-selection knobs.

    Detection is windowed: every ``check_every`` routed operations the
    rebalancer diffs each shard's cumulative update+query I/O against the
    previous sweep and computes the skew ``max / mean`` over the window
    deltas.  The double threshold is a hysteresis band: a rebalance fires
    when skew reaches ``hot_factor`` while armed, and the trigger only
    re-arms once skew has cooled below ``cool_factor`` -- so a workload
    oscillating around one threshold cannot thrash rebuilds.
    """

    #: Routed ops between detection sweeps (cheap counter otherwise).
    check_every: int = 256
    #: Ignore windows with less total I/O than this (cold engine, noise).
    min_window_ios: int = 64
    #: Fire when the hottest shard exceeds this multiple of the fair share.
    hot_factor: float = 2.0
    #: Re-arm only after skew falls to this multiple or below.
    cool_factor: float = 1.25
    #: Safety valve: most rebalances per engine lifetime.
    max_rebalances: int = 8
    #: Plan family: ``density`` re-cut, ``split`` + merge, or ``speed``
    #: churner promotion (falls back to density before any churn is seen).
    strategy: str = "density"
    #: Cross-shard moves before an object counts as a churner (``speed``).
    speed_move_threshold: int = 3
    #: Do not bother rebalancing engines smaller than this.
    min_objects: int = 8


class ShardRebalancer:
    """Detects hot shards from the per-shard run ledgers and cuts over.

    Attach one per engine (``ShardedIndex(..., rebalancer=...)``); the
    engine calls :meth:`note_op` after every routed operation.  All
    decisions read only ledgers the engine already keeps -- the detector
    adds no I/O charges of its own.
    """

    def __init__(self, policy: Optional[RebalancePolicy] = None) -> None:
        self.policy = policy if policy is not None else RebalancePolicy()
        if self.policy.strategy not in ("density", "split", "speed"):
            raise ValueError(
                f"unknown rebalance strategy {self.policy.strategy!r}"
            )
        self.rebalances = 0
        #: Triggers that fired but produced no applicable plan.
        self.skipped = 0
        self.events: List[Dict[str, object]] = []
        self._ops_since_check = 0
        self._window_base: Optional[List[float]] = None
        self._armed = True

    def note_op(self, engine: RoutedEngine) -> bool:
        """Post-op hook; runs a detection sweep every ``check_every`` ops."""
        self._ops_since_check += 1
        if self._ops_since_check < self.policy.check_every:
            return False
        self._ops_since_check = 0
        return self.maybe_rebalance(engine)

    def _window_deltas(self, engine: RoutedEngine) -> List[float]:
        totals = [
            float(r.update_io.total + r.query_io.total)
            for r in engine.shard_results()
        ]
        base = self._window_base
        if base is None or len(base) != len(totals):
            base = [0.0] * len(totals)
        self._window_base = totals
        return [t - b for t, b in zip(totals, base)]

    @staticmethod
    def skew_of(deltas: Sequence[float]) -> float:
        """Hottest shard's share of the window, relative to the fair share."""
        total = sum(deltas)
        if total <= 0 or not deltas:
            return 0.0
        return max(deltas) / (total / len(deltas))

    def maybe_rebalance(self, engine: RoutedEngine) -> bool:
        """One detection sweep; applies a plan when armed and hot."""
        deltas = self._window_deltas(engine)
        if sum(deltas) < self.policy.min_window_ios:
            return False
        skew = self.skew_of(deltas)
        if skew <= self.policy.cool_factor:
            self._armed = True
        if not self._armed or skew < self.policy.hot_factor:
            return False
        if (
            self.rebalances >= self.policy.max_rebalances
            or len(engine.position_map()) < self.policy.min_objects
        ):
            self.skipped += 1
            return False
        hot = max(range(len(deltas)), key=lambda i: deltas[i])
        plan = self.plan(engine, hot)
        if plan is None:
            self.skipped += 1
            return False
        engine.apply_partition(plan)
        self.rebalances += 1
        self._armed = False  # hysteresis: quiet until skew cools
        self._window_base = None  # fresh shard generation, fresh window
        self.events.append(
            {
                "skew": round(skew, 3),
                "hot_shard": hot,
                "window_ios": int(sum(deltas)),
                "strategy": self.policy.strategy,
                "n_shards": plan.n_shards,
            }
        )
        return True

    # -- planning -----------------------------------------------------------

    def plan(
        self, engine: RoutedEngine, hot_sid: int
    ) -> Optional[Partitioner]:
        """Choose a replacement partition, or ``None`` when no improvement
        is expressible (all mass at one coordinate, no churners yet, ...)."""
        positions = engine.position_map()
        if not positions:
            return None
        current = engine.partition
        domain: Rect = current.domain
        strategy = self.policy.strategy
        if strategy == "speed":
            moved = engine.cross_move_counts()
            churners: Set[int] = {
                oid
                for oid, n in moved.items()
                if n >= self.policy.speed_move_threshold
            }
            churners |= set(getattr(current, "fast_ids", ()))
            if churners and len(churners) < len(positions):
                dwellers = [
                    pos for oid, pos in positions.items() if oid not in churners
                ]
                inner = BoundaryPartition.from_points(
                    domain,
                    max(1, current.n_shards - 1),
                    dwellers,
                    axis=current.axis,
                )
                return SpeedPartition(domain, inner, churners)
            strategy = "density"  # no churn signal yet: re-cut instead
        if strategy == "split":
            return self._split_merge(current, positions, hot_sid)
        new = BoundaryPartition.from_points(
            domain, current.n_shards, list(positions.values()), axis=current.axis
        )
        if new.boundaries() == current.boundaries():
            return None
        return new

    def _split_merge(
        self,
        current: Partitioner,
        positions: Mapping[int, Point],
        hot_sid: int,
    ) -> Optional[Partitioner]:
        """Split the hot slab at its object median and merge the coldest
        adjacent pair, keeping the shard count constant."""
        if hasattr(current, "fast_ids"):
            return None  # speed partitions rebalance via churner promotion
        axis = current.axis
        domain = current.domain
        bounds = current.boundaries()
        lo = float(domain.lo[axis])
        hi = float(domain.hi[axis])
        edges = [lo, *bounds, hi]
        if hot_sid >= len(edges) - 1:
            return None
        in_hot = sorted(
            p[axis]
            for p in positions.values()
            if current.shard_of(p) == hot_sid
        )
        if len(in_hot) < 2:
            return None
        mid = len(in_hot) // 2
        cut = (in_hot[mid - 1] + in_hot[mid]) / 2.0
        if not edges[hot_sid] < cut < edges[hot_sid + 1]:
            return None  # cut collapses onto a slab edge
        if not in_hot[0] < cut:
            return None  # hot mass is a point: half-open routing would
            # send all of it to the upper side, separating nothing
        counts = [0] * current.n_shards
        for p in positions.values():
            counts[current.shard_of(p)] += 1
        if not bounds:
            return None  # a single slab has nothing to merge back
        # Removing bounds[j] merges slabs j and j+1; pick the coldest pair.
        coldest = min(
            range(len(bounds)), key=lambda j: counts[j] + counts[j + 1]
        )
        new_bounds = sorted((set(bounds) - {bounds[coldest]}) | {cut})
        if new_bounds == bounds:
            return None
        try:
            return BoundaryPartition(domain, new_bounds, axis=axis)
        except ValueError:
            return None

    # -- telemetry -----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "policy": asdict(self.policy),
            "rebalances": self.rebalances,
            "skipped": self.skipped,
            "armed": self._armed,
            "events": list(self.events),
        }

    def __repr__(self) -> str:
        return (
            f"ShardRebalancer(strategy={self.policy.strategy!r}, "
            f"rebalances={self.rebalances})"
        )
