"""The index registry: construction and capability dispatch by kind.

``IndexKind``/``make_index`` historically lived inside ``workload.driver``,
which forced experiment modules into cycle-avoiding local imports.  The
registry is now the single owner of index construction: each kind maps to an
:class:`IndexSpec` bundling the display label, the factory, and the
capability adapters the engine needs (how to delete an object, whether the
kind needs a history profile).  ``workload.driver`` keeps thin re-exports so
existing callers are untouched.

Registering a fifth structure is one :func:`register_index` call -- the CLI,
the harness, the sharded router and the snapshot dispatch all pick it up
through the same table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.builder import CTRTreeBuilder
from repro.core.ctrtree import CTRTree
from repro.core.geometry import Point, Rect
from repro.core.params import CTParams
from repro.engine.protocol import PageStore, SpatialIndex
from repro.rtree.alpha import AlphaTree
from repro.rtree.lazy import LazyRTree
from repro.rtree.rtree import RTree


class IndexKind:
    """The paper's four structures (Section 4.2) plus the LSM-R-tree.

    The LSM kind follows "An Update-intensive LSM-based R-tree Index"
    (PAPERS.md): out-of-place writes through a memtable keep per-update
    cost flat where the in-place kinds grow with tree size.
    """

    RTREE = "rtree"
    LAZY = "lazy"
    ALPHA = "alpha"
    CT = "ct"
    LSM = "lsm"

    ALL = (RTREE, LAZY, ALPHA, CT, LSM)

    LABELS = {
        RTREE: "R-tree",
        LAZY: "lazy-R-tree",
        ALPHA: "alpha-tree",
        CT: "CT-R-tree",
        LSM: "LSM-R-tree",
    }


@dataclass(frozen=True)
class IndexOptions:
    """Construction-time knobs shared by every factory.

    One options record instead of ever-growing keyword plumbing: factories
    read the fields they understand and ignore the rest (the CT-R-tree alone
    consumes ``histories``/``query_rate``/``adaptive``).
    """

    max_entries: int = 20
    ct_params: Optional[CTParams] = None
    histories: Optional[Mapping[int, Sequence[Tuple[Point, float]]]] = None
    query_rate: float = 50.0
    adaptive: bool = True
    split: str = "quadratic"
    #: LSM-R-tree knobs (the other kinds ignore them); None falls back to
    #: the :class:`~repro.lsm.LSMConfig` defaults.
    lsm_memtable: Optional[int] = None
    lsm_size_ratio: Optional[int] = None
    lsm_max_runs: Optional[int] = None
    lsm_auto_compact: bool = True

    @property
    def params(self) -> CTParams:
        return self.ct_params if self.ct_params is not None else CTParams()


IndexFactory = Callable[[PageStore, Rect, IndexOptions], SpatialIndex]
#: Delete an object: (index, obj_id, old_position, now) -> removed?
DeleteFn = Callable[[SpatialIndex, int, Optional[Point], Optional[float]], bool]


def _delete_pointer(
    index: SpatialIndex, obj_id: int, old: Optional[Point], now: Optional[float]
) -> bool:
    del old, now
    return bool(index.delete(obj_id))  # type: ignore[attr-defined]


def _delete_spatial(
    index: SpatialIndex, obj_id: int, old: Optional[Point], now: Optional[float]
) -> bool:
    del now
    if old is None:
        raise ValueError(
            "the traditional R-tree deletes by (obj_id, old_position); "
            "no old position is known"
        )
    return bool(index.delete(obj_id, old))  # type: ignore[attr-defined]


def _delete_timed(
    index: SpatialIndex, obj_id: int, old: Optional[Point], now: Optional[float]
) -> bool:
    del old
    return bool(index.delete(obj_id, now=now))  # type: ignore[attr-defined]


@dataclass(frozen=True)
class IndexSpec:
    """Everything the engine knows about one index kind."""

    kind: str
    label: str
    factory: IndexFactory
    #: Capability adapter: how the engine removes an object (the three
    #: families disagree on the delete signature).
    delete: DeleteFn = field(default=_delete_pointer)
    #: The CT-R-tree mines qs-regions from a history profile at build time.
    needs_histories: bool = False
    #: Tag used by the generic snapshot dispatch (storage.snapshot).
    snapshot_kind: Optional[str] = None
    #: Health capability: invariant check returning violation messages.
    #: ``repro.health.verify`` dispatches the built-in families by type
    #: and falls back to this for third-party registered kinds (and from
    #: there to the duck-typed ``validate()`` convention).
    verifier: Optional[Callable[[SpatialIndex], List[str]]] = None


def _make_rtree(store: PageStore, domain: Rect, options: IndexOptions) -> SpatialIndex:
    del domain
    return RTree(store, max_entries=options.max_entries, split=options.split)


def _make_lazy(store: PageStore, domain: Rect, options: IndexOptions) -> SpatialIndex:
    del domain
    return LazyRTree(store, max_entries=options.max_entries, split=options.split)


def _make_alpha(store: PageStore, domain: Rect, options: IndexOptions) -> SpatialIndex:
    del domain
    return AlphaTree(
        store,
        max_entries=options.max_entries,
        split=options.split,
        alpha=options.params.alpha,
    )


def _make_ct(store: PageStore, domain: Rect, options: IndexOptions) -> SpatialIndex:
    if options.histories is None:
        raise ValueError("the CT-R-tree needs a history profile to build from")
    builder = CTRTreeBuilder(
        options.params,
        query_rate=options.query_rate,
        max_entries=options.max_entries,
        split=options.split,
        adaptive=options.adaptive,
    )
    tree, _ = builder.build(store, domain, options.histories)
    return tree


def _make_lsm(store: PageStore, domain: Rect, options: IndexOptions) -> SpatialIndex:
    del domain
    from repro.lsm import LSMConfig, LSMRTree

    defaults = LSMConfig()
    config = LSMConfig(
        memtable_size=(
            options.lsm_memtable
            if options.lsm_memtable is not None
            else defaults.memtable_size
        ),
        size_ratio=(
            options.lsm_size_ratio
            if options.lsm_size_ratio is not None
            else defaults.size_ratio
        ),
        max_runs=(
            options.lsm_max_runs
            if options.lsm_max_runs is not None
            else defaults.max_runs
        ),
        auto_compact=options.lsm_auto_compact,
    )
    return LSMRTree(
        store,
        max_entries=options.max_entries,
        split=options.split,
        config=config,
    )


_REGISTRY: Dict[str, IndexSpec] = {}


def register_index(spec: IndexSpec, *, replace: bool = False) -> IndexSpec:
    """Add ``spec`` to the registry; refuses silent redefinition."""
    if spec.kind in _REGISTRY and not replace:
        raise ValueError(
            f"index kind {spec.kind!r} is already registered; "
            "pass replace=True to override"
        )
    _REGISTRY[spec.kind] = spec
    return spec


def unregister_index(kind: str) -> None:
    """Remove a registered kind (tests registering throwaway kinds)."""
    _REGISTRY.pop(kind, None)


def get_spec(kind: str) -> IndexSpec:
    try:
        return _REGISTRY[kind]
    except KeyError:
        raise ValueError(
            f"unknown index kind {kind!r}; choose from {available_kinds()}"
        ) from None


def available_kinds() -> Tuple[str, ...]:
    return tuple(_REGISTRY.keys())


def index_label(kind: str) -> str:
    return get_spec(kind).label


register_index(
    IndexSpec(
        kind=IndexKind.RTREE,
        label=IndexKind.LABELS[IndexKind.RTREE],
        factory=_make_rtree,
        delete=_delete_spatial,
        snapshot_kind="rtree",
    )
)
register_index(
    IndexSpec(
        kind=IndexKind.LAZY,
        label=IndexKind.LABELS[IndexKind.LAZY],
        factory=_make_lazy,
        delete=_delete_pointer,
        snapshot_kind="lazy",
    )
)
register_index(
    IndexSpec(
        kind=IndexKind.ALPHA,
        label=IndexKind.LABELS[IndexKind.ALPHA],
        factory=_make_alpha,
        delete=_delete_pointer,
        snapshot_kind="alpha",
    )
)
register_index(
    IndexSpec(
        kind=IndexKind.CT,
        label=IndexKind.LABELS[IndexKind.CT],
        factory=_make_ct,
        delete=_delete_timed,
        needs_histories=True,
        snapshot_kind="ct",
    )
)
register_index(
    IndexSpec(
        kind=IndexKind.LSM,
        label=IndexKind.LABELS[IndexKind.LSM],
        factory=_make_lsm,
        delete=_delete_pointer,
        snapshot_kind="lsm",
    )
)


def make_index(
    kind: str,
    pager: PageStore,
    domain: Rect,
    *,
    max_entries: int = 20,
    ct_params: Optional[CTParams] = None,
    histories: Optional[Mapping[int, Sequence[Tuple[Point, float]]]] = None,
    query_rate: float = 50.0,
    adaptive: bool = True,
    split: str = "quadratic",
    lsm_memtable: Optional[int] = None,
    lsm_size_ratio: Optional[int] = None,
    lsm_max_runs: Optional[int] = None,
    lsm_auto_compact: bool = True,
) -> SpatialIndex:
    """Construct one of the registered indexes on ``pager``.

    The CT-R-tree additionally needs the history profile (``histories``) to
    mine its qs-regions; the baselines ignore it.  (The signature is the
    original ``workload.driver.make_index`` one -- callers did not move.)
    """
    # Backward-compatible error for unknown kinds mentions the paper's four.
    if kind not in _REGISTRY:
        raise ValueError(f"unknown index kind {kind!r}; choose from {IndexKind.ALL}")
    options = IndexOptions(
        max_entries=max_entries,
        ct_params=ct_params,
        histories=histories,
        query_rate=query_rate,
        adaptive=adaptive,
        split=split,
        lsm_memtable=lsm_memtable,
        lsm_size_ratio=lsm_size_ratio,
        lsm_max_runs=lsm_max_runs,
        lsm_auto_compact=lsm_auto_compact,
    )
    return get_spec(kind).factory(pager, domain, options)


def delete_object(
    kind: str,
    index: SpatialIndex,
    obj_id: int,
    *,
    old_position: Optional[Point] = None,
    now: Optional[float] = None,
) -> bool:
    """Remove ``obj_id`` from ``index`` using the kind's delete capability."""
    return get_spec(kind).delete(index, obj_id, old_position, now)
