"""Secondary index on object id (paper Section 2.1, Figure 1)."""

from repro.hashindex.hashindex import BucketPage, HashIndex

__all__ = ["BucketPage", "HashIndex"]
