"""The secondary hash index: object id -> data-page pointer.

Paper, Section 2.1: "in conjunction with the R-tree, we maintain a secondary
hash index on id for handling updates ... simply an array of pointers to leaf
pages of the R-tree with one entry for each object ordered by id.  Thus, all
the updates where the new location is in the same MBR as the old location can
be accomplished with a constant number of I/Os."

Because entries are ordered by id, the structure is direct-addressed: entry
``i`` lives at slot ``i % entries_per_bucket`` of bucket page
``i // entries_per_bucket``.  A lookup therefore costs exactly one page read
and an update one read plus one write; no directory or overflow chains are
needed.  Each entry is an (id, pointer) pair -- 16 bytes at the paper's
geometry, giving 256 entries per 4096-byte page, so the paper's 8 MB budget
(S_hash) covers half a million objects.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.storage.page import Page, PageId
from repro.storage.pager import Pager

#: Bytes per (object id, page pointer) entry.
ENTRY_BYTES = 16


class BucketPage(Page):
    """One page of the pointer array: slot -> data-page id (or None)."""

    __slots__ = ("slots",)

    def __init__(self, capacity: int) -> None:
        super().__init__()
        self.slots: List[Optional[PageId]] = [None] * capacity


class HashIndex:
    """Direct-addressed secondary index over dense integer object ids.

    Bucket pages are allocated lazily, so sparse id spaces only pay for the
    buckets they touch.

    Args:
        pager: page store to charge I/O against.
        entries_per_bucket: entries per bucket page; defaults to
            ``page_size // 16`` per the paper's entry size.
    """

    def __init__(self, pager: Pager, entries_per_bucket: Optional[int] = None) -> None:
        self._pager = pager
        if entries_per_bucket is None:
            entries_per_bucket = max(1, pager.page_size // ENTRY_BYTES)
        if entries_per_bucket < 1:
            raise ValueError("entries_per_bucket must be at least 1")
        self.entries_per_bucket = entries_per_bucket
        # bucket number -> bucket page id (directory; pinned in memory like a
        # hash function, so not charged).
        self._buckets: Dict[int, PageId] = {}
        self._count = 0

    # -- helpers ---------------------------------------------------------

    def _locate(self, obj_id: int) -> Tuple[int, int]:
        if obj_id < 0:
            raise ValueError(f"object ids must be non-negative, got {obj_id}")
        return divmod(obj_id, self.entries_per_bucket)

    def _bucket_for_write(self, bucket_no: int) -> BucketPage:
        """Fetch (charging a read) or lazily create the bucket page."""
        pid = self._buckets.get(bucket_no)
        if pid is None:
            page = BucketPage(self.entries_per_bucket)
            self._pager.allocate(page)
            self._buckets[bucket_no] = page.pid
            return page
        page = self._pager.read(pid)
        assert isinstance(page, BucketPage)
        return page

    # -- charged operations ----------------------------------------------

    def get(self, obj_id: int) -> Optional[PageId]:
        """The data-page pointer for ``obj_id``; one page read."""
        bucket_no, slot = self._locate(obj_id)
        pid = self._buckets.get(bucket_no)
        if pid is None:
            return None
        page = self._pager.read(pid)
        assert isinstance(page, BucketPage)
        return page.slots[slot]

    def set(self, obj_id: int, data_pid: PageId) -> None:
        """Point ``obj_id`` at ``data_pid``; one read plus one write."""
        bucket_no, slot = self._locate(obj_id)
        page = self._bucket_for_write(bucket_no)
        if page.slots[slot] is None:
            self._count += 1
        page.slots[slot] = data_pid
        self._pager.write(page)

    def set_many(self, entries: Iterable[Tuple[int, PageId]]) -> None:
        """Repoint several objects, coalescing I/O per bucket page.

        Used when a node split relocates a batch of objects to a new page:
        entries landing in the same bucket cost one read and one write total.
        """
        by_bucket: Dict[int, List[Tuple[int, PageId]]] = {}
        for obj_id, data_pid in entries:
            bucket_no, slot = self._locate(obj_id)
            by_bucket.setdefault(bucket_no, []).append((slot, data_pid))
        for bucket_no, updates in by_bucket.items():
            page = self._bucket_for_write(bucket_no)
            for slot, data_pid in updates:
                if page.slots[slot] is None:
                    self._count += 1
                page.slots[slot] = data_pid
            self._pager.write(page)

    def remove(self, obj_id: int) -> bool:
        """Clear the entry ("set the hash index entry for o to null", 3.2)."""
        bucket_no, slot = self._locate(obj_id)
        pid = self._buckets.get(bucket_no)
        if pid is None:
            return False
        page = self._pager.read(pid)
        assert isinstance(page, BucketPage)
        if page.slots[slot] is None:
            return False
        page.slots[slot] = None
        self._count -= 1
        self._pager.write(page)
        return True

    # -- uncharged introspection -------------------------------------------

    def peek(self, obj_id: int) -> Optional[PageId]:
        """Like :meth:`get` but free; for tests and invariant checks."""
        bucket_no, slot = self._locate(obj_id)
        pid = self._buckets.get(bucket_no)
        if pid is None:
            return None
        page = self._pager.inspect(pid)
        assert isinstance(page, BucketPage)
        return page.slots[slot]

    def __len__(self) -> int:
        return self._count

    @property
    def bucket_count(self) -> int:
        return len(self._buckets)

    @property
    def size_bytes(self) -> int:
        """Disk footprint of the allocated bucket pages."""
        return self.bucket_count * self._pager.page_size

    def __repr__(self) -> str:
        return f"HashIndex(entries={self._count}, buckets={self.bucket_count})"
