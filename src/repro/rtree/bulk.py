"""Sort-Tile-Recursive (STR) bulk loading.

The paper notes that "bulk loading techniques [3] for R-tree can be applied"
when building the structural R-tree over qs-regions (Section 3.1.4); the
authors use repeated insertion for simplicity.  Both paths are provided here:
the CT-R-tree builder defaults to repeated insertion (matching the paper) and
can switch to STR packing, which the ablation bench compares.

STR (Leutenegger et al.): sort the rectangles by the x-coordinate of their
centers, cut into vertical slices of ``ceil(sqrt(P))`` pages each, sort every
slice by center y, and pack runs of ``capacity`` into nodes; repeat one level
up until a single node remains.

Tiling sorts over real :class:`Entry` objects (cheap stable sorts on cached
centers); assigning a finished group to ``node.entries`` packs it into the
node's struct-of-arrays columns in group order, so bulk-loaded trees are
laid out identically under either entry layout.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.core.geometry import Point, Rect
from repro.rtree.node import Entry, RTreeNode
from repro.rtree.rtree import RTree
from repro.storage.page import NO_PAGE


def _tile(entries: List[Entry], capacity: int) -> List[List[Entry]]:
    """Group entries into STR tiles of at most ``capacity`` each."""
    n = len(entries)
    page_count = math.ceil(n / capacity)
    slice_count = math.ceil(math.sqrt(page_count))
    per_slice = slice_count * capacity

    ordered = sorted(entries, key=lambda e: e.rect.center[0])
    groups: List[List[Entry]] = []
    for start in range(0, n, per_slice):
        chunk = sorted(
            ordered[start : start + per_slice],
            key=lambda e: e.rect.center[1] if e.rect.dim > 1 else 0.0,
        )
        for j in range(0, len(chunk), capacity):
            groups.append(chunk[j : j + capacity])
    return groups


def str_pack(
    tree: RTree,
    items: Sequence[Tuple[int, Point]],
    fill: float = 0.7,
) -> RTree:
    """Bulk-load point ``items`` (pairs of object id and point) into an empty tree.

    Node allocations are charged as writes, so loading under
    ``stats.category(IOCategory.BUILD)`` attributes the construction cost the
    same way repeated insertion would.
    """
    if len(tree) != 0:
        raise ValueError("str_pack requires an empty tree")
    if not 0.0 < fill <= 1.0:
        raise ValueError("fill must be in (0, 1]")
    if not items:
        return tree

    pager = tree.pager
    capacity = max(2, int(tree.max_entries * fill))
    entries = [Entry.for_point(tuple(point), obj_id) for obj_id, point in items]

    # Build the leaf level, then stack branch levels until one node remains.
    level = 0
    nodes: List[RTreeNode] = []
    for group in _tile(entries, capacity):
        node = RTreeNode(level=0)
        node.entries = group
        node.mbr = node.tight_mbr()
        pager.allocate(node)
        nodes.append(node)

    while len(nodes) > 1:
        level += 1
        parent_entries = [Entry(n.mbr, n.pid) for n in nodes if n.mbr is not None]
        parents: List[RTreeNode] = []
        for group in _tile(parent_entries, capacity):
            parent = RTreeNode(level=level)
            parent.entries = group
            parent.mbr = parent.tight_mbr()
            pager.allocate(parent)
            for entry in group:
                child = pager.inspect(entry.child)
                assert isinstance(child, RTreeNode)
                child.parent = parent.pid
            parents.append(parent)
        nodes = parents

    root = nodes[0]
    root.parent = NO_PAGE
    pager.free(tree.root_pid)  # discard the empty bootstrap root
    tree._root_pid = root.pid
    tree._size = len(entries)
    return tree


def str_pack_rects(
    tree: RTree,
    rects: Sequence[Tuple[Rect, int]],
    fill: float = 0.7,
) -> RTree:
    """Bulk-load (rect, payload-id) pairs; used to pack structural skeletons."""
    if len(tree) != 0:
        raise ValueError("str_pack_rects requires an empty tree")
    items = [Entry(rect, payload) for rect, payload in rects]
    if not items:
        return tree
    pager = tree.pager
    capacity = max(2, int(tree.max_entries * fill))

    nodes: List[RTreeNode] = []
    for group in _tile(items, capacity):
        node = RTreeNode(level=0)
        node.entries = group
        node.mbr = node.tight_mbr()
        pager.allocate(node)
        nodes.append(node)
    level = 0
    while len(nodes) > 1:
        level += 1
        parent_entries = [Entry(n.mbr, n.pid) for n in nodes if n.mbr is not None]
        parents = []
        for group in _tile(parent_entries, capacity):
            parent = RTreeNode(level=level)
            parent.entries = group
            parent.mbr = parent.tight_mbr()
            pager.allocate(parent)
            for entry in group:
                child = pager.inspect(entry.child)
                assert isinstance(child, RTreeNode)
                child.parent = parent.pid
            parents.append(parent)
        nodes = parents
    root = nodes[0]
    root.parent = NO_PAGE
    pager.free(tree.root_pid)
    tree._root_pid = root.pid
    tree._size = len(items)
    return tree
