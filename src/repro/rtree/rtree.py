"""A paged Guttman R-tree with pluggable split policy and loose-MBR support.

This is the traditional R-tree of the paper's evaluation [7]: objects are
points in leaf pages, every node occupies one page with at most
``max_entries`` slots, and a location update is processed as a search +
delete + re-insert.  Two behavioural knobs turn it into the other family
members:

* ``alpha > 0``: every MBR expansion overshoots the minimum by ``alpha``
  (Section 2.2's loose MBRs) -- used by :class:`~repro.rtree.alpha.AlphaTree`
  and by the CT-R-tree's overflow buffers;
* ``shrink_on_delete=False`` + :meth:`RTree.delete_at`: pointer-based lazy
  deletion that never tightens ancestor MBRs -- used by
  :class:`~repro.rtree.lazy.LazyRTree`.

I/O charging: every node visited is one page read; every node mutated is one
page write; allocating a node is one write; freeing is not charged.  Parent
pointers and the ``mbr`` mirror are uncharged metadata (DESIGN.md section 5).
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.core.geometry import Point, Rect
from repro.rtree.node import Entry, RTreeNode
from repro.rtree.splits import SPLIT_POLICIES
from repro.storage.page import NO_PAGE, PageId
from repro.storage.pager import Pager

#: Callback fired when leaf entries move to a different page (splits,
#: condense-reinsertion), so owners of secondary indexes can repoint them.
MovedCallback = Callable[[List[Tuple[int, PageId]]], None]


class RTree:
    """Disk-based R-tree over point objects.

    Args:
        pager: page store (shared with other structures in an experiment).
        max_entries: fan-out ``N_entry`` (Table 1 default 20).
        min_fill: minimum fill factor for splits/condensation (Guttman's m).
        split: one of ``linear``, ``quadratic``, ``rstar``.
        alpha: loose-MBR expansion factor; 0 keeps MBRs minimal.
        shrink_on_delete: tighten ancestor MBRs during deletion (traditional
            behaviour); lazy variants disable it.
        on_entries_moved: see :data:`MovedCallback`.
    """

    def __init__(
        self,
        pager: Pager,
        max_entries: int = 20,
        min_fill: float = 0.4,
        split: str = "quadratic",
        alpha: float = 0.0,
        shrink_on_delete: bool = True,
        on_entries_moved: Optional[MovedCallback] = None,
        forced_reinsert: float = 0.0,
    ) -> None:
        if max_entries < 4:
            raise ValueError("max_entries must be at least 4")
        if not 0.0 < min_fill <= 0.5:
            raise ValueError("min_fill must be in (0, 0.5]")
        if split not in SPLIT_POLICIES:
            raise ValueError(f"unknown split policy {split!r}; choose from {sorted(SPLIT_POLICIES)}")
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        if not 0.0 <= forced_reinsert < 0.5:
            raise ValueError("forced_reinsert must be in [0, 0.5)")
        self._pager = pager
        self.max_entries = max_entries
        self.min_entries = max(2, int(math.ceil(max_entries * min_fill)))
        self.split_policy = split
        self._split_fn = SPLIT_POLICIES[split]
        self.alpha = alpha
        self.shrink_on_delete = shrink_on_delete
        self.on_entries_moved = on_entries_moved
        #: R*-style forced reinsertion: on the first overflow of a level per
        #: operation, evict this fraction of the node's outermost entries and
        #: re-insert them instead of splitting (Beckmann et al.'s p = 30%).
        self.forced_reinsert = forced_reinsert
        self._reinserted_levels: set = set()
        self._size = 0

        root = RTreeNode(level=0)
        pager.allocate(root)
        self._root_pid = root.pid

    # -- basic properties ---------------------------------------------------

    @property
    def pager(self) -> Pager:
        return self._pager

    @property
    def root_pid(self) -> PageId:
        return self._root_pid

    @property
    def height(self) -> int:
        """Number of node levels (1 for a lone leaf root)."""
        return self._pager.inspect(self._root_pid).level + 1  # type: ignore[union-attr]

    def __len__(self) -> int:
        return self._size

    # -- charged node access --------------------------------------------------

    def _read(self, pid: PageId) -> RTreeNode:
        node = self._pager.read(pid)
        assert isinstance(node, RTreeNode)
        return node

    def _inspect(self, pid: PageId) -> RTreeNode:
        node = self._pager.inspect(pid)
        assert isinstance(node, RTreeNode)
        return node

    # -- insertion ---------------------------------------------------------

    def insert(
        self, obj_id: int, point: Sequence[float], now: Optional[float] = None
    ) -> PageId:
        """Insert a point object; returns the leaf page id holding it.

        ``now`` is ignored (interface parity with the CT-R-tree).
        """
        del now
        self._reinserted_levels.clear()
        entry = Entry.for_point(tuple(point), obj_id)
        pid = self._insert_entry(entry, level=0)
        self._size += 1
        return pid

    def _insert_entry(self, entry: Entry, level: int) -> PageId:
        path = self._choose_path(entry.rect, level)
        node = path[-1]
        node.entries.append(entry)
        if len(node.entries) > self.max_entries:
            if (
                self.forced_reinsert > 0
                and not node.is_root
                and node.level not in self._reinserted_levels
            ):
                return self._forced_reinsert(path, entry)
            return self._split_and_place(path, entry)
        self._pager.write(node)
        self._grow_mbrs(path, entry.rect)
        return node.pid

    def _forced_reinsert(self, path: List[RTreeNode], placed: Entry) -> PageId:
        """R*-style overflow treatment: evict the entries farthest from the
        node's center and re-insert them, deferring the split.  Applied at
        most once per level per operation."""
        node = path[-1]
        self._reinserted_levels.add(node.level)
        tight = node.tight_mbr()
        assert tight is not None
        center = tight.center
        ranked = sorted(
            node.entries.materialize(),
            key=lambda e: sum((a - b) ** 2 for a, b in zip(e.rect.center, center)),
            reverse=True,
        )
        evict_count = max(1, int(self.forced_reinsert * len(node.entries)))
        evicted = ranked[:evict_count]
        node.entries = ranked[evict_count:]
        node.mbr = node.tight_mbr()
        self._pager.write(node)
        parent = path[-2]
        idx = parent.find_entry(node.pid)
        assert idx is not None
        parent.entries.set_rect(idx, node.mbr)
        self._pager.write(parent)

        level = node.level
        for entry in evicted:
            pid = self._insert_entry(entry, level)
            if level > 0:
                self._inspect(entry.child).parent = pid
            elif pid != node.pid and self.on_entries_moved is not None:
                # Report each relocation immediately: a later reinsertion may
                # split the page this one landed on, and that split's own
                # report must come after (not be clobbered by) this one.
                self.on_entries_moved([(entry.child, pid)])
        # Any reinsertion after ``placed`` settled may have split its node and
        # moved it again, so resolve the final location by child id (ids are
        # unique per level: object ids at leaves, page ids at branches).
        placed_pid = self._find_child_page(placed.child, level)
        assert placed_pid != NO_PAGE
        return placed_pid

    def _find_child_page(self, child: int, level: int) -> PageId:
        """Locate (uncharged) the node at ``level`` holding an entry with
        this child id -- operation-internal bookkeeping, like parent
        pointers."""
        stack = [self._root_pid]
        while stack:
            node = self._inspect(stack.pop())
            if node.level == level:
                if node.find_entry(child) is not None:
                    return node.pid
            elif node.level > level:
                stack.extend(node.entries.child_list())
        return NO_PAGE

    def _choose_path(self, rect: Rect, level: int) -> List[RTreeNode]:
        """Read the root-to-target path, choosing least-enlargement children.

        The per-node choose-subtree scan is a whole-node container kernel
        (``SoAEntries.choose_subtree`` over the packed coordinate columns;
        ``ObjectEntries`` runs the historical per-entry flat-tuple loop) —
        both evaluate Guttman's least-enlargement/least-area rule with
        bit-identical float comparisons.
        """
        node = self._read(self._root_pid)
        path = [node]
        rlo = rect.lo
        rhi = rect.hi
        while node.level > level:
            entries = node.entries
            best = entries.choose_subtree(rlo, rhi)
            if best < 0:
                raise RuntimeError("internal node without entries on insert path")
            node = self._read(entries.child_at(best))
            path.append(node)
        return path

    def _expanded(
        self, current: Optional[Rect], addition: Rect, inflate: bool
    ) -> Tuple[Rect, bool]:
        """Grow ``current`` to cover ``addition``; loose by ``alpha`` when
        ``inflate`` is set and growth actually happened."""
        if current is None:
            return addition, True
        if current.contains_rect(addition):
            return current, False
        minimal = current.union(addition)
        if inflate and self.alpha > 0:
            minimal = minimal.inflated(self.alpha)
        return minimal, True

    def _grow_mbrs(self, path: List[RTreeNode], rect: Rect) -> None:
        """Propagate an MBR expansion from ``path[-1]`` toward the root.

        The target node itself was already written by the caller; each
        ancestor whose entry rectangle changes costs one write.  Loose-MBR
        inflation applies to *leaf* MBRs only -- the alpha-tree's leeway is
        for boundary objects (Section 2.2); inflating every level would
        compound overlap and needlessly multiply query paths.
        """
        node = path[-1]
        node.mbr, changed = self._expanded(node.mbr, rect, inflate=node.is_leaf)
        if not changed:
            return
        for parent in reversed(path[:-1]):
            idx = parent.find_entry(node.pid)
            assert idx is not None, "child missing from parent during MBR adjustment"
            parent.entries.set_rect(idx, node.mbr)
            self._pager.write(parent)
            parent.mbr, changed = self._expanded(parent.mbr, node.mbr, inflate=False)
            if not changed:
                break
            node = parent

    def _split_and_place(self, path: List[RTreeNode], placed: Entry) -> PageId:
        """Split the overfull ``path[-1]``, propagating upward; returns the
        page id that ended up holding ``placed``.

        The split policies operate on real :class:`Entry` objects (stable
        rects with cached areas), so the packed entries are materialized
        once per split and the resulting groups packed back — a cold-path
        conversion that keeps the policies layout-agnostic.
        """
        placed_pid = NO_PAGE
        placed_level = path[-1].level
        while path:
            node = path.pop()
            group_keep, group_move = self._split_fn(
                node.entries.materialize(), self.min_entries
            )
            node.entries = group_keep
            node.mbr = node.tight_mbr()
            sibling = RTreeNode(level=node.level)
            sibling.entries = group_move
            sibling.mbr = sibling.tight_mbr()
            sibling.tag = node.tag
            self._pager.allocate(sibling)
            self._pager.write(node)

            if node.level > 0:
                for child_entry in group_move:
                    self._inspect(child_entry.child).parent = sibling.pid
            elif self.on_entries_moved is not None:
                moved = [(e.child, sibling.pid) for e in group_move]
                if moved:
                    self.on_entries_moved(moved)

            if placed_pid == NO_PAGE and node.level == placed_level:
                # ``placed`` sits in exactly one of the groups of this
                # (bottom-most) split; child ids are unique per level, so
                # membership by id resolves its page.
                if any(e.child == placed.child for e in group_move):
                    placed_pid = sibling.pid
                else:
                    placed_pid = node.pid

            if path:
                parent = path[-1]
                idx = parent.find_entry(node.pid)
                assert idx is not None
                parent.entries.set_rect(idx, node.mbr)
                parent.entries.append(Entry(sibling.mbr, sibling.pid))
                sibling.parent = parent.pid
                if len(parent.entries) <= self.max_entries:
                    self._pager.write(parent)
                    break
                # else: loop continues and splits the parent
            else:
                new_root = RTreeNode(level=node.level + 1)
                new_root.tag = node.tag
                new_root.entries = [
                    Entry(node.mbr, node.pid),
                    Entry(sibling.mbr, sibling.pid),
                ]
                new_root.mbr = node.mbr.union(sibling.mbr)
                self._pager.allocate(new_root)
                node.parent = new_root.pid
                sibling.parent = new_root.pid
                self._root_pid = new_root.pid
                return placed_pid

        # Split absorbed mid-path: the ancestors above the last split must
        # still grow to cover the newly inserted rectangle.
        if path:
            self._grow_mbrs(path, placed.rect)
        return placed_pid

    # -- deletion ---------------------------------------------------------

    def delete(self, obj_id: int, point: Sequence[float]) -> bool:
        """Traditional deletion: locate by spatial search, then condense."""
        self._reinserted_levels.clear()
        found = self._find_leaf(tuple(point), obj_id)
        if found is None:
            return False
        path, entry_index = found
        leaf = path[-1]
        leaf.entries.pop(entry_index)
        self._size -= 1
        self._condense(path)
        return True

    def _find_leaf(
        self, point: Point, obj_id: int
    ) -> Optional[Tuple[List[RTreeNode], int]]:
        """DFS for the leaf holding ``obj_id`` at ``point``; charged reads."""
        root = self._read(self._root_pid)
        stack: List[List[RTreeNode]] = [[root]]
        while stack:
            path = stack.pop()
            node = path[-1]
            if node.is_leaf:
                idx = node.entries.find_point_entry(obj_id, point)
                if idx is not None:
                    return path, idx
                continue
            for child_pid in node.entries.children_containing_point(point):
                child = self._read(child_pid)
                stack.append(path + [child])
        return None

    def _condense(self, path: List[RTreeNode]) -> None:
        """Guttman CondenseTree over an already-read root-to-leaf path."""
        orphans: List[Tuple[List[Entry], int]] = []
        modified = [False] * len(path)
        modified[-1] = True  # the leaf lost an entry

        for i in range(len(path) - 1, 0, -1):
            node, parent = path[i], path[i - 1]
            idx = parent.find_entry(node.pid)
            assert idx is not None
            if len(node.entries) < self.min_entries:
                parent.entries.pop(idx)
                modified[i - 1] = True
                if len(node.entries):
                    orphans.append((node.entries.materialize(), node.level))
                self._pager.free(node.pid)
                modified[i] = False
            else:
                if self.shrink_on_delete:
                    tight = node.tight_mbr()
                    if tight is not None and tight != node.mbr:
                        node.mbr = tight
                        parent.entries.set_rect(idx, tight)
                        modified[i - 1] = True
                if modified[i]:
                    self._pager.write(node)

        root = path[0]
        if modified[0]:
            self._pager.write(root)
        if self.shrink_on_delete:
            root.mbr = root.tight_mbr()

        # Re-insert orphaned entries at their original level.
        for entries, level in orphans:
            for entry in entries:
                pid = self._insert_entry(entry, level)
                if level > 0:
                    self._inspect(entry.child).parent = pid
                elif self.on_entries_moved is not None:
                    self.on_entries_moved([(entry.child, pid)])

        self._collapse_root()

    def _collapse_root(self) -> None:
        root = self._inspect(self._root_pid)
        while not root.is_leaf and len(root.entries) == 1:
            child_pid = root.entries.child_at(0)
            child = self._read(child_pid)
            child.parent = NO_PAGE
            self._pager.free(root.pid)
            self._root_pid = child_pid
            root = child
        if not root.is_leaf and not root.entries:
            root.level = 0
            self._pager.write(root)

    def delete_at(self, obj_id: int, leaf_pid: PageId) -> Optional[Point]:
        """Pointer-based deletion (Section 2.1): no spatial search, no MBR
        shrinking; an emptied leaf is unlinked from its parent chain.

        Returns the deleted point, or None when the page did not hold the
        object (the caller's pointer was stale).
        """
        if not self._pager.contains(leaf_pid):
            return None
        node = self._read(leaf_pid)
        if not node.is_leaf:
            return None
        idx = node.find_entry(obj_id)
        if idx is None:
            return None
        return self.delete_from_node(node, idx)

    def delete_from_node(self, node: RTreeNode, idx: int) -> Point:
        """Remove entry ``idx`` from an already-read (pinned) leaf.

        Splitting this out of :meth:`delete_at` lets the lazy update path --
        which has just read the leaf for the same-MBR test -- avoid paying a
        second read for the same page.
        """
        point = node.entries.point_at(idx)
        node.entries.pop(idx)
        self._size -= 1
        if node.entries or node.is_root:
            self._pager.write(node)
        else:
            self._unlink_empty(node)
        return point

    def _unlink_empty(self, node: RTreeNode) -> None:
        """Free an emptied node and detach it from its parent, recursively."""
        while not node.is_root and not node.entries:
            parent = self._read(node.parent)
            idx = parent.find_entry(node.pid)
            assert idx is not None
            parent.entries.pop(idx)
            self._pager.free(node.pid)
            node = parent
        if node.entries or node.is_root:
            self._pager.write(node)
        if node.is_root and not node.entries and not node.is_leaf:
            node.level = 0

    # -- update -------------------------------------------------------------

    def update(
        self,
        obj_id: int,
        old_point: Sequence[float],
        new_point: Sequence[float],
        now: Optional[float] = None,
    ) -> PageId:
        """Traditional update: delete at the old location, re-insert at the new.

        Paper Section 2.1: "object with id i moves from its current location
        (x1,y1) to new location (x2,y2).  This can be handled in an R-tree by
        first deleting this object from its current location and then
        re-inserting it in the new location."

        ``now`` is accepted for interface parity with the CT-R-tree (whose
        adaptation is time-driven) and ignored.
        """
        del now
        if not self.delete(obj_id, old_point):
            raise KeyError(f"object {obj_id} not found at {tuple(old_point)}")
        return self.insert(obj_id, new_point)

    # -- queries ------------------------------------------------------------

    def range_search(self, rect: Rect) -> List[Tuple[int, Point]]:
        """All (obj_id, point) pairs inside the closed rectangle ``rect``.

        Each visited node is scanned whole by a container kernel — a packed
        buffer sweep for the SoA layout, the historical per-entry flat-tuple
        loop for the object layout — returning identical matches in entry
        order either way.
        """
        results: List[Tuple[int, Point]] = []
        qlo = rect.lo
        qhi = rect.hi
        stack = [self._root_pid]
        while stack:
            node = self._read(stack.pop())
            if node.is_leaf:
                results.extend(node.entries.points_in(qlo, qhi))
            else:
                stack.extend(node.entries.intersecting_children(qlo, qhi))
        return results

    def search_point(self, point: Sequence[float]) -> List[int]:
        """Object ids stored exactly at ``point``."""
        rect = Rect.from_point(tuple(point))
        return [obj_id for obj_id, _ in self.range_search(rect)]

    def nearest(self, point: Sequence[float], k: int = 1) -> List[Tuple[float, int, Point]]:
        """The ``k`` nearest objects to ``point`` as (distance, id, point),
        nearest first.

        Best-first search (Hjaltason & Samet): a priority queue ordered by
        lower-bound distance holds both unexplored nodes and concrete
        objects; nodes are read (charged) only when their bound is still
        competitive.
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        target = tuple(point)
        heap: List[Tuple[float, int, int, Optional[Point]]] = []
        counter = 0

        def push_node(pid: PageId, bound: float) -> None:
            nonlocal counter
            heapq.heappush(heap, (bound, counter, pid, None))
            counter += 1

        def push_object(obj_id: int, obj_point: Point) -> None:
            nonlocal counter
            heapq.heappush(
                heap, (math.dist(target, obj_point), counter, obj_id, obj_point)
            )
            counter += 1

        push_node(self._root_pid, 0.0)
        results: List[Tuple[float, int, Point]] = []
        while heap and len(results) < k:
            distance, _tie, ident, payload = heapq.heappop(heap)
            if payload is not None:
                results.append((distance, ident, payload))
                continue
            node = self._read(ident)
            if node.is_leaf:
                for child, obj_point in node.entries.iter_points():
                    push_object(child, obj_point)
            else:
                for lo, hi, child in node.entries.iter_packed():
                    push_node(child, Rect._make(lo, hi).min_distance(target))
        return results

    # -- uncharged introspection ----------------------------------------------

    def iter_leaves(self) -> Iterator[RTreeNode]:
        stack = [self._root_pid]
        while stack:
            node = self._inspect(stack.pop())
            if node.is_leaf:
                yield node
            else:
                stack.extend(node.entries.child_list())

    def iter_objects(self) -> Iterator[Tuple[int, Point]]:
        for leaf in self.iter_leaves():
            yield from leaf.entries.iter_points()

    def node_count(self) -> int:
        count = 0
        stack = [self._root_pid]
        while stack:
            node = self._inspect(stack.pop())
            count += 1
            if not node.is_leaf:
                stack.extend(node.entries.child_list())
        return count

    def validate(self) -> List[str]:
        """Structural invariant check (tests); returns violation messages."""
        problems: List[str] = []
        root = self._inspect(self._root_pid)
        if root.parent != NO_PAGE:
            problems.append("root has a parent pointer")
        counted = 0
        stack: List[Tuple[PageId, Optional[Rect], int]] = [(self._root_pid, None, root.level)]
        while stack:
            pid, covering, expected_level = stack.pop()
            node = self._inspect(pid)
            if node.level != expected_level:
                problems.append(f"node {pid}: level {node.level} != expected {expected_level}")
            if pid != self._root_pid and not (
                self.min_entries <= len(node.entries) <= self.max_entries
            ):
                if self.shrink_on_delete:
                    problems.append(
                        f"node {pid}: fill {len(node.entries)} outside "
                        f"[{self.min_entries}, {self.max_entries}]"
                    )
                elif len(node.entries) == 0 or len(node.entries) > self.max_entries:
                    problems.append(f"node {pid}: fill {len(node.entries)} invalid for lazy tree")
            for entry in node.entries:
                if covering is not None and not covering.contains_rect(entry.rect):
                    problems.append(f"node {pid}: entry {entry!r} escapes parent rect")
                if node.is_leaf:
                    counted += 1
                else:
                    child = self._inspect(entry.child)
                    if child.parent != pid:
                        problems.append(
                            f"node {entry.child}: parent pointer {child.parent} != {pid}"
                        )
                    stack.append((entry.child, entry.rect, node.level - 1))
        if counted != self._size:
            problems.append(f"size counter {self._size} != stored objects {counted}")
        return problems

    def __repr__(self) -> str:
        return (
            f"RTree(size={self._size}, height={self.height}, "
            f"split={self.split_policy!r}, alpha={self.alpha})"
        )
