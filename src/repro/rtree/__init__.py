"""The R-tree family used by the paper's evaluation (Section 4.2).

Four structures are compared:

* :class:`RTree` -- the traditional Guttman R-tree [7]; every location update
  is a search + delete + re-insert.
* :class:`LazyRTree` -- the R-tree augmented with the secondary hash index of
  Figure 1 ("lazy-R-tree", after Kwon et al. [10]); updates that stay inside
  the object's leaf MBR cost a constant number of I/Os.
* :class:`AlphaTree` -- the lazy-R-tree with loose MBRs: every MBR expansion
  overshoots the minimum by a factor alpha (Section 2.2), trading query
  performance for extra change tolerance.
* The CT-R-tree itself lives in :mod:`repro.core.ctrtree` and reuses this
  package's split policies and node machinery for its structural skeleton
  and its overflow alpha-R-trees.
"""

from repro.rtree.node import Entry, RTreeNode
from repro.rtree.splits import SPLIT_POLICIES, linear_split, quadratic_split, rstar_split
from repro.rtree.rtree import RTree
from repro.rtree.bulk import str_pack
from repro.rtree.lazy import LazyRTree
from repro.rtree.alpha import AlphaTree

__all__ = [
    "Entry",
    "RTreeNode",
    "RTree",
    "LazyRTree",
    "AlphaTree",
    "str_pack",
    "SPLIT_POLICIES",
    "linear_split",
    "quadratic_split",
    "rstar_split",
]
