"""Paged R-tree nodes.

A node occupies one page and holds up to ``N_entry`` entries (Table 1's
fan-out).  Leaf entries pair a (degenerate) rectangle with an object id;
branch entries pair a child MBR with the child's page id.

Two fields are *metadata* in the sense of DESIGN.md section 5 -- bookkeeping a
real system would pin in memory, maintained without I/O charge, symmetrically
for every index:

* ``parent``: the parent page id, used by pointer-based deletion
  (Section 2.1: "if the deletion operation directly provides a pointer to the
  page in which the object is stored, then the cost for searching in the
  R-tree can be saved");
* ``mbr``: a mirror of this node's bounding rectangle as registered in its
  parent, used for the lazy same-MBR test.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.geometry import Point, Rect
from repro.storage.page import NO_PAGE, Page, PageId


class Entry:
    """One slot of a node: a rectangle plus a child pointer or object id."""

    __slots__ = ("rect", "child")

    def __init__(self, rect: Rect, child: int) -> None:
        self.rect = rect
        self.child = child

    @classmethod
    def for_point(cls, point: Point, obj_id: int) -> "Entry":
        return cls(Rect.from_point(point), obj_id)

    @property
    def point(self) -> Point:
        """The stored location of a leaf (point) entry."""
        return self.rect.lo

    def __repr__(self) -> str:
        return f"Entry({self.rect!r}, child={self.child})"


class RTreeNode(Page):
    """One R-tree node; ``level == 0`` means leaf."""

    __slots__ = ("level", "entries", "parent", "mbr", "tag")

    def __init__(self, level: int = 0) -> None:
        super().__init__()
        self.level = level
        self.entries: List[Entry] = []
        self.parent: PageId = NO_PAGE
        self.mbr: Optional[Rect] = None
        #: Owner metadata: the CT-R-tree tags overflow alpha-R-tree nodes with
        #: the structural node that owns the buffer, so a hash pointer landing
        #: on this page can be resolved back to the right buffer.
        self.tag: Optional[object] = None

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    @property
    def is_root(self) -> bool:
        return self.parent == NO_PAGE

    def tight_mbr(self) -> Optional[Rect]:
        """The minimum bounding rectangle of the current entries."""
        if not self.entries:
            return None
        return Rect.union_all(e.rect for e in self.entries)

    def find_entry(self, child: int) -> Optional[int]:
        """Index of the entry whose child/object id equals ``child``."""
        for i, entry in enumerate(self.entries):
            if entry.child == child:
                return i
        return None

    def __repr__(self) -> str:
        return (
            f"RTreeNode(pid={self.pid}, level={self.level}, "
            f"entries={len(self.entries)})"
        )
