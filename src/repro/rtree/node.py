"""Paged R-tree nodes with a packed struct-of-arrays entry layout.

A node occupies one page and holds up to ``N_entry`` entries (Table 1's
fan-out).  Leaf entries pair a (degenerate) rectangle with an object id;
branch entries pair a child MBR with the child's page id.

Entry storage (PR 7) is a pluggable *layout*:

* ``soa`` (default): a :class:`SoAEntries` container packing the entry
  rectangles into flat ``array('d')`` coordinate columns (one per dimension
  per bound) plus a parallel ``array('q')`` child/object-id column.  Scans
  that used to dispatch a ``Rect`` method per entry become whole-node
  buffer kernels (``repro.core.geometry``), optionally numpy-accelerated.
* ``object``: an :class:`ObjectEntries` container keeping a plain list of
  :class:`Entry` objects and scanning via the PR 5 flat-tuple kernels.
  This is the differential-parity reference implementation; the two
  layouts must produce bit-identical query results, I/O ledgers and
  snapshot bytes over any trace (``tests/test_soa_parity.py``).

The session default comes from ``REPRO_NODE_LAYOUT`` (``soa``/``object``)
and can be flipped at runtime with :func:`set_default_layout`; nodes read
the default at construction time.  :class:`~repro.core.ctrtree.CTNode`
opts out via ``ENTRY_LAYOUT = "list"`` because its leaf slots are
:class:`~repro.core.qsregion.QSEntry` records, which have no packed form.

Both containers present the same list-like surface (``append``/``pop``/
indexing/iteration/equality) so call sites that only iterate keep
working; mutating sites in ``rtree.py``/``lazy.py`` use the explicit
column API (``set_rect``, ``set_point``, ``find_child``...).  Indexing a
packed container yields a live :class:`EntryView` proxy whose attribute
writes go straight through to the buffers.

Two fields are *metadata* in the sense of DESIGN.md section 5 -- bookkeeping a
real system would pin in memory, maintained without I/O charge, symmetrically
for every index:

* ``parent``: the parent page id, used by pointer-based deletion
  (Section 2.1: "if the deletion operation directly provides a pointer to the
  page in which the object is stored, then the cost for searching in the
  R-tree can be saved");
* ``mbr``: a mirror of this node's bounding rectangle as registered in its
  parent, used for the lazy same-MBR test.
"""

from __future__ import annotations

import os
from array import array
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.geometry import (
    Point,
    Rect,
    node_choose_subtree,
    node_containing_point_indices,
    node_intersecting_children,
    node_intersecting_indices,
    node_points_in,
    node_union,
    rect_contains_point,
    rect_enlargement,
    rect_intersects,
)
from repro.storage.page import NO_PAGE, Page, PageId


class Entry:
    """One slot of a node: a rectangle plus a child pointer or object id."""

    __slots__ = ("rect", "child")

    def __init__(self, rect: Rect, child: int) -> None:
        self.rect = rect
        self.child = child

    @classmethod
    def for_point(cls, point: Point, obj_id: int) -> "Entry":
        return cls(Rect.from_point(point), obj_id)

    @property
    def point(self) -> Point:
        """The stored location of a leaf (point) entry."""
        return self.rect.lo

    def __repr__(self) -> str:
        return f"Entry({self.rect!r}, child={self.child})"


class EntryView:
    """A live proxy for one packed entry of a :class:`SoAEntries` container.

    Reading ``.rect`` materializes a :class:`Rect` from the coordinate
    columns; writing ``.rect``/``.child`` stores through to the buffers.
    Views stay valid while the owning container exists (they reference the
    container, not the node), but are invalidated by row removals before
    their index.
    """

    __slots__ = ("_owner", "_i")

    def __init__(self, owner: "SoAEntries", i: int) -> None:
        self._owner = owner
        self._i = i

    @property
    def rect(self) -> Rect:
        return self._owner.rect_at(self._i)

    @rect.setter
    def rect(self, rect: Rect) -> None:
        self._owner.set_rect(self._i, rect)

    @property
    def child(self) -> int:
        return self._owner.children[self._i]

    @child.setter
    def child(self, child: int) -> None:
        self._owner.children[self._i] = child

    @property
    def point(self) -> Point:
        return self._owner.point_at(self._i)

    def to_entry(self) -> Entry:
        return Entry(self.rect, self.child)

    def __repr__(self) -> str:
        return f"EntryView({self.rect!r}, child={self.child})"


#: Anything accepted where an entry is stored: a real :class:`Entry`, a
#: packed-entry view, or any object exposing ``.rect`` and ``.child``.
EntryLike = Union[Entry, EntryView]


class SoAEntries:
    """Packed struct-of-arrays entry storage for one node.

    Columns: ``children`` is an ``array('q')`` of child page ids / object
    ids; ``los[d]``/``his[d]`` are ``array('d')`` coordinate columns, one
    per dimension.  The dimensionality is fixed by the first appended
    entry (the empty container is dimension-agnostic).
    """

    __slots__ = ("dim", "children", "los", "his")

    layout = "soa"

    def __init__(self) -> None:
        self.dim: int = 0
        self.children: array = array("q")
        self.los: Tuple[array, ...] = ()
        self.his: Tuple[array, ...] = ()

    # -- shape ---------------------------------------------------------------

    def _ensure_dim(self, dim: int) -> None:
        if self.dim == 0:
            self.dim = dim
            self.los = tuple(array("d") for _ in range(dim))
            self.his = tuple(array("d") for _ in range(dim))
        elif dim != self.dim:
            raise ValueError(
                f"dimension mismatch: container is {self.dim}-D, entry is {dim}-D"
            )

    def __len__(self) -> int:
        return len(self.children)

    # -- element access ------------------------------------------------------

    def _index(self, i: int) -> int:
        n = len(self.children)
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError("entry index out of range")
        return i

    def rect_at(self, i: int) -> Rect:
        return Rect._make(
            tuple(c[i] for c in self.los), tuple(c[i] for c in self.his)
        )

    def point_at(self, i: int) -> Point:
        return tuple(c[i] for c in self.los)

    def child_at(self, i: int) -> int:
        return self.children[i]

    def __getitem__(self, i: int) -> EntryView:
        return EntryView(self, self._index(i))

    def __setitem__(self, i: int, entry: EntryLike) -> None:
        i = self._index(i)
        self.set_rect(i, entry.rect)
        self.children[i] = entry.child

    def __iter__(self) -> Iterator[EntryView]:
        for i in range(len(self.children)):
            yield EntryView(self, i)

    def __eq__(self, other: object) -> bool:
        return _entries_equal(self, other)

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return f"SoAEntries(n={len(self.children)}, dim={self.dim})"

    # -- mutation ------------------------------------------------------------

    def append(self, entry: EntryLike) -> None:
        rect = entry.rect
        lo = rect.lo
        self._ensure_dim(len(lo))
        hi = rect.hi
        for d, col in enumerate(self.los):
            col.append(lo[d])
        for d, col in enumerate(self.his):
            col.append(hi[d])
        self.children.append(entry.child)

    def append_packed(self, lo: Point, hi: Point, child: int) -> None:
        """Append already-canonical float bounds without building a Rect."""
        self._ensure_dim(len(lo))
        for d, col in enumerate(self.los):
            col.append(lo[d])
        for d, col in enumerate(self.his):
            col.append(hi[d])
        self.children.append(child)

    def extend(self, entries: Iterable[EntryLike]) -> None:
        for entry in entries:
            self.append(entry)

    def pop(self, i: int = -1) -> Entry:
        i = self._index(i)
        entry = Entry(self.rect_at(i), self.children[i])
        for col in self.los:
            del col[i]
        for col in self.his:
            del col[i]
        del self.children[i]
        return entry

    def clear(self) -> None:
        for col in self.los:
            del col[:]
        for col in self.his:
            del col[:]
        del self.children[:]

    def set_rect(self, i: int, rect: Rect) -> None:
        lo = rect.lo
        self._ensure_dim(len(lo))
        hi = rect.hi
        for d, col in enumerate(self.los):
            col[i] = lo[d]
        for d, col in enumerate(self.his):
            col[i] = hi[d]

    def set_point(self, i: int, point: Sequence[float]) -> None:
        """Store a degenerate (point) rect, coercing like ``Rect.from_point``."""
        self._ensure_dim(len(point))
        for d, col in enumerate(self.los):
            coord = float(point[d])
            col[i] = coord
            self.his[d][i] = coord

    # -- lookups -------------------------------------------------------------

    def find_child(self, child: int) -> Optional[int]:
        try:
            return self.children.index(child)
        except ValueError:
            return None

    def find_point_entry(self, child: int, point: Point) -> Optional[int]:
        """First index with this child id *and* ``lo == point`` (tuple
        float equality, as the object path's ``entry.rect.lo == point``).

        A manual scan rather than ``children.index(child, start)``:
        ``array.array.index`` only grew start/stop in Python 3.10, and
        this package supports 3.9.
        """
        children = self.children
        los = self.los
        dim = self.dim
        if len(point) != dim:
            return None
        for i in range(len(children)):
            if children[i] == child and all(
                los[d][i] == point[d] for d in range(dim)
            ):
                return i
        return None

    def child_list(self) -> List[int]:
        return self.children.tolist()

    def materialize(self) -> List[Entry]:
        """Unpack into real :class:`Entry` objects (stable identity, cached
        area) — the boundary handed to the split policies."""
        los = self.los
        his = self.his
        return [
            Entry(
                Rect._make(
                    tuple(c[i] for c in los), tuple(c[i] for c in his)
                ),
                child,
            )
            for i, child in enumerate(self.children)
        ]

    def iter_packed(self) -> Iterator[Tuple[Point, Point, int]]:
        """Yield ``(lo, hi, child)`` per entry without Rect allocation —
        the snapshot encoder's path."""
        los = self.los
        his = self.his
        for i, child in enumerate(self.children):
            yield (
                tuple(c[i] for c in los),
                tuple(c[i] for c in his),
                child,
            )

    def iter_points(self) -> Iterator[Tuple[int, Point]]:
        """Yield ``(child, point)`` per (leaf) entry."""
        los = self.los
        for i, child in enumerate(self.children):
            yield child, tuple(c[i] for c in los)

    # -- whole-node scans ----------------------------------------------------

    def intersecting_indices(self, qlo: Point, qhi: Point) -> List[int]:
        return node_intersecting_indices(self.los, self.his, qlo, qhi)

    def intersecting_children(self, qlo: Point, qhi: Point) -> List[int]:
        return node_intersecting_children(
            self.children, self.los, self.his, qlo, qhi
        )

    def containing_point_indices(self, point: Sequence[float]) -> List[int]:
        return node_containing_point_indices(self.los, self.his, point)

    def children_containing_point(self, point: Sequence[float]) -> List[int]:
        children = self.children
        return [
            children[i]
            for i in node_containing_point_indices(self.los, self.his, point)
        ]

    def points_in(self, qlo: Point, qhi: Point) -> List[Tuple[int, Point]]:
        return node_points_in(self.children, self.los, qlo, qhi)

    def choose_subtree(self, rlo: Point, rhi: Point) -> int:
        return node_choose_subtree(self.los, self.his, rlo, rhi)

    def union_rect(self) -> Optional[Rect]:
        return node_union(self.los, self.his)


class ObjectEntries:
    """Reference entry storage: a list of :class:`Entry` objects scanned
    via the PR 5 flat-tuple kernels.

    Exposes the same surface as :class:`SoAEntries`; the differential
    parity suite runs every trace under both and requires identical
    results, ledgers and snapshot bytes.
    """

    __slots__ = ("_items",)

    layout = "object"

    def __init__(self) -> None:
        self._items: List[Entry] = []

    def __len__(self) -> int:
        return len(self._items)

    def rect_at(self, i: int) -> Rect:
        return self._items[i].rect

    def point_at(self, i: int) -> Point:
        return self._items[i].rect.lo

    def child_at(self, i: int) -> int:
        return self._items[i].child

    def __getitem__(self, i: int) -> Entry:
        return self._items[i]

    def __setitem__(self, i: int, entry: EntryLike) -> None:
        if not isinstance(entry, Entry):
            entry = Entry(entry.rect, entry.child)
        self._items[i] = entry

    def __iter__(self) -> Iterator[Entry]:
        return iter(self._items)

    def __eq__(self, other: object) -> bool:
        return _entries_equal(self, other)

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return f"ObjectEntries(n={len(self._items)})"

    def append(self, entry: EntryLike) -> None:
        if not isinstance(entry, Entry):
            entry = Entry(entry.rect, entry.child)
        self._items.append(entry)

    def append_packed(self, lo: Point, hi: Point, child: int) -> None:
        self._items.append(Entry(Rect._make(lo, hi), child))

    def extend(self, entries: Iterable[EntryLike]) -> None:
        for entry in entries:
            self.append(entry)

    def pop(self, i: int = -1) -> Entry:
        return self._items.pop(i)

    def clear(self) -> None:
        del self._items[:]

    def set_rect(self, i: int, rect: Rect) -> None:
        self._items[i].rect = rect

    def set_point(self, i: int, point: Sequence[float]) -> None:
        item = self._items[i]
        self._items[i] = Entry(Rect.from_point(point), item.child)

    def find_child(self, child: int) -> Optional[int]:
        for i, entry in enumerate(self._items):
            if entry.child == child:
                return i
        return None

    def find_point_entry(self, child: int, point: Point) -> Optional[int]:
        for i, entry in enumerate(self._items):
            if entry.child == child and entry.rect.lo == point:
                return i
        return None

    def child_list(self) -> List[int]:
        return [entry.child for entry in self._items]

    def materialize(self) -> List[Entry]:
        return list(self._items)

    def iter_packed(self) -> Iterator[Tuple[Point, Point, int]]:
        for entry in self._items:
            rect = entry.rect
            yield rect.lo, rect.hi, entry.child

    def iter_points(self) -> Iterator[Tuple[int, Point]]:
        for entry in self._items:
            yield entry.child, entry.rect.lo

    # -- whole-node scans (per-entry flat-tuple kernels, as before PR 7) -----

    def intersecting_indices(self, qlo: Point, qhi: Point) -> List[int]:
        inter = rect_intersects
        out = []
        for i, entry in enumerate(self._items):
            rect = entry.rect
            if inter(rect.lo, rect.hi, qlo, qhi):
                out.append(i)
        return out

    def intersecting_children(self, qlo: Point, qhi: Point) -> List[int]:
        inter = rect_intersects
        out = []
        for entry in self._items:
            rect = entry.rect
            if inter(rect.lo, rect.hi, qlo, qhi):
                out.append(entry.child)
        return out

    def containing_point_indices(self, point: Sequence[float]) -> List[int]:
        contains = rect_contains_point
        out = []
        for i, entry in enumerate(self._items):
            rect = entry.rect
            if contains(rect.lo, rect.hi, point):
                out.append(i)
        return out

    def children_containing_point(self, point: Sequence[float]) -> List[int]:
        contains = rect_contains_point
        out = []
        for entry in self._items:
            rect = entry.rect
            if contains(rect.lo, rect.hi, point):
                out.append(entry.child)
        return out

    def points_in(self, qlo: Point, qhi: Point) -> List[Tuple[int, Point]]:
        contains = rect_contains_point
        out = []
        for entry in self._items:
            point = entry.rect.lo  # leaf rects are degenerate points
            if contains(qlo, qhi, point):
                out.append((entry.child, point))
        return out

    def choose_subtree(self, rlo: Point, rhi: Point) -> int:
        enlargement_of = rect_enlargement
        best = -1
        best_enl = float("inf")
        best_area = float("inf")
        for i, entry in enumerate(self._items):
            rect = entry.rect
            area = rect.area
            enl = enlargement_of(rect.lo, rect.hi, rlo, rhi, area)
            if enl < best_enl or (enl == best_enl and area < best_area):
                best = i
                best_enl = enl
                best_area = area
        return best

    def union_rect(self) -> Optional[Rect]:
        if not self._items:
            return None
        return Rect.union_all(entry.rect for entry in self._items)


EntryContainer = Union[SoAEntries, ObjectEntries]

#: Registered entry layouts.  ``"list"`` is a node-class-level opt-out
#: (plain python list, used by CTNode's QSEntry slots), not a container.
LAYOUTS = {"soa": SoAEntries, "object": ObjectEntries}

_env_layout = os.environ.get("REPRO_NODE_LAYOUT", "").strip().lower()
_default_layout: str = _env_layout if _env_layout in LAYOUTS else "soa"


def default_layout() -> str:
    """The entry layout newly constructed nodes use (``soa``/``object``)."""
    return _default_layout


def set_default_layout(name: str) -> str:
    """Switch the session-default entry layout; returns the previous one.

    Existing nodes keep their container — the differential parity suite
    builds whole indexes under each layout in turn.
    """
    global _default_layout
    if name not in LAYOUTS:
        raise ValueError(
            f"unknown entry layout {name!r}; choose from {sorted(LAYOUTS)}"
        )
    previous = _default_layout
    _default_layout = name
    return previous


def make_entries(layout: Optional[str] = None) -> EntryContainer:
    """A fresh entry container of ``layout`` (session default when None)."""
    return LAYOUTS[layout or _default_layout]()


def _entries_equal(container: EntryContainer, other: object) -> bool:
    """Element-wise (rect, child) equality against any entry sequence."""
    if isinstance(other, (SoAEntries, ObjectEntries, list, tuple)):
        if len(container) != len(other):  # type: ignore[arg-type]
            return False
        for i, entry in enumerate(other):  # type: ignore[arg-type]
            rect = getattr(entry, "rect", None)
            if rect is None:
                return False
            if container.rect_at(i) != rect or container.child_at(i) != entry.child:
                return False
        return True
    return NotImplemented  # type: ignore[return-value]


class RTreeNode(Page):
    """One R-tree node; ``level == 0`` means leaf."""

    __slots__ = ("level", "_entries", "parent", "mbr", "tag")

    #: Entry storage override for subclasses: ``None`` follows the session
    #: default layout; ``"soa"``/``"object"`` pin a container layout;
    #: ``"list"`` keeps a plain python list (CTNode's QSEntry slots).
    ENTRY_LAYOUT: Optional[str] = None

    def __init__(self, level: int = 0) -> None:
        super().__init__()
        self.level = level
        layout = type(self).ENTRY_LAYOUT
        if layout == "list":
            self._entries: object = []
        else:
            self._entries = make_entries(layout)
        self.parent: PageId = NO_PAGE
        self.mbr: Optional[Rect] = None
        #: Owner metadata: the CT-R-tree tags overflow alpha-R-tree nodes with
        #: the structural node that owns the buffer, so a hash pointer landing
        #: on this page can be resolved back to the right buffer.
        self.tag: Optional[object] = None

    @property
    def entries(self):
        return self._entries

    @entries.setter
    def entries(self, value) -> None:
        if type(self).ENTRY_LAYOUT == "list":
            self._entries = list(value)
            return
        if isinstance(value, (SoAEntries, ObjectEntries)):
            self._entries = value
            return
        container = make_entries(type(self).ENTRY_LAYOUT)
        container.extend(value)
        self._entries = container

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    @property
    def is_root(self) -> bool:
        return self.parent == NO_PAGE

    def tight_mbr(self) -> Optional[Rect]:
        """The minimum bounding rectangle of the current entries."""
        entries = self._entries
        if isinstance(entries, list):
            if not entries:
                return None
            return Rect.union_all(e.rect for e in entries)
        return entries.union_rect()

    def find_entry(self, child: int) -> Optional[int]:
        """Index of the entry whose child/object id equals ``child``."""
        entries = self._entries
        if isinstance(entries, list):
            for i, entry in enumerate(entries):
                if entry.child == child:
                    return i
            return None
        return entries.find_child(child)

    def __repr__(self) -> str:
        return (
            f"RTreeNode(pid={self.pid}, level={self.level}, "
            f"entries={len(self._entries)})"
        )
