"""The alpha-tree: a lazy-R-tree with loose MBRs (paper Section 2.2).

"The concept of having slightly larger MBRs than needed ... is explored in
[10].  We shall call this structure the alpha-tree, which is essentially an
R-tree with 'loose' MBRs.  The idea is that whenever an MBR needs to be
expanded, we expand it by alpha% more than its minimum size.  Thus, the
boundary objects get some leeway to move and stay within the same MBR.
Naturally, this implies poorer query performance."

The experiments use alpha = 0.1, matching the paper.

The loose-MBR tolerance makes the alpha-tree the heaviest user of the lazy
same-MBR path, which under the struct-of-arrays layout is a pure in-place
column write (``SoAEntries.set_point``): the 3-I/O update touches no Entry
or Rect objects at all.
"""

from __future__ import annotations

from typing import Optional

from repro.hashindex import HashIndex
from repro.rtree.lazy import LazyRTree
from repro.storage.pager import Pager

#: The paper's choice: "we used alpha = 0.1 in our experiments".
DEFAULT_ALPHA = 0.1


class AlphaTree(LazyRTree):
    """Lazy-R-tree whose MBR expansions overshoot the minimum by ``alpha``."""

    def __init__(
        self,
        pager: Pager,
        max_entries: int = 20,
        min_fill: float = 0.4,
        split: str = "quadratic",
        alpha: float = DEFAULT_ALPHA,
        hash_index: Optional[HashIndex] = None,
    ) -> None:
        if alpha <= 0:
            raise ValueError("AlphaTree requires alpha > 0; use LazyRTree for tight MBRs")
        super().__init__(
            pager,
            max_entries=max_entries,
            min_fill=min_fill,
            split=split,
            alpha=alpha,
            hash_index=hash_index,
        )

    @property
    def alpha(self) -> float:
        return self.tree.alpha
