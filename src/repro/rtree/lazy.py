"""The lazy-R-tree: an R-tree plus the secondary hash index of Figure 1.

Paper Section 2.1: "all the updates where the new location is in the same
MBR as the old location can be accomplished with a constant number of I/Os.
Note that the R-tree structure does not change due to such updates (only the
location of the updated object is changed in the corresponding leaf node)."

Concretely, :meth:`LazyRTree.update` costs:

* **3 I/Os** on the lazy path -- one hash-bucket read, one leaf read, one
  leaf write -- whenever the new location stays inside the leaf's MBR;
* a pointer-based delete + fresh insert + hash repoint otherwise.

The hash index is kept exact: whenever a split or a condense-reinsertion
moves objects to a different leaf page, the affected bucket pages are
rewritten (coalesced per bucket), which is the honest maintenance cost of
the scheme.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.geometry import Point, Rect
from repro.hashindex import HashIndex
from repro.rtree.node import RTreeNode
from repro.rtree.rtree import RTree
from repro.storage.page import PageId
from repro.storage.pager import Pager


class LazyRTree:
    """R-tree with lazy updates through a secondary hash index on object id."""

    def __init__(
        self,
        pager: Pager,
        max_entries: int = 20,
        min_fill: float = 0.4,
        split: str = "quadratic",
        alpha: float = 0.0,
        hash_index: Optional[HashIndex] = None,
        forced_reinsert: float = 0.0,
    ) -> None:
        self.tree = RTree(
            pager,
            max_entries=max_entries,
            min_fill=min_fill,
            split=split,
            alpha=alpha,
            shrink_on_delete=False,
            on_entries_moved=self._entries_moved,
            forced_reinsert=forced_reinsert,
        )
        self.hash = hash_index if hash_index is not None else HashIndex(pager)
        #: Updates absorbed by the cheap same-MBR path vs. full relocations.
        self.lazy_hits = 0
        self.relocations = 0

    # -- plumbing ----------------------------------------------------------

    def _entries_moved(self, pairs: List[Tuple[int, PageId]]) -> None:
        self.hash.set_many(pairs)

    @property
    def pager(self) -> Pager:
        return self.tree.pager

    def __len__(self) -> int:
        return len(self.tree)

    # -- operations ---------------------------------------------------------

    def insert(
        self, obj_id: int, point: Sequence[float], now: Optional[float] = None
    ) -> PageId:
        del now  # interface parity with the CT-R-tree
        pid = self.tree.insert(obj_id, point)
        # The split callback may already have repointed obj_id; setting again
        # is idempotent and keeps the common (no-split) case simple.
        self.hash.set(obj_id, pid)
        return pid

    def delete(self, obj_id: int) -> bool:
        """Pointer-based deletion: hash lookup instead of spatial search."""
        pid = self.hash.get(obj_id)
        if pid is None:
            return False
        deleted = self.tree.delete_at(obj_id, pid)
        if deleted is None:
            return False
        self.hash.remove(obj_id)
        return True

    def update(
        self,
        obj_id: int,
        old_point: Sequence[float],
        new_point: Sequence[float],
        now: Optional[float] = None,
    ) -> PageId:
        """Move ``obj_id`` to ``new_point``; lazy when the leaf MBR tolerates it.

        ``old_point`` and ``now`` are accepted for interface parity with the
        other indexes but are not needed -- the hash index locates the object
        and nothing here is time-driven.
        """
        del old_point, now
        new_point = tuple(new_point)
        pid = self.hash.get(obj_id)
        if pid is None:
            raise KeyError(f"object {obj_id} is not indexed")
        node = self.tree.pager.read(pid)
        assert isinstance(node, RTreeNode)
        idx = node.find_entry(obj_id)
        if idx is None:
            raise KeyError(f"stale hash pointer for object {obj_id}")
        if node.mbr is not None and node.mbr.contains_point(new_point):
            # Lazy path: overwrite the packed point columns in place (the
            # entry keeps its slot and object id; only coordinates change).
            node.entries.set_point(idx, new_point)
            self.tree.pager.write(node)
            self.lazy_hits += 1
            return pid
        self.relocations += 1
        self.tree.delete_from_node(node, idx)
        new_pid = self.tree.insert(obj_id, new_point)
        self.hash.set(obj_id, new_pid)
        return new_pid

    def range_search(self, rect: Rect) -> List[Tuple[int, Point]]:
        return self.tree.range_search(rect)

    def search_point(self, point: Sequence[float]) -> List[int]:
        return self.tree.search_point(point)

    # -- uncharged introspection ------------------------------------------

    def validate(self) -> List[str]:
        """Tree invariants plus hash-pointer exactness."""
        problems = self.tree.validate()
        for leaf in self.tree.iter_leaves():
            for child in leaf.entries.child_list():
                pointed = self.hash.peek(child)
                if pointed != leaf.pid:
                    problems.append(
                        f"hash points object {child} at page {pointed}, "
                        f"but it lives in {leaf.pid}"
                    )
        return problems

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(size={len(self.tree)}, "
            f"lazy_hits={self.lazy_hits}, relocations={self.relocations})"
        )
