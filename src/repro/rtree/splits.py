"""Node split policies.

Guttman's linear and quadratic splits [7] and the R*-style split [paper's
"Other structures such as R*-trees use a slightly more complicated decision
process to determine the split", Section 2.2].  Each policy is a pure
function over a list of entries (anything with a ``rect`` attribute),
returning two groups that both respect the minimum fill; the caller wires the
groups back into pages.

The CT-R-tree reuses these for its structural skeleton, so the policies are
deliberately agnostic about what an entry's ``child`` means.

SoA boundary (PR 7): nodes store entries packed in struct-of-arrays
containers, but a split is a cold path dominated by the O(n²) PickSeeds /
PickNext area arithmetic, which re-reads every rectangle many times.  The
R-tree therefore *materializes* the node into real :class:`Entry` objects
(one stable, area-cached ``Rect`` per entry — ``SoAEntries.materialize``)
before calling a policy, and packs the returned groups back.  Policies
must not be handed live ``EntryView`` proxies: a view's ``rect`` property
builds a fresh ``Rect`` per access, which would re-derive (not re-use)
cached areas quadratically and tie group contents to buffers that the
caller is about to overwrite.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple, TypeVar

from repro.core.geometry import Rect

E = TypeVar("E")  # any object with a .rect attribute

SplitResult = Tuple[List[E], List[E]]
SplitFn = Callable[[Sequence[E], int], SplitResult]


def _validate(entries: Sequence[E], min_entries: int) -> None:
    if len(entries) < 2:
        raise ValueError("cannot split fewer than two entries")
    if min_entries < 1:
        raise ValueError("min_entries must be at least 1")
    if len(entries) < 2 * min_entries:
        raise ValueError(
            f"{len(entries)} entries cannot satisfy min fill {min_entries} on both sides"
        )


def quadratic_split(entries: Sequence[E], min_entries: int) -> SplitResult:
    """Guttman's quadratic split: seed with the most wasteful pair, then
    repeatedly assign the entry with the largest preference difference."""
    _validate(entries, min_entries)
    remaining = list(entries)

    # PickSeeds: the pair whose combined rectangle wastes the most area.
    worst = -1.0
    seed_a = seed_b = 0
    for i in range(len(remaining)):
        rect_i = remaining[i].rect
        for j in range(i + 1, len(remaining)):
            rect_j = remaining[j].rect
            waste = rect_i.union(rect_j).area - rect_i.area - rect_j.area
            if waste > worst:
                worst = waste
                seed_a, seed_b = i, j

    group_a = [remaining[seed_a]]
    group_b = [remaining[seed_b]]
    for index in sorted((seed_a, seed_b), reverse=True):
        remaining.pop(index)
    mbr_a = group_a[0].rect
    mbr_b = group_b[0].rect

    while remaining:
        # If one group must take everything left to reach the minimum, do so.
        if len(group_a) + len(remaining) == min_entries:
            group_a.extend(remaining)
            break
        if len(group_b) + len(remaining) == min_entries:
            group_b.extend(remaining)
            break

        # PickNext: entry with the greatest enlargement difference.
        best_index = 0
        best_diff = -1.0
        for i, entry in enumerate(remaining):
            d_a = mbr_a.union(entry.rect).area - mbr_a.area
            d_b = mbr_b.union(entry.rect).area - mbr_b.area
            diff = abs(d_a - d_b)
            if diff > best_diff:
                best_diff = diff
                best_index = i
        entry = remaining.pop(best_index)
        d_a = mbr_a.union(entry.rect).area - mbr_a.area
        d_b = mbr_b.union(entry.rect).area - mbr_b.area
        # Resolve ties by smaller area, then smaller group.
        if d_a < d_b or (
            d_a == d_b
            and (mbr_a.area, len(group_a)) <= (mbr_b.area, len(group_b))
        ):
            group_a.append(entry)
            mbr_a = mbr_a.union(entry.rect)
        else:
            group_b.append(entry)
            mbr_b = mbr_b.union(entry.rect)

    return group_a, group_b


def linear_split(entries: Sequence[E], min_entries: int) -> SplitResult:
    """Guttman's linear split: seeds are the pair with the greatest normalized
    separation along any dimension; the rest are assigned by least enlargement."""
    _validate(entries, min_entries)
    remaining = list(entries)
    dim = remaining[0].rect.dim

    best_separation = -1.0
    seed_a = 0
    seed_b = 1 if len(remaining) > 1 else 0
    for axis in range(dim):
        highest_lo = max(range(len(remaining)), key=lambda i: remaining[i].rect.lo[axis])
        lowest_hi = min(range(len(remaining)), key=lambda i: remaining[i].rect.hi[axis])
        if highest_lo == lowest_hi:
            continue
        width = (
            max(e.rect.hi[axis] for e in remaining)
            - min(e.rect.lo[axis] for e in remaining)
        )
        if width <= 0:
            continue
        separation = (
            remaining[highest_lo].rect.lo[axis] - remaining[lowest_hi].rect.hi[axis]
        ) / width
        if separation > best_separation:
            best_separation = separation
            seed_a, seed_b = lowest_hi, highest_lo

    if seed_a == seed_b:  # fully overlapping input; any two distinct seeds do
        seed_a, seed_b = 0, 1

    group_a = [remaining[seed_a]]
    group_b = [remaining[seed_b]]
    for index in sorted((seed_a, seed_b), reverse=True):
        remaining.pop(index)
    mbr_a = group_a[0].rect
    mbr_b = group_b[0].rect

    for index, entry in enumerate(remaining):
        left = len(remaining) - index
        # Force-fill a group that needs every remaining entry to reach the
        # minimum; otherwise assign by least enlargement.
        if len(group_a) + left == min_entries:
            group_a.extend(remaining[index:])
            return group_a, group_b
        if len(group_b) + left == min_entries:
            group_b.extend(remaining[index:])
            return group_a, group_b
        d_a = mbr_a.union(entry.rect).area - mbr_a.area
        d_b = mbr_b.union(entry.rect).area - mbr_b.area
        choose_a = d_a < d_b or (d_a == d_b and len(group_a) <= len(group_b))
        if choose_a:
            group_a.append(entry)
            mbr_a = mbr_a.union(entry.rect)
        else:
            group_b.append(entry)
            mbr_b = mbr_b.union(entry.rect)

    return group_a, group_b


def rstar_split(entries: Sequence[E], min_entries: int) -> SplitResult:
    """R*-style split: choose the axis with the least total margin over all
    candidate distributions, then the distribution with the least overlap
    (ties broken by combined area)."""
    _validate(entries, min_entries)
    items = list(entries)
    dim = items[0].rect.dim
    total = len(items)
    max_k = total - min_entries  # split points: min_entries .. max_k

    def distributions(axis: int) -> List[Tuple[List[E], List[E]]]:
        candidates = []
        for sort_key in (
            lambda e: (e.rect.lo[axis], e.rect.hi[axis]),
            lambda e: (e.rect.hi[axis], e.rect.lo[axis]),
        ):
            ordered = sorted(items, key=sort_key)
            for k in range(min_entries, max_k + 1):
                candidates.append((ordered[:k], ordered[k:]))
        return candidates

    best_axis = 0
    best_margin = float("inf")
    for axis in range(dim):
        margin_sum = 0.0
        for left, right in distributions(axis):
            margin_sum += Rect.union_all(e.rect for e in left).margin
            margin_sum += Rect.union_all(e.rect for e in right).margin
        if margin_sum < best_margin:
            best_margin = margin_sum
            best_axis = axis

    best_split: SplitResult = ([], [])
    best_key = (float("inf"), float("inf"))
    for left, right in distributions(best_axis):
        mbr_left = Rect.union_all(e.rect for e in left)
        mbr_right = Rect.union_all(e.rect for e in right)
        key = (mbr_left.overlap_area(mbr_right), mbr_left.area + mbr_right.area)
        if key < best_key:
            best_key = key
            best_split = (list(left), list(right))
    return best_split


SPLIT_POLICIES: Dict[str, SplitFn] = {
    "linear": linear_split,
    "quadratic": quadratic_split,
    "rstar": rstar_split,
}
