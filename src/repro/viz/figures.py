"""Renderings of the paper's illustrative figures from live structures."""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.citysim.city import City
from repro.core.ctrtree import CTRTree
from repro.core.geometry import Rect
from repro.core.overflow import NodeBuffer
from repro.core.qsregion import QSRegion, TrailSample
from repro.core.update_graph import UpdateGraph
from repro.viz.svg import SVGCanvas

#: Per-level stroke colours for structural drawings (leaf upward).
LEVEL_COLORS = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#8c564b")

TRAIL_COLORS = (
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
    "#8c564b", "#e377c2", "#17becf", "#bcbd22", "#7f7f7f",
)


def draw_city(city: City, width: int = 800) -> SVGCanvas:
    """The generated city map: buildings, roads, intersections, park."""
    canvas = SVGCanvas(city.bounds, width=width)
    canvas.title(
        f"City map: {len(city.buildings)} buildings, {len(city.roads)} roads, "
        f"{len(city.intersections)} intersections, 1 park"
    )
    canvas.rect(city.park, stroke="#2ca02c", fill="#d4eed1", stroke_width=1.5)
    for road in city.roads:
        canvas.line(road.a, road.b, stroke="#bbbbbb", stroke_width=1.0)
    for building in city.buildings:
        canvas.rect(building.rect, stroke="#555555", fill="#e8e8f4")
        canvas.circle(building.entrance, radius=1.5, fill="#555555")
    for intersection in city.intersections:
        canvas.circle(intersection, radius=3.0, fill="#d62728")
    return canvas


def draw_trails(
    world: Rect,
    histories: Mapping[int, Sequence[TrailSample]],
    regions: Optional[Mapping[int, Sequence[QSRegion]]] = None,
    max_objects: int = 10,
    width: int = 800,
) -> SVGCanvas:
    """Figure 2(a): object trails (bold connected lines) and the bounding
    rectangles of their initial qs-regions (dashed boxes)."""
    canvas = SVGCanvas(world, width=width)
    canvas.title("Figure 2(a): object trails and initial qs-regions")
    for slot, (oid, trail) in enumerate(histories.items()):
        if slot >= max_objects:
            break
        color = TRAIL_COLORS[slot % len(TRAIL_COLORS)]
        canvas.polyline([p for p, _t in trail], stroke=color, stroke_width=1.2, opacity=0.8)
        if trail:
            canvas.circle(trail[0][0], radius=2.5, fill=color)
        if regions is not None:
            for region in regions.get(oid, ()):
                canvas.rect(region.rect, stroke=color, dashed=True, stroke_width=1.0)
    return canvas


def draw_update_graph(
    world: Rect,
    graph: UpdateGraph,
    title: str = "Figure 5: merged qs-regions and the update graph",
    width: int = 800,
    max_edge_width: float = 4.0,
) -> SVGCanvas:
    """Figures 2(b)/5: qs-regions as boxes, inter-region traffic as links
    whose thickness scales with edge weight."""
    canvas = SVGCanvas(world, width=width)
    canvas.title(title)
    max_weight = max((w for _a, _b, w in graph.edges()), default=1.0)
    for a, b, weight in graph.edges():
        stroke = 0.5 + (weight / max_weight) * max_edge_width
        canvas.line(
            graph.region(a).rect.center,
            graph.region(b).rect.center,
            stroke="#ff7f0e",
            stroke_width=stroke,
            opacity=0.7,
        )
    for rid in graph.region_ids:
        region = graph.region(rid)
        canvas.rect(region.rect, stroke="#1f77b4", dashed=True, stroke_width=1.2)
        canvas.circle(region.rect.center, radius=2.0, fill="#1f77b4")
    return canvas


def draw_structural_tree(tree: CTRTree, width: int = 800) -> SVGCanvas:
    """Figure 6: the structural R-tree over qs-regions -- nested node MBRs
    (solid, coloured by level) over the qs-region rectangles (dashed)."""
    canvas = SVGCanvas(tree.domain, width=width)
    canvas.title(
        f"Figure 6: structural R-tree ({tree.region_count} qs-regions, "
        f"height {tree.height})"
    )
    for node in tree.iter_nodes():
        if node.mbr is None:
            continue
        color = LEVEL_COLORS[min(node.level + 1, len(LEVEL_COLORS) - 1)]
        canvas.rect(node.mbr, stroke=color, stroke_width=1.5 + 0.5 * node.level)
    for _node, qs in tree.iter_qs_entries():
        canvas.rect(qs.rect, stroke="#1f77b4", dashed=True)
    return canvas


def draw_ct_tree(tree: CTRTree, width: int = 800) -> SVGCanvas:
    """Figure 7-style: where the data actually lives -- qs-region chains
    (fill intensity = chain length), node buffers (hatched in orange), and
    the current objects as dots."""
    canvas = SVGCanvas(tree.domain, width=width)
    canvas.title(
        f"Figure 7: CT-R-tree data placement ({len(tree)} objects, "
        f"{tree.buffered_object_count()} buffered)"
    )
    chain_lengths: Dict[int, int] = {}
    for _node, qs in tree.iter_qs_entries():
        chain_lengths[qs.region_id] = len(qs.chain)
    longest = max(chain_lengths.values(), default=1) or 1
    for _node, qs in tree.iter_qs_entries():
        intensity = len(qs.chain) / longest
        fill = f"rgba(31,119,180,{0.08 + 0.5 * intensity:.2f})"
        canvas.rect(qs.rect, stroke="#1f77b4", fill=fill, stroke_width=1.0)
        if qs.chain:
            canvas.text(
                qs.rect.center, str(qs.object_count()), size=9, anchor="middle"
            )
    for node in tree.iter_nodes():
        buf = node.buffer
        occupied = (
            buf.object_count()
            if buf.kind == NodeBuffer.KIND_LIST
            else len(tree._buffer_trees[node.pid])
        )
        if occupied and node.mbr is not None:
            canvas.rect(node.mbr, stroke="#ff7f0e", dashed=True, stroke_width=1.5)
            canvas.text(
                (node.mbr.lo[0], node.mbr.hi[1]),
                f"buffer: {occupied} ({buf.kind})",
                size=9,
                fill="#ff7f0e",
            )
    for _oid, point in tree.iter_objects():
        canvas.circle(point, radius=1.0, fill="#333333", opacity=0.5)
    return canvas
