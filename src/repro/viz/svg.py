"""A minimal SVG canvas -- just enough for the figure renderings.

Coordinates are given in *world* units (the city's metres); the canvas maps
them into the SVG viewport with y flipped (SVG grows downward, maps grow
upward).
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.core.geometry import Rect

Color = str


def _fmt(value: float) -> str:
    return f"{value:.2f}".rstrip("0").rstrip(".")


class SVGCanvas:
    """Accumulates SVG elements over a world-coordinate viewport."""

    def __init__(
        self,
        world: Rect,
        width: int = 800,
        margin: float = 20.0,
        background: Optional[Color] = "#ffffff",
    ) -> None:
        if world.dim != 2:
            raise ValueError("SVG rendering is 2-D only")
        self.world = world
        self.margin = margin
        span_x, span_y = world.sides
        if span_x <= 0 or span_y <= 0:
            raise ValueError("world rectangle must have positive area")
        self.scale = (width - 2 * margin) / span_x
        self.width = width
        self.height = int(span_y * self.scale + 2 * margin)
        self._elements: List[str] = []
        if background:
            self._elements.append(
                f'<rect x="0" y="0" width="{self.width}" height="{self.height}" '
                f'fill="{background}"/>'
            )

    # -- coordinate mapping -----------------------------------------------

    def x(self, wx: float) -> float:
        return self.margin + (wx - self.world.lo[0]) * self.scale

    def y(self, wy: float) -> float:
        return self.height - self.margin - (wy - self.world.lo[1]) * self.scale

    # -- primitives -----------------------------------------------------------

    def rect(
        self,
        rect: Rect,
        stroke: Color = "#333333",
        fill: Color = "none",
        stroke_width: float = 1.0,
        dashed: bool = False,
        opacity: float = 1.0,
    ) -> None:
        x0, y0 = self.x(rect.lo[0]), self.y(rect.hi[1])
        w = rect.sides[0] * self.scale
        h = rect.sides[1] * self.scale
        dash = ' stroke-dasharray="5,3"' if dashed else ""
        self._elements.append(
            f'<rect x="{_fmt(x0)}" y="{_fmt(y0)}" width="{_fmt(w)}" height="{_fmt(h)}" '
            f'stroke="{stroke}" fill="{fill}" stroke-width="{_fmt(stroke_width)}" '
            f'opacity="{_fmt(opacity)}"{dash}/>'
        )

    def line(
        self,
        a: Sequence[float],
        b: Sequence[float],
        stroke: Color = "#333333",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
    ) -> None:
        self._elements.append(
            f'<line x1="{_fmt(self.x(a[0]))}" y1="{_fmt(self.y(a[1]))}" '
            f'x2="{_fmt(self.x(b[0]))}" y2="{_fmt(self.y(b[1]))}" '
            f'stroke="{stroke}" stroke-width="{_fmt(stroke_width)}" '
            f'opacity="{_fmt(opacity)}"/>'
        )

    def polyline(
        self,
        points: Sequence[Sequence[float]],
        stroke: Color = "#333333",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
    ) -> None:
        if len(points) < 2:
            return
        path = " ".join(f"{_fmt(self.x(p[0]))},{_fmt(self.y(p[1]))}" for p in points)
        self._elements.append(
            f'<polyline points="{path}" fill="none" stroke="{stroke}" '
            f'stroke-width="{_fmt(stroke_width)}" opacity="{_fmt(opacity)}"/>'
        )

    def circle(
        self,
        center: Sequence[float],
        radius: float = 2.0,
        fill: Color = "#333333",
        opacity: float = 1.0,
    ) -> None:
        self._elements.append(
            f'<circle cx="{_fmt(self.x(center[0]))}" cy="{_fmt(self.y(center[1]))}" '
            f'r="{_fmt(radius)}" fill="{fill}" opacity="{_fmt(opacity)}"/>'
        )

    def text(
        self,
        position: Sequence[float],
        content: str,
        size: int = 12,
        fill: Color = "#111111",
        anchor: str = "start",
    ) -> None:
        escaped = (
            content.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
        )
        self._elements.append(
            f'<text x="{_fmt(self.x(position[0]))}" y="{_fmt(self.y(position[1]))}" '
            f'font-size="{size}" font-family="sans-serif" fill="{fill}" '
            f'text-anchor="{anchor}">{escaped}</text>'
        )

    def title(self, content: str) -> None:
        escaped = content.replace("&", "&amp;").replace("<", "&lt;")
        self._elements.append(
            f'<text x="{_fmt(self.margin)}" y="{_fmt(self.margin * 0.8)}" '
            f'font-size="14" font-family="sans-serif" font-weight="bold" '
            f'fill="#111111">{escaped}</text>'
        )

    # -- output -----------------------------------------------------------------

    def to_svg(self) -> str:
        body = "\n  ".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">\n  {body}\n</svg>\n'
        )

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_svg(), encoding="utf-8")
        return path

    @property
    def element_count(self) -> int:
        return len(self._elements)
