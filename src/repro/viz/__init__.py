"""Visualization: SVG renderings of the paper's illustrative figures.

The evaluation figures (8-13) are regenerated as data tables by
:mod:`repro.experiments`; this package reproduces the *illustrative* figures
as SVG drawings from live data structures:

* Figure 2(a): object trails segmented into initial qs-regions;
* Figure 2(b) / Figure 5: the update graph before/after merging;
* Figure 6: the structural R-tree over qs-regions;
* Figure 7-style: the CT-R-tree's data placement (chains and buffers);
* plus the generated city map itself.

Everything is dependency-free SVG (see :mod:`repro.viz.svg`).
"""

from repro.viz.svg import SVGCanvas
from repro.viz.figures import (
    draw_city,
    draw_ct_tree,
    draw_structural_tree,
    draw_trails,
    draw_update_graph,
)

__all__ = [
    "SVGCanvas",
    "draw_city",
    "draw_ct_tree",
    "draw_structural_tree",
    "draw_trails",
    "draw_update_graph",
]
