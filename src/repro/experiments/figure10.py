"""Figure 10: total I/O vs query size.

Same sweep as Figure 9 but measuring *overall* performance under the
baseline update-heavy mix (update/query ratio 100, Table 1's
``lambda_u / lambda_q``).  Paper shape: although the CT-R-tree loses on
queries, "its loss in query performance is compensated with a significant
gain in update performance", making it the overall winner across all query
sizes (three-fold over the alpha-tree and four-fold over the lazy-R-tree at
the paper's scale).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.harness import (
    ExperimentResult,
    build_workload,
    ratio_controls,
    run_index_on,
)
from repro.workload.driver import IndexKind

DEFAULT_SIZES_PCT = (0.1, 0.25, 0.5, 1.0, 2.0)
#: Table 1 baseline: lambda_u / lambda_q = 5000 / 50.
DEFAULT_RATIO = 100.0


def run(
    scale: str = "small",
    seed: int = 0,
    sizes_pct: Sequence[float] = DEFAULT_SIZES_PCT,
    kinds: Sequence[str] = (IndexKind.LAZY, IndexKind.ALPHA, IndexKind.CT),
    ratio: float = DEFAULT_RATIO,
) -> ExperimentResult:
    bundle = build_workload(scale, seed)
    duration = bundle.update_stream().duration
    skip, query_rate = ratio_controls(bundle.scale, duration, ratio)
    result = ExperimentResult(
        title=f"Figure 10: total I/O vs query size (ratio={ratio:g}, scale={scale})",
        columns=["query size (%)"] + [IndexKind.LABELS[k] for k in kinds],
    )
    for size_pct in sizes_pct:
        row: dict = {"query size (%)": size_pct}
        for kind in kinds:
            run_ = run_index_on(
                kind,
                bundle,
                skip=skip,
                query_rate=query_rate,
                query_size_fraction=size_pct / 100.0,
            )
            row[IndexKind.LABELS[kind]] = run_.result.total_ios
        result.add(**row)
    result.notes.append(
        "update/query ratio fixed at the Table-1 baseline (100); "
        "the paper's Figure 10 shows the CT-R-tree winning at every query size"
    )
    return result


def main(scale: str = "small") -> None:
    print(run(scale))


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "small")
