"""Figure 8: total I/O vs update/query ratio (log-log), four indexes.

Paper findings this module reproduces in shape:

* all four indexes need more I/O as the ratio grows (more updates = more
  demand);
* at low ratios the CT-R-tree is the *worst* (about 2x the R-trees): its
  qs-regions are looser than tight MBRs, so queries touch more of them;
* past a crossover (paper: ratio ~5.6) the R-tree family deteriorates
  sharply while the CT-R-tree "gracefully handles the high update burden";
  at ratio 1000 the paper measures CT at 1/4 the I/O of the alpha-tree,
  1/7 of the lazy-R-tree and 1/27 of the R-tree.

The ratio is swept the paper's way: the query generation rate stays fixed
while update samples are skipped; for ratios beyond full sampling the query
rate drops instead (see :func:`repro.experiments.harness.ratio_controls`).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.harness import (
    ExperimentResult,
    build_workload,
    ratio_controls,
    run_index_on,
)
from repro.workload.driver import IndexKind

DEFAULT_RATIOS = (0.01, 0.1, 1.0, 10.0, 100.0, 1000.0)


def run(
    scale: str = "small",
    seed: int = 0,
    ratios: Sequence[float] = DEFAULT_RATIOS,
    kinds: Sequence[str] = IndexKind.ALL,
    query_size_fraction: float = 0.001,
) -> ExperimentResult:
    bundle = build_workload(scale, seed)
    full_duration = bundle.update_stream().duration
    result = ExperimentResult(
        title=f"Figure 8: total I/O vs update/query ratio (scale={scale})",
        columns=["ratio", "updates", "queries"]
        + [IndexKind.LABELS[k] for k in kinds],
    )
    for ratio in ratios:
        skip, query_rate = ratio_controls(bundle.scale, full_duration, ratio)
        row: dict = {"ratio": ratio}
        for kind in kinds:
            run_ = run_index_on(
                kind,
                bundle,
                skip=skip,
                query_rate=query_rate,
                query_size_fraction=query_size_fraction,
            )
            row[IndexKind.LABELS[kind]] = run_.result.total_ios
            row["updates"] = run_.result.n_updates
            row["queries"] = run_.result.n_queries
        result.add(**row)
    result.notes.append(
        "query rate fixed, update samples skipped (low ratios); full sampling "
        "with reduced query rate (high ratios) -- the paper's Section 4.2.1 protocol"
    )
    return result


def crossover_ratio(result: ExperimentResult, kind_a: str, kind_b: str) -> Optional[float]:
    """The first swept ratio where ``kind_a`` becomes cheaper than ``kind_b``."""
    label_a, label_b = IndexKind.LABELS[kind_a], IndexKind.LABELS[kind_b]
    for row in result.rows:
        if row[label_a] < row[label_b]:
            return float(row["ratio"])  # type: ignore[arg-type]
    return None


def main(scale: str = "small") -> None:
    result = run(scale)
    print(result)
    cross = crossover_ratio(result, IndexKind.CT, IndexKind.ALPHA)
    print(f"\nCT-R-tree beats the alpha-tree from ratio: {cross}")


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "small")
