"""Ablations: the design choices DESIGN.md calls out, measured one by one.

These go beyond the paper's own figures and quantify *why* the CT-R-tree
behaves as it does:

* ``secondary_index`` -- the hash index of Figure 1 (traditional R-tree vs
  lazy-R-tree) at the baseline mix: how much of the win is just lazy updates;
* ``merge_phases`` -- CT-R-tree built from raw Phase-1 regions vs after
  Phase-2 density merging vs the full pipeline: what the merging buys;
* ``t_list`` -- the linked-list -> alpha-R-tree conversion threshold;
* ``split_policy`` -- linear / quadratic / R* splits under the lazy-R-tree;
* ``buffer_pool`` -- an LRU cache under the lazy-R-tree and the CT-R-tree:
  does the CT advantage survive caching;
* ``bulk_loading`` -- STR packing vs repeated insertion for the initial load.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.builder import CTRTreeBuilder
from repro.core.ctrtree import CTRTree
from repro.core.params import CTParams
from repro.core.qsregion import identify_qs_regions
from repro.experiments.harness import (
    ExperimentResult,
    WorkloadBundle,
    build_workload,
    ratio_controls,
    run_index_on,
)
from repro.rtree.bulk import str_pack
from repro.rtree.lazy import LazyRTree
from repro.storage.buffer_pool import BufferPool
from repro.storage.iostats import IOCategory
from repro.storage.pager import Pager
from repro.engine import IndexKind, make_index
from repro.workload import QueryWorkload, SimulationDriver, UpdateStream

BASELINE_RATIO = 100.0


def _controls(bundle: WorkloadBundle, ratio: float = BASELINE_RATIO):
    duration = bundle.update_stream().duration
    return ratio_controls(bundle.scale, duration, ratio)


def run_secondary_index(scale: str = "small", seed: int = 0) -> ExperimentResult:
    bundle = build_workload(scale, seed)
    skip, query_rate = _controls(bundle)
    result = ExperimentResult(
        title=f"Ablation: secondary hash index (scale={scale})",
        columns=["index", "update I/O", "query I/O", "total I/O", "I/O per update"],
    )
    for kind in (IndexKind.RTREE, IndexKind.LAZY):
        run_ = run_index_on(kind, bundle, skip=skip, query_rate=query_rate)
        result.add(
            **{
                "index": IndexKind.LABELS[kind],
                "update I/O": run_.result.update_ios,
                "query I/O": run_.result.query_ios,
                "total I/O": run_.result.total_ios,
                "I/O per update": run_.result.ios_per_update,
            }
        )
    result.notes.append("Section 2.1: lazy in-MBR updates cost a constant 3 I/Os")
    return result


def run_merge_phases(scale: str = "small", seed: int = 0) -> ExperimentResult:
    """CT-R-tree with the merging pipeline truncated after each phase."""
    bundle = build_workload(scale, seed)
    skip, query_rate = _controls(bundle)
    params = CTParams()
    histories = bundle.histories()
    current = bundle.current()

    def run_with_regions(regions, label: str, result: ExperimentResult) -> None:
        pager = Pager()
        with pager.stats.category(IOCategory.BUILD):
            tree = CTRTree(pager, bundle.domain, regions, ct_params=params)
            for oid, point in current.items():
                tree.insert(oid, point)
        driver = SimulationDriver(tree, pager, label)
        driver.adopt(current)
        stream = bundle.update_stream(skip=skip)
        queries = QueryWorkload(
            bundle.domain, query_rate, 0.001, seed=99
        ).between(*stream.time_span())
        run_result = driver.run(stream, queries)
        result.add(
            **{
                "pipeline": label,
                "qs-regions": tree.region_count,
                "update I/O": run_result.update_ios,
                "query I/O": run_result.query_ios,
                "total I/O": run_result.total_ios,
            }
        )

    result = ExperimentResult(
        title=f"Ablation: qs-region merging phases (scale={scale})",
        columns=["pipeline", "qs-regions", "update I/O", "query I/O", "total I/O"],
    )

    phase1_regions = [
        region
        for oid, trail in histories.items()
        for region in identify_qs_regions(trail, params, object_id=oid)
    ]
    run_with_regions(phase1_regions, "phase 1 only", result)

    builder = CTRTreeBuilder(params, query_rate=query_rate)
    graph, _count, _merges, _tmax = builder.mine(histories, bundle.domain)
    run_with_regions(graph.regions(), "full pipeline (1+2+3)", result)
    result.notes.append(
        "phase 2/3 merging trades region count for chain locality and fewer "
        "overlapping candidates per insert"
    )
    return result


def run_t_list(
    scale: str = "small", seed: int = 0, values: Sequence[int] = (1, 2, 4, 8, 16)
) -> ExperimentResult:
    bundle = build_workload(scale, seed)
    skip, query_rate = _controls(bundle)
    result = ExperimentResult(
        title=f"Ablation: T_list conversion threshold (scale={scale})",
        columns=["t_list", "update I/O", "query I/O", "total I/O"],
    )
    for value in values:
        params = CTParams(t_list=value)
        run_ = run_index_on(
            IndexKind.CT, bundle, skip=skip, query_rate=query_rate, ct_params=params
        )
        result.add(
            **{
                "t_list": value,
                "update I/O": run_.result.update_ios,
                "query I/O": run_.result.query_ios,
                "total I/O": run_.result.total_ios,
            }
        )
    return result


def run_split_policy(scale: str = "small", seed: int = 0) -> ExperimentResult:
    bundle = build_workload(scale, seed)
    skip, query_rate = _controls(bundle)
    result = ExperimentResult(
        title=f"Ablation: split policy under the lazy-R-tree (scale={scale})",
        columns=["split", "update I/O", "query I/O", "total I/O"],
    )
    stream = bundle.update_stream(skip=skip)
    variants = [
        ("linear", {}),
        ("quadratic", {}),
        ("rstar", {}),
        ("rstar + forced reinsert", {"forced_reinsert": 0.3}),
    ]
    for split, extra in variants:
        pager = Pager()
        tree = LazyRTree(pager, split=split.split(" ")[0], **extra)
        driver = SimulationDriver(tree, pager, f"lazy-{split}")
        driver.load(bundle.current())
        queries = QueryWorkload(
            bundle.domain, query_rate, 0.001, seed=99
        ).between(*stream.time_span())
        run_result = driver.run(stream, queries)
        result.add(
            **{
                "split": split,
                "update I/O": run_result.update_ios,
                "query I/O": run_result.query_ios,
                "total I/O": run_result.total_ios,
            }
        )
    return result


def run_buffer_pool(
    scale: str = "small", seed: int = 0, capacity: int = 256
) -> ExperimentResult:
    """Does the CT-R-tree's advantage survive an LRU cache?"""
    bundle = build_workload(scale, seed)
    skip, query_rate = _controls(bundle)
    result = ExperimentResult(
        title=f"Ablation: LRU buffer pool, {capacity} frames (scale={scale})",
        columns=["index", "cache", "total I/O", "hit rate"],
    )
    for kind in (IndexKind.LAZY, IndexKind.CT):
        for cached in (False, True):
            pager = Pager()
            store = BufferPool(pager, capacity=capacity) if cached else pager
            index = make_index(
                kind,
                store,  # type: ignore[arg-type]
                bundle.domain,
                histories=bundle.histories() if kind == IndexKind.CT else None,
                query_rate=query_rate,
            )
            driver = SimulationDriver(index, store, kind)  # type: ignore[arg-type]
            driver.load(bundle.current())
            stream = bundle.update_stream(skip=skip)
            queries = QueryWorkload(
                bundle.domain, query_rate, 0.001, seed=99
            ).between(*stream.time_span())
            run_result = driver.run(stream, queries)
            result.add(
                **{
                    "index": IndexKind.LABELS[kind],
                    "cache": "LRU" if cached else "none",
                    "total I/O": run_result.total_ios,
                    "hit rate": store.hit_rate if cached else 0.0,
                }
            )
    return result


def run_bulk_loading(scale: str = "small", seed: int = 0) -> ExperimentResult:
    """STR packing vs repeated insertion for the initial load of a lazy tree."""
    bundle = build_workload(scale, seed)
    current = bundle.current()
    result = ExperimentResult(
        title=f"Ablation: bulk loading the initial positions (scale={scale})",
        columns=["method", "build I/O", "leaf pages", "query I/O (100 queries)"],
    )
    for method in ("repeated insertion", "STR packing"):
        pager = Pager()
        tree = LazyRTree(pager)
        with pager.stats.category(IOCategory.BUILD):
            if method == "STR packing":
                str_pack(tree.tree, list(current.items()))
                tree.hash.set_many(
                    (entry.child, leaf.pid)
                    for leaf in tree.tree.iter_leaves()
                    for entry in leaf.entries
                )
            else:
                for oid, point in current.items():
                    tree.insert(oid, point)
        build_io = pager.stats.total(IOCategory.BUILD)
        queries = QueryWorkload(bundle.domain, 1.0, 0.001, seed=99).take(100)
        with pager.stats.category(IOCategory.QUERY):
            for query in queries:
                tree.range_search(query.rect)
        result.add(
            **{
                "method": method,
                "build I/O": build_io,
                "leaf pages": sum(1 for _ in tree.tree.iter_leaves()),
                "query I/O (100 queries)": pager.stats.total(IOCategory.QUERY),
            }
        )
    return result


def run_mobility_models(scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Robustness of the CT-R-tree to the movement model.

    The city model is the paper's premise (dwell/travel); random waypoint
    has dwells but no shared buildings; Gauss-Markov never dwells at all --
    the adversarial case where the CT-R-tree should degrade gracefully
    toward lazy-R-tree behaviour, not collapse.
    """
    from repro.citysim import City, CitySimulator
    from repro.citysim.models import make_model
    from repro.citysim.trace import Trace
    from repro.experiments.scales import get_scale
    import random as random_module

    preset = get_scale(scale)
    result = ExperimentResult(
        title=f"Ablation: mobility models (scale={scale})",
        columns=[
            "model",
            "qs-regions",
            "lazy-R-tree I/O",
            "CT-R-tree I/O",
            "CT lazy %",
        ],
    )
    for model_name in ("city", "waypoint", "gauss_markov"):
        city = City.generate(seed=seed, n_buildings=preset.n_buildings)
        rng = random_module.Random(seed + 1)
        simulator = CitySimulator(
            city,
            preset.simulation_params(),
            seed=seed + 1,
            report_interval=preset.report_interval,
            model=make_model(model_name, city, rng),
        )
        trace: Trace = simulator.run()
        histories = trace.histories(preset.n_history)
        current = trace.current_positions(preset.n_history)
        stream = UpdateStream(trace, preset.n_history)
        row: Dict[str, object] = {"model": model_name}
        for kind in (IndexKind.LAZY, IndexKind.CT):
            pager = Pager()
            index = make_index(
                kind,
                pager,
                city.bounds,
                histories=histories if kind == IndexKind.CT else None,
                query_rate=preset.base_update_rate / 100.0,
            )
            driver = SimulationDriver(index, pager, kind)
            driver.load(current)
            run_result = driver.run(stream, [])
            label = "lazy-R-tree I/O" if kind == IndexKind.LAZY else "CT-R-tree I/O"
            row[label] = run_result.update_ios
            if kind == IndexKind.CT:
                row["qs-regions"] = index.region_count  # type: ignore[attr-defined]
                row["CT lazy %"] = 100.0 * index.lazy_hits / max(run_result.n_updates, 1)
        result.add(**row)
    result.notes.append(
        "gauss_markov is the adversarial no-dwell case: few qs-regions, "
        "CT should track (not beat) the lazy-R-tree"
    )
    return result


def run(scale: str = "small", seed: int = 0) -> Dict[str, ExperimentResult]:
    return {
        "secondary_index": run_secondary_index(scale, seed),
        "merge_phases": run_merge_phases(scale, seed),
        "t_list": run_t_list(scale, seed),
        "split_policy": run_split_policy(scale, seed),
        "buffer_pool": run_buffer_pool(scale, seed),
        "bulk_loading": run_bulk_loading(scale, seed),
        "mobility_models": run_mobility_models(scale, seed),
    }


def main(scale: str = "small") -> None:
    for result in run(scale).values():
        print(result)
        print()


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "small")
