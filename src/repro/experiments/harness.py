"""Shared experiment harness: workload construction, index runs, tables.

The harness reproduces the paper's measurement protocol (Section 4.1):

1. simulate the city and record ``N_hist + N_update`` samples per object;
2. mine qs-regions from the first ``N_hist - 1`` samples, load the
   ``N_hist``-th as the initial index contents;
3. replay the remaining samples as dynamic updates interleaved (in timestamp
   order) with Poisson range queries;
4. report page I/Os, split into update and query I/O.

Workload bundles are memoized per (scale, seed) so a sweep over index kinds
or parameters reuses one simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.citysim import City, CitySimulator, Trace
from repro.core.builder import BuildReport
from repro.core.geometry import Rect
from repro.core.params import CTParams
from repro.engine import FlushPolicy, ShardedIndex, UpdateBuffer
from repro.experiments.scales import Scale, get_scale
from repro.obs import tree_stats
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager
from repro.workload import (
    QueryWorkload,
    RangeQuery,
    SimulationDriver,
    UpdateStream,
    make_index,
)
from repro.workload.driver import IndexKind, RunResult


@dataclass
class WorkloadBundle:
    """One simulated workload: city, trace, and the phase slices."""

    scale: Scale
    city: City
    trace: Trace
    seed: int

    @property
    def domain(self) -> Rect:
        return self.city.bounds

    def histories(self, object_ids: Optional[Sequence[int]] = None) -> Dict:
        trace = (
            self.trace
            if object_ids is None
            else self.trace.restricted_to(object_ids)
        )
        return trace.histories(self.scale.n_history)

    def current(self, object_ids: Optional[Sequence[int]] = None) -> Dict:
        trace = (
            self.trace
            if object_ids is None
            else self.trace.restricted_to(object_ids)
        )
        return trace.current_positions(self.scale.n_history)

    def update_stream(
        self, skip: int = 1, object_ids: Optional[Sequence[int]] = None
    ) -> UpdateStream:
        return UpdateStream(
            self.trace, self.scale.n_history, skip=skip, object_ids=object_ids
        )


_BUNDLES: Dict[Tuple[str, int], WorkloadBundle] = {}


def build_workload(scale: str = "small", seed: int = 0, fresh: bool = False) -> WorkloadBundle:
    """Simulate (or fetch the memoized) workload for a scale preset."""
    key = (scale, seed)
    if not fresh and key in _BUNDLES:
        return _BUNDLES[key]
    preset = get_scale(scale)
    city = City.generate(seed=seed, n_buildings=preset.n_buildings)
    simulator = CitySimulator(
        city,
        preset.simulation_params(),
        seed=seed + 1,
        report_interval=preset.report_interval,
    )
    trace = simulator.run()
    bundle = WorkloadBundle(scale=preset, city=city, trace=trace, seed=seed)
    if not fresh:
        _BUNDLES[key] = bundle
    return bundle


def clear_workload_cache() -> None:
    _BUNDLES.clear()


@dataclass
class IndexRun:
    """One index driven through one workload, with everything measured."""

    result: RunResult
    index: object
    pager: object
    build_report: Optional[BuildReport] = None
    #: The LRU pool the index ran over, when ``run_index_on`` was asked for
    #: one (None = paper accounting, every access charged).
    pool: Optional[BufferPool] = None
    #: The coalescing update buffer, when ``run_index_on`` ran batched.
    buffer: Optional[UpdateBuffer] = None

    @property
    def lazy_hits(self) -> Optional[int]:
        return getattr(self.index, "lazy_hits", None)

    def tree_stats(self) -> Dict:
        """Shape statistics of the driven index (uncharged probe)."""
        return tree_stats(self.index)


def run_index_on(
    kind: str,
    bundle: WorkloadBundle,
    *,
    skip: int = 1,
    query_rate: Optional[float] = None,
    query_count: Optional[int] = None,
    query_size_fraction: float = 0.001,
    ct_params: Optional[CTParams] = None,
    adaptive: bool = True,
    object_ids: Optional[Sequence[int]] = None,
    query_seed: int = 99,
    max_entries: int = 20,
    builder_query_rate: Optional[float] = None,
    buffer_pool: Optional[int] = None,
    shards: int = 1,
    batch: int = 0,
    batch_horizon: Optional[float] = None,
) -> IndexRun:
    """Build ``kind`` over the bundle and replay updates + queries.

    Exactly one of ``query_rate`` / ``query_count`` sets the query volume;
    queries are Poisson over the online span either way.

    ``builder_query_rate`` is the query rate the CT-R-tree's Equation-6 merge
    *anticipates* at construction time.  The paper builds one index at the
    Table-1 baseline (update/query ratio 100) and evaluates it under varying
    mixes, so this defaults to ``base_update_rate / 100`` rather than the
    swept per-point rate.

    ``buffer_pool`` wraps the pager in an LRU :class:`BufferPool` of that
    many frames (the ablation substrate); None keeps the paper's cache-less
    accounting.

    ``shards > 1`` runs the engine's space-partitioned router (one pager and
    index per shard, ledgers merged); ``batch > 0`` runs batched updates
    through a coalescing :class:`UpdateBuffer` of that size
    (``batch_horizon`` adds a time-based flush trigger).  Both compose with
    every index kind and with ``buffer_pool``.
    """
    stream = bundle.update_stream(skip=skip, object_ids=object_ids)
    histories = bundle.histories(object_ids)
    current = bundle.current(object_ids)

    full_span = bundle.trace.online_span(bundle.scale.n_history)
    full_duration = full_span[1] - full_span[0]
    effective_query_rate = _resolve_query_rate(full_duration, query_rate, query_count)
    if builder_query_rate is None:
        builder_query_rate = bundle.scale.base_update_rate / 100.0
    pool: Optional[BufferPool] = None
    if shards > 1:
        index = ShardedIndex(
            kind,
            bundle.domain,
            shards,
            max_entries=max_entries,
            ct_params=ct_params,
            histories=histories if kind == IndexKind.CT else None,
            query_rate=builder_query_rate,
            adaptive=adaptive,
            pool_frames=buffer_pool or 0,
        )
        store = index.pager
        pager = store
    else:
        pager = Pager()
        pool = BufferPool(pager, capacity=buffer_pool) if buffer_pool else None
        store = pool if pool is not None else pager
        index = make_index(
            kind,
            store,
            bundle.domain,
            max_entries=max_entries,
            ct_params=ct_params,
            histories=histories if kind == IndexKind.CT else None,
            query_rate=builder_query_rate,
            adaptive=adaptive,
        )
    buffer = (
        UpdateBuffer(FlushPolicy(batch_size=batch, horizon=batch_horizon))
        if batch or batch_horizon is not None
        else None
    )
    driver = SimulationDriver(index, store, kind, update_buffer=buffer)
    driver.load(current, now=bundle.trace.load_time(bundle.scale.n_history))

    # Queries span the full online window even when updates are thinned: the
    # paper keeps the query process fixed while skipping update samples.
    t_start, t_end = full_span
    workload = QueryWorkload(
        bundle.domain, effective_query_rate, query_size_fraction, seed=query_seed
    )
    queries: List[RangeQuery] = workload.between(t_start, t_end) if t_end > t_start else []
    result = driver.run(stream, queries)
    return IndexRun(result=result, index=index, pager=pager, pool=pool, buffer=buffer)


def _resolve_query_rate(
    duration: float,
    query_rate: Optional[float],
    query_count: Optional[int],
) -> float:
    if query_rate is not None and query_count is not None:
        raise ValueError("pass query_rate or query_count, not both")
    if query_rate is not None:
        return query_rate
    count = query_count if query_count is not None else 0
    return max(count, 1) / (duration or 1.0)


def ratio_controls(
    scale: Scale, stream_duration: float, ratio: float
) -> Tuple[int, float]:
    """(skip, query_rate) realizing an update/query ratio.

    The paper fixes the query generation rate and thins updates by skipping
    samples (Section 4.2.1); for ratios beyond what full sampling reaches,
    the query rate is lowered instead.  Returns a sample-skip factor and a
    query arrival rate such that ``update_rate / query_rate == ratio`` while
    keeping the query count near ``scale.query_pool``.
    """
    if ratio <= 0:
        raise ValueError("ratio must be positive")
    duration = max(stream_duration, 1e-9)
    base_rate = scale.base_update_rate
    base_query_rate = scale.query_pool / duration
    skip = base_rate / (ratio * base_query_rate)
    if skip >= 1.0:
        skip_int = max(1, round(skip))
        return skip_int, base_rate / skip_int / ratio
    return 1, base_rate / ratio


@dataclass
class ExperimentResult:
    """Rows of one experiment, rendered as an aligned text table."""

    title: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, **values: object) -> None:
        self.rows.append(values)

    def column(self, name: str) -> List[object]:
        return [row.get(name) for row in self.rows]

    def to_table(self) -> str:
        def fmt(value: object) -> str:
            if isinstance(value, float):
                return f"{value:,.2f}"
            if isinstance(value, int):
                return f"{value:,}"
            return str(value)

        widths = {
            c: max(len(c), *(len(fmt(r.get(c, ""))) for r in self.rows))
            if self.rows
            else len(c)
            for c in self.columns
        }
        lines = [self.title, "=" * len(self.title)]
        lines.append(" | ".join(c.ljust(widths[c]) for c in self.columns))
        lines.append("-+-".join("-" * widths[c] for c in self.columns))
        for row in self.rows:
            lines.append(
                " | ".join(fmt(row.get(c, "")).rjust(widths[c]) for c in self.columns)
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        lines = [",".join(self.columns)]
        for row in self.rows:
            lines.append(",".join(str(row.get(c, "")) for c in self.columns))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_table()
