"""Figure 9: query-I/O ratio vs query size.

The lazy-R-tree keeps tight MBRs, so it is the query-cost yardstick ("the
lazy-R-tree and the traditional R-tree have identical query performance").
This experiment measures the *query* I/O of the alpha-tree and the CT-R-tree
relative to the lazy-R-tree while the query size sweeps 0.1% - 2% of the
city area.  Paper shape: both ratios are above 1 (looser rectangles hurt),
the CT-R-tree above the alpha-tree, and both *converge toward 1* as queries
grow ("with a large query area, the probability that a given region will be
covered by a query increases.  Thus the advantage of having a smaller area
MBR reduces").
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.harness import ExperimentResult, build_workload, run_index_on
from repro.workload.driver import IndexKind

#: Query sizes as percentages of the city area (the paper's x-axis).
DEFAULT_SIZES_PCT = (0.1, 0.25, 0.5, 1.0, 2.0)


def run(
    scale: str = "small",
    seed: int = 0,
    sizes_pct: Sequence[float] = DEFAULT_SIZES_PCT,
    query_count: int = 120,
) -> ExperimentResult:
    bundle = build_workload(scale, seed)
    result = ExperimentResult(
        title=f"Figure 9: query I/O ratio vs query size (scale={scale})",
        columns=[
            "query size (%)",
            "lazy-R-tree q-I/O",
            "alpha/lazy",
            "CT/lazy",
        ],
    )
    for size_pct in sizes_pct:
        fraction = size_pct / 100.0
        query_ios: Dict[str, int] = {}
        for kind in (IndexKind.LAZY, IndexKind.ALPHA, IndexKind.CT):
            run_ = run_index_on(
                kind,
                bundle,
                query_count=query_count,
                query_size_fraction=fraction,
            )
            query_ios[kind] = run_.result.query_ios
        base = max(query_ios[IndexKind.LAZY], 1)
        result.add(
            **{
                "query size (%)": size_pct,
                "lazy-R-tree q-I/O": query_ios[IndexKind.LAZY],
                "alpha/lazy": query_ios[IndexKind.ALPHA] / base,
                "CT/lazy": query_ios[IndexKind.CT] / base,
            }
        )
    result.notes.append(
        "ratios above 1 = more query I/O than the tight-MBR lazy-R-tree; "
        "the paper's Figure 9 shows both curves above 1, converging as queries grow"
    )
    return result


def main(scale: str = "small") -> None:
    print(run(scale))


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "small")
