"""Table 1: parameters and baseline values.

Renders the simulation-model and CT-R-tree parameters exactly as the paper's
Table 1, for the requested scale (``paper`` reproduces the published values
verbatim; smaller scales show what the laptop-sized runs actually use).
"""

from __future__ import annotations

from repro.core.params import CTParams, format_table1
from repro.experiments.scales import get_scale


def run(scale: str = "paper") -> str:
    preset = get_scale(scale)
    sim = preset.simulation_params()
    ct = CTParams()
    header = f"Table 1 (scale={preset.name}: N_obj={preset.n_objects:,})"
    return f"{header}\n{format_table1(sim, ct)}"


def main() -> None:
    print(run("paper"))
    print()
    print(run("small"))


if __name__ == "__main__":
    main()
