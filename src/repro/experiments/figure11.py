"""Figure 11: scalability -- total I/O vs number of objects.

The paper compares the lazy-R-tree and the CT-R-tree up to 500K objects and
observes that "the performance gap between the two indexes widens with
increasing number of objects": denser populations shrink R-tree leaf MBRs
(less change tolerance, more splits) while qs-regions keep their mined,
density-independent extent and never split.

The sweep reuses one simulated population (sub-sampling object ids), so the
per-object behaviour is identical across points; the aggregate update rate
grows with N exactly as in the paper's fixed city plan.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.harness import ExperimentResult, build_workload, run_index_on
from repro.experiments.scales import get_scale
from repro.workload.driver import IndexKind


def default_counts(scale: str) -> Sequence[int]:
    n = get_scale(scale).n_objects
    return tuple(max(1, int(n * f)) for f in (0.2, 0.4, 0.6, 0.8, 1.0))


def run(
    scale: str = "small",
    seed: int = 0,
    counts: Sequence[int] = (),
    kinds: Sequence[str] = (IndexKind.LAZY, IndexKind.CT),
    query_count: int = 60,
) -> ExperimentResult:
    bundle = build_workload(scale, seed)
    if not counts:
        counts = default_counts(scale)
    result = ExperimentResult(
        title=f"Figure 11: total I/O vs number of objects (scale={scale})",
        columns=["objects"]
        + [IndexKind.LABELS[k] for k in kinds]
        + ["gap (lazy/CT)"],
    )
    for count in counts:
        object_ids = bundle.trace.object_ids[:count]
        row: dict = {"objects": count}
        for kind in kinds:
            run_ = run_index_on(
                kind,
                bundle,
                object_ids=object_ids,
                query_count=query_count,
            )
            row[IndexKind.LABELS[kind]] = run_.result.total_ios
        lazy_total = row.get(IndexKind.LABELS[IndexKind.LAZY])
        ct_total = row.get(IndexKind.LABELS[IndexKind.CT])
        if lazy_total and ct_total:
            row["gap (lazy/CT)"] = lazy_total / ct_total
        result.add(**row)
    result.notes.append(
        "the paper's Figure 11: the lazy-R-tree/CT-R-tree gap widens with N "
        "(denser MBRs split more; qs-regions never split)"
    )
    return result


def main(scale: str = "small") -> None:
    print(run(scale))


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "small")
