"""Figure 13 (Appendix A): total I/O vs update/query ratio under *changed*
traffic patterns.

Protocol (Appendix A.4): build the CT-R-tree from movement recorded in the
original city plan, then "generate a set of movement records based on a new
city plan, with five buildings removed and five buildings created.  Since an
object now cannot enter the regions where buildings are destroyed, but they
can enter buildings which originally do not exist, some qs-regions are no
longer valid, while new qs-regions are created."

Two configurations replay the post-change updates:

* **Changed Behavior / Unchanged qs-regions** -- adaptation disabled; the
  stale skeleton must absorb the new traffic in its overflow buffers;
* **Changed Behavior / New qs-regions** -- Appendix A's online qs-region
  detection enabled (list -> alpha-R-tree conversion, leaf promotion,
  region retirement).

Paper shape: "over a large range of update/query ratios, the CT-R-tree
performs consistently better after the qs-region detection algorithm is
applied".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.citysim import City, CitySimulator, Trace
from repro.core.builder import CTRTreeBuilder
from repro.core.params import CTParams
from repro.experiments.harness import ExperimentResult, ratio_controls
from repro.experiments.scales import Scale, get_scale
from repro.storage.pager import Pager
from repro.workload import QueryWorkload, SimulationDriver, UpdateStream

DEFAULT_RATIOS = (1.0, 10.0, 100.0, 1000.0)
#: Post-change ticks: a multiple of N_update so Appendix A's T_buf_time
#: (300 s = 15 report intervals) can elapse while patterns shift.
POST_CHANGE_FACTOR = 6


def adaptation_params() -> CTParams:
    """Table-1 thresholds with the Appendix-A knobs the paper leaves
    unvalued, scaled to laptop populations: a single-page list buffer
    converts to an alpha-R-tree (``t_list=1``; the paper's implied 80-object
    bar corresponds to 0.08% of its 100K population, far above what a
    5-building change produces at a few thousand objects).  Retirement stays
    conservative (``t_remove=0.5`` removals/s): removal rate flags churning
    transit regions, and an aggressive threshold retires *healthy* regions,
    which then oscillate through retire/promote cycles."""
    return CTParams(t_list=1, t_remove=0.5)


@dataclass
class ChangedWorkload:
    """History in the original city; online updates from the changed city."""

    scale: Scale
    city_before: City
    city_after: City
    history_trace: Trace
    online_trace: Trace


_CACHE: Dict[Tuple[str, int], ChangedWorkload] = {}


def build_changed_workload(scale: str = "small", seed: int = 0) -> ChangedWorkload:
    key = (scale, seed)
    if key in _CACHE:
        return _CACHE[key]
    preset = get_scale(scale)
    city_before = City.generate(seed=seed, n_buildings=preset.n_buildings)
    simulator = CitySimulator(
        city_before,
        preset.simulation_params(),
        seed=seed + 1,
        report_interval=preset.report_interval,
    )
    history_trace = simulator.run(n_samples=preset.n_history)
    city_after = city_before.with_changes(remove=5, add=5, seed=seed + 2)
    simulator.continue_in(city_after)
    online_trace = simulator.run(
        n_samples=preset.n_updates * POST_CHANGE_FACTOR, warm_up=False
    )
    bundle = ChangedWorkload(
        scale=preset,
        city_before=city_before,
        city_after=city_after,
        history_trace=history_trace,
        online_trace=online_trace,
    )
    _CACHE[key] = bundle
    return bundle


def run_variant(
    bundle: ChangedWorkload,
    adaptive: bool,
    ratio: float,
    query_size_fraction: float = 0.001,
    query_seed: int = 99,
):
    """One CT-R-tree (adaptive or not) through the post-change stream."""
    pager = Pager()
    stream = UpdateStream(bundle.online_trace, 0)
    skip, query_rate = ratio_controls(bundle.scale, stream.duration, ratio)
    stream = UpdateStream(bundle.online_trace, 0, skip=skip)

    # One index, built at the Table-1 baseline anticipation (ratio 100), is
    # evaluated under every mix -- the paper's protocol.
    builder = CTRTreeBuilder(
        adaptation_params(),
        query_rate=bundle.scale.base_update_rate / 100.0,
        adaptive=adaptive,
    )
    histories = bundle.history_trace.histories(bundle.scale.n_history)
    current = bundle.history_trace.current_positions(bundle.scale.n_history)
    tree, _report = builder.build(pager, bundle.city_before.bounds, histories)

    driver = SimulationDriver(tree, pager, "ct-adaptive" if adaptive else "ct-static")
    driver.load(current)
    t_start, t_end = stream.time_span()
    queries = QueryWorkload(
        bundle.city_before.bounds, query_rate, query_size_fraction, seed=query_seed
    ).between(t_start, t_end)
    result = driver.run(stream, queries)
    return result, tree


def run(
    scale: str = "small",
    seed: int = 0,
    ratios: Sequence[float] = DEFAULT_RATIOS,
) -> ExperimentResult:
    bundle = build_changed_workload(scale, seed)
    result = ExperimentResult(
        title=f"Figure 13: changed traffic patterns (scale={scale})",
        columns=[
            "ratio",
            "unchanged qs-regions",
            "new qs-regions",
            "improvement",
            "promotions",
            "retirements",
        ],
    )
    for ratio in ratios:
        static_res, _static_tree = run_variant(bundle, adaptive=False, ratio=ratio)
        adaptive_res, adaptive_tree = run_variant(bundle, adaptive=True, ratio=ratio)
        result.add(
            **{
                "ratio": ratio,
                "unchanged qs-regions": static_res.total_ios,
                "new qs-regions": adaptive_res.total_ios,
                "improvement": static_res.total_ios / max(adaptive_res.total_ios, 1),
                "promotions": adaptive_tree.adaptation.promotions,
                "retirements": adaptive_tree.adaptation.retirements,
            }
        )
    result.notes.append(
        'paper: "the CT-R-tree performs consistently better after the '
        'qs-region detection algorithm is applied"'
    )
    return result


def main(scale: str = "small") -> None:
    print(run(scale))


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "small")
