"""Experiment modules: one per table/figure of the paper's evaluation.

Every module exposes ``run(scale=..., seed=...) -> ExperimentResult`` and a
``main()`` that prints the paper-style table, runnable as
``python -m repro.experiments.figure8`` etc.  The ``scale`` presets
(:mod:`repro.experiments.scales`) select laptop-sized populations; the code
path is identical at every scale, including the paper's own parameters
(``scale="paper"``).

| Paper item   | Module                          |
|--------------|---------------------------------|
| Table 1      | :mod:`repro.experiments.table1` |
| Figure 8     | :mod:`repro.experiments.figure8`  (total I/O vs update/query ratio) |
| Figure 9     | :mod:`repro.experiments.figure9`  (query I/O ratio vs query size)   |
| Figure 10    | :mod:`repro.experiments.figure10` (total I/O vs query size)         |
| Figure 11    | :mod:`repro.experiments.figure11` (scalability in object count)     |
| Figure 12    | :mod:`repro.experiments.figure12` (parameter sensitivity)           |
| Figure 13    | :mod:`repro.experiments.figure13` (changing traffic patterns)       |
| (extensions) | :mod:`repro.experiments.ablations`                                  |
"""

from repro.experiments.scales import SCALES, Scale
from repro.experiments.harness import (
    ExperimentResult,
    WorkloadBundle,
    build_workload,
    run_index_on,
)

__all__ = [
    "SCALES",
    "Scale",
    "ExperimentResult",
    "WorkloadBundle",
    "build_workload",
    "run_index_on",
]
