"""Scale presets for the experiments.

The paper runs 100K-1M objects on a disk-backed testbed; this reproduction
defaults to laptop-sized populations.  Everything that shapes the figures --
the 20-second report interval, the history/online split, the city
composition -- is preserved; only the population (and hence the absolute I/O
counts) shrinks.  ``scale="paper"`` keeps the original Table-1 values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import SimulationParams


@dataclass(frozen=True)
class Scale:
    """One experiment size preset."""

    name: str
    n_objects: int
    n_history: int
    n_updates: int
    #: Seconds between one object's reports (paper baseline: 20 s).
    report_interval: float = 20.0
    n_buildings: int = 71
    n_warmup_max: int = 60
    #: Target number of queries for rate-balancing sweeps.
    query_pool: int = 200

    def simulation_params(self) -> SimulationParams:
        return SimulationParams(
            n_objects=self.n_objects,
            update_rate=self.n_objects / self.report_interval,
            n_history=self.n_history,
            n_updates=self.n_updates,
            n_warmup_max=self.n_warmup_max,
        )

    @property
    def base_update_rate(self) -> float:
        """Aggregate location updates per second at full sampling."""
        return self.n_objects / self.report_interval


SCALES = {
    # CI-sized: every figure in seconds.  The history length stays at the
    # paper's 110 samples even here -- qs-region mining needs full dwell
    # cycles, so shortening the history (unlike the population) changes the
    # algorithm's behaviour, not just the constants.
    "smoke": Scale("smoke", n_objects=300, n_history=110, n_updates=10, query_pool=60),
    # Default for the module CLIs: minutes, clear figure shapes.
    "small": Scale("small", n_objects=2000, n_history=110, n_updates=20),
    # Denser population: the CT-R-tree's advantage is fully visible.
    "medium": Scale("medium", n_objects=5000, n_history=110, n_updates=20),
    # The paper's own Table-1 values (hours; provided for completeness).
    "paper": Scale(
        "paper", n_objects=100_000, n_history=110, n_updates=20, n_warmup_max=2000
    ),
}


def get_scale(scale: str) -> Scale:
    try:
        return SCALES[scale]
    except KeyError:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(SCALES)}") from None
