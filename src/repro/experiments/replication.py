"""Multi-seed replication: run an experiment across seeds, report spread.

The paper reports single runs; for a reproduction it is worth knowing how
much of each figure is signal.  :func:`replicate` re-runs any experiment
function (``seed -> ExperimentResult``) over several seeds and aggregates
every numeric column per row into mean / std / min / max.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.experiments.harness import ExperimentResult


@dataclass
class Aggregate:
    """Summary statistics of one metric across replicated runs."""

    values: List[float]

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / self.n if self.n else 0.0

    @property
    def std(self) -> float:
        """Sample standard deviation (0 for fewer than two runs)."""
        if self.n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((v - mu) ** 2 for v in self.values) / (self.n - 1))

    @property
    def minimum(self) -> float:
        return min(self.values) if self.values else 0.0

    @property
    def maximum(self) -> float:
        return max(self.values) if self.values else 0.0

    @property
    def relative_spread(self) -> float:
        """(max - min) / mean: a quick stability score for flatness claims."""
        mu = self.mean
        return (self.maximum - self.minimum) / mu if mu else 0.0

    def __str__(self) -> str:
        return f"{self.mean:,.0f} ± {self.std:,.0f}"


def replicate(
    run: Callable[[int], ExperimentResult],
    seeds: Sequence[int],
    key_column: str,
) -> "ReplicatedResult":
    """Run ``run(seed)`` for every seed and align rows by ``key_column``.

    Every result must produce the same keys (same sweep points); numeric
    columns are aggregated, non-numeric ones taken from the first run.
    """
    if not seeds:
        raise ValueError("at least one seed is required")
    results = [run(seed) for seed in seeds]
    first = results[0]
    keys = [row[key_column] for row in first.rows]
    for result in results[1:]:
        if [row[key_column] for row in result.rows] != keys:
            raise ValueError("replicated runs produced different sweep points")

    aggregated: Dict[object, Dict[str, Aggregate]] = {}
    for key in keys:
        aggregated[key] = {}
    for column in first.columns:
        if column == key_column:
            continue
        for i, key in enumerate(keys):
            samples = []
            for result in results:
                value = result.rows[i].get(column)
                if isinstance(value, (int, float)):
                    samples.append(float(value))
            if samples:
                aggregated[key][column] = Aggregate(samples)
    return ReplicatedResult(
        title=f"{first.title} [n={len(seeds)} seeds]",
        key_column=key_column,
        keys=keys,
        columns=[c for c in first.columns if c != key_column],
        aggregates=aggregated,
    )


@dataclass
class ReplicatedResult:
    """Aligned multi-seed aggregates, renderable like an ExperimentResult."""

    title: str
    key_column: str
    keys: List[object]
    columns: List[str]
    aggregates: Dict[object, Dict[str, Aggregate]]

    def get(self, key: object, column: str) -> Aggregate:
        return self.aggregates[key][column]

    def to_table(self) -> str:
        header = [self.key_column] + [
            c for c in self.columns if any(c in self.aggregates[k] for k in self.keys)
        ]
        rows = []
        for key in self.keys:
            row = [str(key)]
            for column in header[1:]:
                aggregate = self.aggregates[key].get(column)
                row.append(str(aggregate) if aggregate else "")
            rows.append(row)
        widths = [
            max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
            for i in range(len(header))
        ]
        lines = [self.title, "=" * len(self.title)]
        lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("-+-".join("-" * w for w in widths))
        for row in rows:
            lines.append(" | ".join(v.rjust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_table()
