"""Figure 12: CT-R-tree sensitivity to its Phase-1 thresholds.

The paper plots update/query/overall I/O while sweeping ``T_rate``
(Figure 12(a)) and ``T_time`` (Figure 12(b)), noting that ``T_dist`` and
``T_area`` "showed trends very similar" -- we sweep all four.  Expected
shape: "flat curves ... over a wide range of values.  This indicates that
the CT-R-tree is not sensitive to these parameters", with one caveat: a
``T_area`` that is too small starves the index of qs-regions and degrades
performance (objects land in overflow pages).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Sequence

from repro.core.params import CTParams
from repro.experiments.harness import (
    ExperimentResult,
    build_workload,
    ratio_controls,
    run_index_on,
)
from repro.workload.driver import IndexKind

#: Sweeps: each parameter varied geometrically around its Table-1 default.
DEFAULT_SWEEPS: Dict[str, Sequence[float]] = {
    "t_rate": (0.25, 0.5, 1.0, 2.0, 4.0),
    # T_time must stay below the population's typical dwell (the simulator's
    # mean is 900 s); a threshold above it mines no regions at all, which is
    # a different regime than the sensitivity the paper studies.
    "t_time": (75.0, 150.0, 300.0, 450.0, 600.0),
    "t_dist": (7.5, 15.0, 30.0, 60.0, 120.0),
    "t_area": (1406.25, 5625.0, 22500.0, 90000.0, 360000.0),
}


def run_parameter(
    param: str,
    scale: str = "small",
    seed: int = 0,
    values: Sequence[float] = (),
    ratio: float = 100.0,
) -> ExperimentResult:
    if param not in DEFAULT_SWEEPS:
        raise ValueError(f"unknown parameter {param!r}; choose from {sorted(DEFAULT_SWEEPS)}")
    if not values:
        values = DEFAULT_SWEEPS[param]
    bundle = build_workload(scale, seed)
    duration = bundle.update_stream().duration
    skip, query_rate = ratio_controls(bundle.scale, duration, ratio)
    result = ExperimentResult(
        title=f"Figure 12: CT-R-tree sensitivity to {param} (scale={scale})",
        columns=[param, "update I/O", "query I/O", "total I/O", "qs-regions"],
    )
    for value in values:
        params = replace(CTParams(), **{param: value})
        run_ = run_index_on(
            IndexKind.CT,
            bundle,
            skip=skip,
            query_rate=query_rate,
            ct_params=params,
        )
        result.add(
            **{
                param: value,
                "update I/O": run_.result.update_ios,
                "query I/O": run_.result.query_ios,
                "total I/O": run_.result.total_ios,
                "qs-regions": run_.index.region_count,  # type: ignore[attr-defined]
            }
        )
    result.notes.append(
        "paper's Figure 12: flat curves over a wide range; "
        "only an overly small t_area hurts (too few/too small qs-regions)"
    )
    return result


def run(scale: str = "small", seed: int = 0) -> Dict[str, ExperimentResult]:
    return {
        param: run_parameter(param, scale=scale, seed=seed)
        for param in DEFAULT_SWEEPS
    }


def main(scale: str = "small") -> None:
    for param, result in run(scale).items():
        print(result)
        print()


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "small")
