"""One-shot report: run every experiment at a scale, render one document.

``python -m repro report --scale smoke -o report.md`` produces a single
markdown file with Table 1, Figures 8-13, and the ablations -- the quickest
way to regenerate the complete evaluation on a new machine and compare it
against EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import List, Optional, Sequence, Union

ALL_SECTIONS = (
    "table1",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "ablations",
)


def _as_code_block(text: str) -> str:
    return f"```\n{text}\n```"


def generate_report(
    scale: str = "smoke",
    seed: int = 0,
    sections: Sequence[str] = ALL_SECTIONS,
) -> str:
    """Run the selected experiments and return the markdown report."""
    unknown = set(sections) - set(ALL_SECTIONS)
    if unknown:
        raise ValueError(f"unknown sections: {sorted(unknown)}")

    parts: List[str] = [
        "# CT-R-tree reproduction report",
        "",
        f"Scale: `{scale}`, seed: {seed}. Shapes to compare against the paper",
        "are documented per figure in EXPERIMENTS.md.",
        "",
    ]
    started = time.time()

    if "table1" in sections:
        from repro.experiments import table1

        parts += ["## Table 1", "", _as_code_block(table1.run("paper")), ""]

    simple = {
        "figure8": "Figure 8 - total I/O vs update/query ratio",
        "figure9": "Figure 9 - query-I/O ratio vs query size",
        "figure10": "Figure 10 - total I/O vs query size",
        "figure11": "Figure 11 - scalability in object count",
        "figure13": "Figure 13 - changing traffic patterns",
    }
    for name, heading in simple.items():
        if name not in sections:
            continue
        import importlib

        module = importlib.import_module(f"repro.experiments.{name}")
        result = module.run(scale, seed)
        parts += [f"## {heading}", "", _as_code_block(result.to_table()), ""]

    if "figure12" in sections:
        from repro.experiments import figure12

        parts += ["## Figure 12 - parameter sensitivity", ""]
        for _param, result in figure12.run(scale, seed).items():
            parts += [_as_code_block(result.to_table()), ""]

    if "ablations" in sections:
        from repro.experiments import ablations

        parts += ["## Ablations", ""]
        for _name, result in ablations.run(scale, seed).items():
            parts += [_as_code_block(result.to_table()), ""]

    elapsed = time.time() - started
    parts += [f"_Generated in {elapsed:.0f} s._", ""]
    return "\n".join(parts)


def write_report(
    path: Union[str, Path],
    scale: str = "smoke",
    seed: int = 0,
    sections: Sequence[str] = ALL_SECTIONS,
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(generate_report(scale, seed, sections), encoding="utf-8")
    return path


def main(argv: Optional[List[str]] = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output", default="report.md")
    parser.add_argument("--scale", default="smoke")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--sections", nargs="*", default=list(ALL_SECTIONS))
    args = parser.parse_args(argv)
    path = write_report(args.output, args.scale, args.seed, args.sections)
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
