"""The online update stream replayed against the indexes.

"Once the CT-R-tree is built, the remaining N_update samples are modeled as
dynamic updates to the CT-R-tree, as well as other R-tree variants"
(Section 4.1).  :class:`UpdateStream` wraps a trace's online portion and
exposes the knobs the experiments turn: sample skipping to lower the update
rate (Figure 8) and object restriction for scalability sweeps (Figure 11).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.citysim.trace import Trace, TraceRecord


class UpdateStream:
    """Time-ordered location updates derived from a trace.

    Args:
        trace: the recorded simulation.
        n_history: samples reserved for history + initial load; the stream
            starts at sample ``n_history + 1`` of each object.
        skip: keep every ``skip``-th online sample ("to generate a slower
            update rate, some location samples are skipped").
        object_ids: restrict to a subset of objects.
    """

    def __init__(
        self,
        trace: Trace,
        n_history: int,
        skip: int = 1,
        object_ids: Optional[Sequence[int]] = None,
    ) -> None:
        if skip < 1:
            raise ValueError("skip must be at least 1")
        self.trace = trace if object_ids is None else trace.restricted_to(object_ids)
        self.n_history = n_history
        self.skip = skip
        self._records: Optional[List[TraceRecord]] = None

    @property
    def records(self) -> List[TraceRecord]:
        if self._records is None:
            merged = list(self.trace.online_updates(self.n_history))
            self._records = merged[:: self.skip] if self.skip > 1 else merged
        return self._records

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def duration(self) -> float:
        records = self.records
        if len(records) < 2:
            return 0.0
        return records[-1].t - records[0].t

    @property
    def rate(self) -> float:
        """Aggregate updates per second over the stream's span."""
        duration = self.duration
        return len(self.records) / duration if duration > 0 else 0.0

    def time_span(self) -> tuple:
        records = self.records
        if not records:
            return (0.0, 0.0)
        return (records[0].t, records[-1].t)
