"""The simulation driver: replay updates and queries against an index.

The driver merges the online update stream with a Poisson query stream in
timestamp order and executes both against an index, attributing page I/O to
``IOCategory.UPDATE`` / ``IOCategory.QUERY`` -- the two quantities every
figure in the paper plots.

All four evaluated structures expose the same surface (``insert``,
``update``, ``delete``, ``range_search``), so one driver serves the
traditional R-tree, the lazy-R-tree, the alpha-tree, and the CT-R-tree.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterable, Mapping, Optional, Sequence, Union

from repro.core.builder import CTRTreeBuilder
from repro.core.ctrtree import CTRTree
from repro.core.geometry import Point, Rect
from repro.core.params import CTParams
from repro.citysim.trace import TraceRecord
from repro.rtree.alpha import AlphaTree
from repro.rtree.lazy import LazyRTree
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.rtree.rtree import RTree
from repro.storage.iostats import IOCategory, IOCounter
from repro.storage.pager import Pager
from repro.workload.queries import RangeQuery

AnyIndex = Union[RTree, LazyRTree, AlphaTree, CTRTree]


class IndexKind:
    """The four structures of the paper's evaluation (Section 4.2)."""

    RTREE = "rtree"
    LAZY = "lazy"
    ALPHA = "alpha"
    CT = "ct"

    ALL = (RTREE, LAZY, ALPHA, CT)

    LABELS = {
        RTREE: "R-tree",
        LAZY: "lazy-R-tree",
        ALPHA: "alpha-tree",
        CT: "CT-R-tree",
    }


def make_index(
    kind: str,
    pager: Pager,
    domain: Rect,
    *,
    max_entries: int = 20,
    ct_params: Optional[CTParams] = None,
    histories: Optional[Mapping[int, Sequence]] = None,
    query_rate: float = 50.0,
    adaptive: bool = True,
    split: str = "quadratic",
) -> AnyIndex:
    """Construct one of the four evaluated indexes on ``pager``.

    The CT-R-tree additionally needs the history profile (``histories``) to
    mine its qs-regions; the baselines ignore it.
    """
    params = ct_params if ct_params is not None else CTParams()
    if kind == IndexKind.RTREE:
        return RTree(pager, max_entries=max_entries, split=split)
    if kind == IndexKind.LAZY:
        return LazyRTree(pager, max_entries=max_entries, split=split)
    if kind == IndexKind.ALPHA:
        return AlphaTree(
            pager, max_entries=max_entries, split=split, alpha=params.alpha
        )
    if kind == IndexKind.CT:
        if histories is None:
            raise ValueError("the CT-R-tree needs a history profile to build from")
        builder = CTRTreeBuilder(
            params,
            query_rate=query_rate,
            max_entries=max_entries,
            split=split,
            adaptive=adaptive,
        )
        tree, _ = builder.build(pager, domain, histories)
        return tree
    raise ValueError(f"unknown index kind {kind!r}; choose from {IndexKind.ALL}")


@dataclass
class RunResult:
    """I/O accounting for one driver run."""

    kind: str
    n_updates: int = 0
    n_queries: int = 0
    result_count: int = 0
    update_io: IOCounter = field(default_factory=IOCounter)
    query_io: IOCounter = field(default_factory=IOCounter)
    wall_clock_s: float = 0.0

    @property
    def update_ios(self) -> int:
        return self.update_io.total

    @property
    def query_ios(self) -> int:
        return self.query_io.total

    @property
    def total_ios(self) -> int:
        return self.update_ios + self.query_ios

    @property
    def ios_per_update(self) -> float:
        return self.update_ios / self.n_updates if self.n_updates else 0.0

    @property
    def ios_per_query(self) -> float:
        return self.query_ios / self.n_queries if self.n_queries else 0.0

    def to_dict(self) -> Dict[str, object]:
        """The run ledger as JSON-ready plain data (bench/metrics schema)."""
        return {
            "kind": self.kind,
            "n_updates": self.n_updates,
            "n_queries": self.n_queries,
            "result_count": self.result_count,
            "update_io": self.update_io.to_dict(),
            "query_io": self.query_io.to_dict(),
            "ios_per_update": self.ios_per_update,
            "ios_per_query": self.ios_per_query,
            "total_ios": self.total_ios,
            "wall_clock_s": self.wall_clock_s,
        }

    def __repr__(self) -> str:
        return (
            f"RunResult({self.kind}: {self.n_updates}u/{self.n_queries}q, "
            f"update={self.update_ios} query={self.query_ios} "
            f"total={self.total_ios} I/Os)"
        )


class SimulationDriver:
    """Replays a merged update/query timeline against one index."""

    def __init__(
        self,
        index: AnyIndex,
        pager: Pager,
        kind: str = "index",
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.index = index
        self.pager = pager
        self.kind = kind
        #: Observability sink; defaults to the process-global registry,
        #: which is disabled unless an entry point opted in.
        self.metrics = metrics if metrics is not None else get_registry()
        #: Last known position per object (the baselines' update() needs the
        #: old point; the driver is the "server" that knows it).
        self.positions: Dict[int, Point] = {}

    def load(
        self, positions: Mapping[int, Point], now: Optional[float] = None
    ) -> None:
        """Initial bulk of current positions, charged as BUILD I/O.

        ``now`` is the timestamp of the position snapshot (e.g.
        ``Trace.load_time``).  Passing it matters for the CT-R-tree: its
        internal clock ticks by one per ``now``-less operation, so a large
        untimed load would fast-forward the adaptation clock past the first
        online updates.
        """
        with self.pager.stats.category(IOCategory.BUILD):
            for oid, point in positions.items():
                self.index.insert(oid, point, now=now)
                self.positions[oid] = tuple(point)

    def adopt(self, positions: Mapping[int, Point]) -> None:
        """Register positions already loaded (e.g. by the CT builder)."""
        self.positions.update({oid: tuple(p) for oid, p in positions.items()})

    def run(
        self,
        updates: Iterable[TraceRecord],
        queries: Sequence[RangeQuery] = (),
    ) -> RunResult:
        """Execute both streams in timestamp order; returns the I/O ledger.

        On equal timestamps the update is applied before the query runs (the
        tag slot below breaks the tie), so a query always observes the state
        as of its own instant.
        """
        stats = self.pager.stats
        metrics = self.metrics
        obs_on = metrics.enabled
        # Live (mutable) counters: per-event deltas without per-event copies.
        update_live = stats.live(IOCategory.UPDATE)
        query_live = stats.live(IOCategory.QUERY)
        update_before = update_live.copy()
        query_before = query_live.copy()
        result = RunResult(kind=self.kind)
        run_t0 = perf_counter()

        # The tag slot orders updates before queries on equal timestamps; the
        # third slot is a tiebreaker so heapq.merge never compares the
        # (unorderable) event payloads.
        update_events = ((r.t, 0, i, r) for i, r in enumerate(updates))
        query_events = ((q.t, 1, i, q) for i, q in enumerate(queries))
        for t, tag, _seq, event in heapq.merge(update_events, query_events):
            if tag == 0:
                record: TraceRecord = event
                if obs_on:
                    event_t0 = perf_counter()
                    io_before = update_live.total
                with stats.category(IOCategory.UPDATE):
                    old = self.positions.get(record.oid)
                    if old is None:
                        self.index.insert(record.oid, record.point, now=t)
                    else:
                        self.index.update(record.oid, old, record.point, now=t)
                # Normalize exactly like load(): positions must compare equal
                # across both ingestion paths (a list-vs-tuple mismatch would
                # make the baselines' delete-by-old-point miss).
                self.positions[record.oid] = tuple(record.point)
                result.n_updates += 1
                if obs_on:
                    metrics.observe(
                        "driver.update.latency_s", perf_counter() - event_t0
                    )
                    metrics.observe(
                        "driver.update.ios", update_live.total - io_before
                    )
            else:
                query: RangeQuery = event
                if obs_on:
                    event_t0 = perf_counter()
                    io_before = query_live.total
                with stats.category(IOCategory.QUERY):
                    matches = self.index.range_search(query.rect)
                result.result_count += len(matches)
                result.n_queries += 1
                if obs_on:
                    metrics.observe(
                        "driver.query.latency_s", perf_counter() - event_t0
                    )
                    metrics.observe(
                        "driver.query.ios", query_live.total - io_before
                    )

        result.wall_clock_s = perf_counter() - run_t0
        result.update_io = update_live.copy() - update_before
        result.query_io = query_live.copy() - query_before
        if obs_on:
            metrics.inc(f"driver.{self.kind}.updates", result.n_updates)
            metrics.inc(f"driver.{self.kind}.queries", result.n_queries)
            metrics.record_duration(
                f"driver.{self.kind}.run_s", result.wall_clock_s
            )
        return result
