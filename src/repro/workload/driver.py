"""The simulation driver: replay updates and queries against an index.

The driver merges the online update stream with a Poisson query stream in
timestamp order and executes both against an index, attributing page I/O to
``IOCategory.UPDATE`` / ``IOCategory.QUERY`` -- the two quantities every
figure in the paper plots.

Every structure conforming to the :class:`~repro.engine.protocol.SpatialIndex`
protocol can be driven -- the four evaluated trees, and the engine's sharded
router over any of them.  Passing an :class:`~repro.engine.UpdateBuffer`
switches the driver to batched execution: updates are coalesced in memory
and group-applied per flush, with a mandatory flush before every query so
query results are identical to an unbatched run.

Passing a :class:`~repro.durability.DurabilityManager` makes the replay
crash-safe: every update is written to the manager's WAL *before* it is
applied (or buffered), a baseline checkpoint is taken after :meth:`load`,
and further checkpoints fire automatically at the manager's
``checkpoint_every`` cadence -- always at quiescent points (no
buffered-but-unapplied records), so a checkpoint's covered WAL position is
truthful.

``IndexKind``, ``make_index`` and ``RunResult`` moved to :mod:`repro.engine`
(the registry owns construction now); they are re-exported here unchanged
for backward compatibility.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Dict, Iterable, Mapping, Optional, Sequence, Union

# Back-compat re-exports: these lived here before the engine layer existed.
from repro.engine.registry import IndexKind, make_index  # noqa: F401
from repro.engine.results import RunResult  # noqa: F401
from repro.engine.buffer import UpdateBuffer
from repro.engine.protocol import PageStore, SpatialIndex
from repro.core.ctrtree import CTRTree
from repro.core.geometry import Point
from repro.citysim.trace import TraceRecord
from repro.rtree.alpha import AlphaTree
from repro.rtree.lazy import LazyRTree
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.rtree.rtree import RTree
from repro.storage.iostats import IOCategory
from repro.workload.queries import RangeQuery

#: Historical alias; the engine protocol supersedes it (kept for callers
#: that annotated against the old union).
AnyIndex = Union[RTree, LazyRTree, AlphaTree, CTRTree]


class SimulationDriver:
    """Replays a merged update/query timeline against one index."""

    def __init__(
        self,
        index: SpatialIndex,
        pager: PageStore,
        kind: str = "index",
        metrics: Optional[MetricsRegistry] = None,
        update_buffer: Optional[UpdateBuffer] = None,
        durability=None,
    ) -> None:
        self.index = index
        self.pager = pager
        self.kind = kind
        #: Observability sink; defaults to the process-global registry,
        #: which is disabled unless an entry point opted in.
        self.metrics = metrics if metrics is not None else get_registry()
        #: Batched execution: when set, updates buffer + coalesce here and
        #: group-apply on flush (size/time policy, and always before a query).
        self.update_buffer = update_buffer
        #: Durability: a :class:`~repro.durability.DurabilityManager`; the
        #: driver attaches it to the index (per-shard WALs for a sharded
        #: engine) and hands it to the buffer so logging precedes
        #: acknowledgement on both execution paths.
        self.durability = durability
        if durability is not None:
            if not durability.attached:
                # The snapshot layer derives the kind tag from the instance
                # (index_kind_of), so no kind needs to be plumbed here.
                durability.attach(index)
            if update_buffer is not None and update_buffer.wal is None:
                update_buffer.wal = durability
        #: Self-healing wrapper hooks (duck-typed so the driver never
        #: imports the health layer): a wrapped index exposes its monitor's
        #: CRITICAL-transition flag (forced buffer flush) and the
        #: post-cutover checkpoint request (taken at quiescent points).
        self._healing = (
            index
            if hasattr(index, "checkpoint_if_due")
            and hasattr(index, "health_state")
            else None
        )
        #: Last known position per object (the baselines' update() needs the
        #: old point; the driver is the "server" that knows it).
        self.positions: Dict[int, Point] = {}

    def load(
        self, positions: Mapping[int, Point], now: Optional[float] = None
    ) -> None:
        """Initial bulk of current positions, charged as BUILD I/O.

        ``now`` is the timestamp of the position snapshot (e.g.
        ``Trace.load_time``).  Passing it matters for the CT-R-tree: its
        internal clock ticks by one per ``now``-less operation, so a large
        untimed load would fast-forward the adaptation clock past the first
        online updates.
        """
        with self.pager.stats.category(IOCategory.BUILD):
            for oid, point in positions.items():
                self.index.insert(oid, point, now=now)
                self.positions[oid] = tuple(point)
        # The bulk is not logged record-by-record; a baseline checkpoint
        # makes it durable wholesale, so recovery always has a floor state.
        if self.durability is not None:
            self.durability.checkpoint()

    def adopt(self, positions: Mapping[int, Point]) -> None:
        """Register positions already loaded (e.g. by the CT builder)."""
        self.positions.update({oid: tuple(p) for oid, p in positions.items()})

    def run(
        self,
        updates: Iterable[TraceRecord],
        queries: Sequence[RangeQuery] = (),
    ) -> RunResult:
        """Execute both streams in timestamp order; returns the I/O ledger.

        On equal timestamps the update is applied before the query runs (the
        tag slot below breaks the tie), so a query always observes the state
        as of its own instant.  With an update buffer, "applied" means
        "buffered": the pending batch is flushed before the query executes,
        so the observed state is identical either way.
        """
        stats = self.pager.stats
        metrics = self.metrics
        obs_on = metrics.enabled
        buffer = self.update_buffer
        durability = self.durability
        healing = self._healing
        buffer_stats_before = buffer.stats.copy() if buffer is not None else None
        # Live (mutable) counters: per-event deltas without per-event copies.
        update_live = stats.live(IOCategory.UPDATE)
        query_live = stats.live(IOCategory.QUERY)
        update_before = update_live.copy()
        query_before = query_live.copy()
        result = RunResult(kind=self.kind)
        run_t0 = perf_counter()

        # The tag slot orders updates before queries on equal timestamps; the
        # third slot is a tiebreaker so heapq.merge never compares the
        # (unorderable) event payloads.
        update_events = ((r.t, 0, i, r) for i, r in enumerate(updates))
        query_events = ((q.t, 1, i, q) for i, q in enumerate(queries))
        for t, tag, _seq, event in heapq.merge(update_events, query_events):
            if tag == 0:
                record: TraceRecord = event
                if obs_on:
                    event_t0 = perf_counter()
                    io_before = update_live.total
                with stats.category(IOCategory.UPDATE):
                    old = self.positions.get(record.oid)
                    if buffer is not None:
                        # put() writes the WAL record itself (before it
                        # acknowledges) when the buffer carries a log.
                        buffer.put(record.oid, old, record.point, t)
                        reason = buffer.policy.flush_reason(
                            len(buffer), buffer.oldest_t, t
                        )
                        if reason is not None:
                            applied = buffer.flush(self.index, reason)
                            if durability is not None:
                                durability.note_applied(applied)
                    else:
                        if durability is not None:
                            if old is None:
                                durability.log_insert(record.oid, record.point, t)
                            else:
                                durability.log_update(
                                    record.oid, old, record.point, t
                                )
                        if old is None:
                            self.index.insert(record.oid, record.point, now=t)
                        else:
                            self.index.update(record.oid, old, record.point, now=t)
                        if durability is not None:
                            durability.note_applied(1)
                # A transition into CRITICAL force-drains pending updates:
                # the flag stays pending until there is actually something
                # to drain (transitions surface at flush boundaries, when
                # the buffer has just emptied), so the *next* buffered
                # update is applied immediately instead of waiting out a
                # full batch on a critically degraded index.
                if (
                    healing is not None
                    and buffer is not None
                    and len(buffer)
                    and healing.monitor.consume_critical_transition()
                ):
                    with stats.category(IOCategory.UPDATE):
                        applied = buffer.flush(self.index, "critical")
                    if durability is not None:
                        durability.note_applied(applied)
                # Checkpoints fire only at quiescent points: nothing is
                # pending here unless the buffer chose not to flush yet.
                if durability is not None and (buffer is None or not len(buffer)):
                    durability.maybe_checkpoint()
                if healing is not None and (buffer is None or not len(buffer)):
                    healing.checkpoint_if_due(durability)
                # Normalize exactly like load(): positions must compare equal
                # across both ingestion paths (a list-vs-tuple mismatch would
                # make the baselines' delete-by-old-point miss).
                self.positions[record.oid] = tuple(record.point)
                result.n_updates += 1
                if obs_on:
                    metrics.observe(
                        "driver.update.latency_s", perf_counter() - event_t0
                    )
                    metrics.observe(
                        "driver.update.ios", update_live.total - io_before
                    )
            else:
                query: RangeQuery = event
                if obs_on:
                    event_t0 = perf_counter()
                # Read-your-writes: drain the pending batch (charged as
                # update I/O -- it is deferred update work) before serving.
                if buffer is not None and len(buffer):
                    with stats.category(IOCategory.UPDATE):
                        applied = buffer.flush(self.index, "query")
                    if durability is not None:
                        durability.note_applied(applied)
                        durability.maybe_checkpoint()
                if healing is not None and (buffer is None or not len(buffer)):
                    healing.checkpoint_if_due(durability)
                if obs_on:
                    io_before = query_live.total
                with stats.category(IOCategory.QUERY):
                    matches = self.index.range_search(query.rect)
                result.result_count += len(matches)
                result.n_queries += 1
                if obs_on:
                    metrics.observe(
                        "driver.query.latency_s", perf_counter() - event_t0
                    )
                    metrics.observe(
                        "driver.query.ios", query_live.total - io_before
                    )

        # End of stream: apply whatever is still pending so the index (and
        # any snapshot taken of it) reflects every consumed update.
        if buffer is not None and len(buffer):
            with stats.category(IOCategory.UPDATE):
                applied = buffer.flush(self.index, "final")
            if durability is not None:
                durability.note_applied(applied)
                durability.maybe_checkpoint()
        if healing is not None:
            healing.checkpoint_if_due(durability)

        result.wall_clock_s = perf_counter() - run_t0
        result.update_io = update_live.copy() - update_before
        result.query_io = query_live.copy() - query_before
        if buffer is not None and buffer_stats_before is not None:
            result.n_flushes = buffer.stats.flushes - buffer_stats_before.flushes
            result.n_coalesced = (
                buffer.stats.coalesced - buffer_stats_before.coalesced
            )
            result.n_applied = buffer.stats.applied - buffer_stats_before.applied
        if obs_on:
            metrics.inc(f"driver.{self.kind}.updates", result.n_updates)
            metrics.inc(f"driver.{self.kind}.queries", result.n_queries)
            metrics.record_duration(
                f"driver.{self.kind}.run_s", result.wall_clock_s
            )
        return result
