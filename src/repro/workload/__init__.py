"""Workload generation and the update/query simulation driver."""

from repro.workload.queries import QueryWorkload, RangeQuery
from repro.workload.updates import UpdateStream
from repro.workload.driver import IndexKind, RunResult, SimulationDriver, make_index

__all__ = [
    "QueryWorkload",
    "RangeQuery",
    "UpdateStream",
    "IndexKind",
    "RunResult",
    "SimulationDriver",
    "make_index",
]
