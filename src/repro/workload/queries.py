"""Range-query generation.

Section 4.1: "range queries are generated at an average rate of lambda_q.
Each range query has the shape of a square, with central point chosen
randomly within the city area and size equal to a fraction f_q of the city
area."  Arrivals are Poisson (exponential gaps at rate ``lambda_q``).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, List

from repro.core.geometry import Rect, square_at


@dataclass(frozen=True)
class RangeQuery:
    """One square range query arriving at time ``t``."""

    rect: Rect
    t: float


class QueryWorkload:
    """Generates square range queries over a domain.

    Args:
        domain: the city bounds.
        rate: arrival rate ``lambda_q`` (queries per second).
        size_fraction: query area as a fraction of the domain area (``f_q``;
            the paper's 0.1% default is ``0.001``).
        seed: RNG seed; generation is deterministic given the seed.
    """

    def __init__(
        self,
        domain: Rect,
        rate: float,
        size_fraction: float,
        seed: int = 0,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if not 0 < size_fraction <= 1:
            raise ValueError("size_fraction must be in (0, 1]")
        self.domain = domain
        self.rate = rate
        self.size_fraction = size_fraction
        self.side = math.sqrt(domain.area * size_fraction)
        self._rng = random.Random(seed)

    def _one(self, t: float) -> RangeQuery:
        center = tuple(
            self._rng.uniform(lo, hi) for lo, hi in zip(self.domain.lo, self.domain.hi)
        )
        return RangeQuery(rect=square_at(center, self.side), t=t)

    def between(self, t_start: float, t_end: float) -> List[RangeQuery]:
        """All queries arriving in ``[t_start, t_end)`` (Poisson process)."""
        if t_end < t_start:
            raise ValueError("t_end must not precede t_start")
        queries: List[RangeQuery] = []
        t = t_start + self._rng.expovariate(self.rate)
        while t < t_end:
            queries.append(self._one(t))
            t += self._rng.expovariate(self.rate)
        return queries

    def take(self, count: int, t_start: float = 0.0) -> List[RangeQuery]:
        """Exactly ``count`` queries with Poisson gaps starting at ``t_start``."""
        queries: List[RangeQuery] = []
        t = t_start
        for _ in range(count):
            t += self._rng.expovariate(self.rate)
            queries.append(self._one(t))
        return queries

    def __iter__(self) -> Iterator[RangeQuery]:
        t = 0.0
        while True:
            t += self._rng.expovariate(self.rate)
            yield self._one(t)
