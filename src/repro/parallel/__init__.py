"""repro.parallel: worker-pool execution for the sharded engine and the
CT-R-tree construction pipeline.

Three coordinated pieces:

* :class:`~repro.parallel.sharded.ParallelShardedIndex` -- the sharded
  engine's worker-pool execution mode (process or thread workers, one per
  shard), with batched dispatch, concurrent query fan-out, sequenced
  cross-shard moves, and graceful inline fallback on worker failure;
* :mod:`~repro.parallel.build` -- bit-identical parallel CT-R-tree
  construction (Phases 1-2 chunked over a process pool);
* :mod:`~repro.parallel.workers` -- the shard-worker command protocol and
  the process/thread worker implementations.
"""

from repro.parallel.build import (
    chunked,
    parallel_object_graphs,
    parallel_qs_regions,
)
from repro.parallel.sharded import ParallelShardedIndex, ShardLedger
from repro.parallel.workers import (
    ProcessWorker,
    ShardServer,
    ThreadWorker,
    WorkerFailure,
)

__all__ = [
    "ParallelShardedIndex",
    "ShardLedger",
    "ProcessWorker",
    "ThreadWorker",
    "ShardServer",
    "WorkerFailure",
    "chunked",
    "parallel_qs_regions",
    "parallel_object_graphs",
]

PARALLEL_MODES = ("off", "thread", "process")
