"""Parallel CT-R-tree construction: Phases 1-2 across a process pool.

Phase 1 (qs-region mining, one trail at a time) and Phase 2a (per-object
chain graphs + density merging) are embarrassingly parallel per object.
This module chunks them across a :class:`~concurrent.futures.
ProcessPoolExecutor`; Phase 2b (graph union + global merge) and everything
downstream stay serial in the parent.

**Determinism contract**: chunks are contiguous slices of the iteration
order of ``histories.items()``, ``pool.map`` yields results in submission
order, and the chunks concatenate back into exactly the serial sequence.
Per-object work is pure (no shared state, no ordering dependence between
objects) and runs the very same functions the serial pipeline runs --
so the parallel build is **bit-identical** to the serial build, down to
the bytes of the snapshot document of the loaded tree.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List, Mapping, Optional, Sequence, TypeVar

from repro.core.params import CTParams
from repro.core.qsregion import QSRegion, TrailSample, identify_qs_regions
from repro.core.update_graph import UpdateGraph, per_object_graphs

T = TypeVar("T")


def chunked(items: List[T], n: int) -> List[List[T]]:
    """At most ``n`` contiguous, near-equal, order-preserving chunks."""
    n = max(1, min(n, len(items)))
    size, extra = divmod(len(items), n)
    out: List[List[T]] = []
    start = 0
    for i in range(n):
        end = start + size + (1 if i < extra else 0)
        out.append(items[start:end])
        start = end
    return out


def _mine_chunk(args) -> List[List[QSRegion]]:
    """Pool task: Phase 1 over one chunk of (oid, trail) pairs."""
    params, chunk = args
    return [
        identify_qs_regions(trail, params, object_id=oid)
        for oid, trail in chunk
    ]


def _graph_chunk(args) -> List[UpdateGraph]:
    """Pool task: Phase 2a over one chunk of per-object region lists.

    Delegates to the serial :func:`per_object_graphs` so the parallel and
    serial paths cannot drift apart.
    """
    t_area, chunk = args
    return per_object_graphs(chunk, t_area)


def build_pool(workers: int) -> ProcessPoolExecutor:
    """One executor shared across both parallel phases.

    Pool start-up (fork + first task hand-off) is the dominant fixed cost
    of the parallel build at small scales; paying it once instead of once
    per phase keeps the break-even point low.
    """
    return ProcessPoolExecutor(max_workers=workers)


def parallel_qs_regions(
    histories: Mapping[int, Sequence[TrailSample]],
    params: CTParams,
    workers: int,
    pool: Optional[ProcessPoolExecutor] = None,
) -> List[List[QSRegion]]:
    """Phase 1 across a process pool; output order == ``histories.items()``."""
    items = list(histories.items())
    if workers < 2 or len(items) < 2:
        return [
            identify_qs_regions(trail, params, object_id=oid)
            for oid, trail in items
        ]
    chunks = chunked(items, workers)
    tasks = [(params, chunk) for chunk in chunks]
    if pool is not None:
        results = list(pool.map(_mine_chunk, tasks))
    else:
        with ProcessPoolExecutor(max_workers=len(chunks)) as owned:
            results = list(owned.map(_mine_chunk, tasks))
    return [regions for chunk_result in results for regions in chunk_result]


def parallel_object_graphs(
    per_object_regions: Sequence[Sequence[QSRegion]],
    t_area: float,
    workers: int,
    pool: Optional[ProcessPoolExecutor] = None,
) -> List[UpdateGraph]:
    """Phase 2a across a process pool; output order == input order."""
    items = list(per_object_regions)
    if workers < 2 or len(items) < 2:
        return per_object_graphs(items, t_area)
    chunks = chunked(items, workers)
    tasks = [(t_area, chunk) for chunk in chunks]
    if pool is not None:
        results = list(pool.map(_graph_chunk, tasks))
    else:
        with ProcessPoolExecutor(max_workers=len(chunks)) as owned:
            results = list(owned.map(_graph_chunk, tasks))
    return [graph for chunk_result in results for graph in chunk_result]
