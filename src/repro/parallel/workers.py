"""Shard workers: one worker exclusively owns one shard.

Ownership model: a shard (pager + optional buffer pool + index) is touched
by exactly one actor at a time.  In **process** mode the shard is built and
lives inside a child process (fork-preferred), driven over a duplex pipe
(at most one command is ever in flight per worker, so a pipe's single
round-trip beats queue feeder-thread hand-offs); in **thread** mode the
shard is built in the parent but only its worker thread executes commands
against it.  The parent
never touches a worker-owned shard while a command is in flight, and every
dispatch is awaited before the parent reads any shard state -- so no lock is
needed anywhere.

I/O accounting: each worker charges a **private** ledger.  Every response
carries the per-category read/write deltas the command incurred; the parent
reconciles them into its shared ledger -- single-threaded -- via
:meth:`~repro.storage.iostats.IOStats.charge`.  This sidesteps the data race
a mirrored ledger (``ShardIOStats``) would have under concurrent workers,
and keeps parallel runs' I/O counts identical to inline runs' (the same
page operations happen, only the ledger hop differs).

Command protocol (plain tuples, picklable):

* ``("apply", category, ops)`` -- ops are ``("insert", oid, point, t)``,
  ``("update", oid, old_point, point, t)`` or ``("delete", oid, old_point,
  t)`` tuples, applied in order under the given I/O category.
* ``("query", category, lo, hi)`` -- range search over ``Rect(lo, hi)``.
* ``("stats",)`` -- structural probe (``tree_stats``) plus pager telemetry.
* ``("ping", token)`` -- transport echo (dispatch-RTT measurement).
* ``("crash",)`` -- fault-injection hook: die without responding.
* ``("shutdown",)`` -- exit the command loop cleanly.

Transports (process mode): commands and responses travel over a
shared-memory mailbox channel (:mod:`repro.parallel.shm`) when the host
supports it — fork start method plus a writable ``/dev/shm`` — and over
the duplex pipe otherwise.  The pipe always exists: it carries the
oversize-payload fallback and the EOF crash signal.  The transport choice
never changes command semantics or I/O accounting; ``transport="pipe"``
forces the historical behaviour (the dispatch bench A/Bs the two).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import queue
import threading
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.core.geometry import Rect
from repro.engine.registry import IndexOptions, get_spec
from repro.engine.sharded import Shard, build_shard
from repro.obs.treestats import tree_stats
from repro.parallel.pack import pack_ops
from repro.parallel.shm import ShmChannel, decode_frames, shm_available
from repro.storage.iostats import IOCategory, IOCounter, IOStats

#: How often the awaiting parent re-checks worker liveness while blocked on
#: a response.  Detection latency only -- correctness never times out.
_POLL_S = 0.05

#: Cached header pickles for the hoisted-header command framing, keyed by
#: ``(tag, category)``.  The set of categories is tiny and fixed
#: (:class:`~repro.storage.iostats.IOCategory`), so the cache never grows
#: past a handful of entries.
_HEADER_PICKLES: Dict[Tuple[str, str], bytes] = {}


def encode_cmd(cmd: tuple) -> bytes:
    """Pickle a worker command, hoisting the ``("apply", category)`` header.

    A dispatch round sends one ``("apply", category, ops)`` sub-batch per
    shard and the 2-tuple header is byte-identical across all of them (and
    across every round of the run); re-pickling it per sub-batch was pure
    waste.  The header is pickled once per ``(tag, category)`` pair and the
    cached bytes are concatenated with the ops payload -- which is either
    the columnar frame of :func:`~repro.parallel.pack.pack_ops` (bulk
    coordinates cross the transport as raw ``array`` columns, never
    pickled) or, for op shapes the frame does not model, the historical
    ops pickle.  :func:`~repro.parallel.shm.decode_frames` reassembles
    either form into the original 3-tuple.  Every other command shape is a
    single plain pickle, which the same decoder passes through unchanged.
    """
    if len(cmd) == 3 and cmd[0] == "apply":
        key = (cmd[0], cmd[1])
        header = _HEADER_PICKLES.get(key)
        if header is None:
            header = pickle.dumps(key, protocol=pickle.HIGHEST_PROTOCOL)
            _HEADER_PICKLES[key] = header
        packed = pack_ops(cmd[2])
        if packed is not None:
            return header + packed
        return header + pickle.dumps(cmd[2], protocol=pickle.HIGHEST_PROTOCOL)
    return pickle.dumps(cmd, protocol=pickle.HIGHEST_PROTOCOL)


class WorkerFailure(RuntimeError):
    """A shard worker died (process exit or thread abort) mid-command."""


def _io_deltas(
    before: Dict[str, IOCounter], after: Dict[str, IOCounter]
) -> List[Tuple[str, int, int]]:
    """Per-category (reads, writes) growth between two ledger snapshots."""
    out: List[Tuple[str, int, int]] = []
    for cat, counter in after.items():
        base = before.get(cat)
        dr = counter.reads - (base.reads if base else 0)
        dw = counter.writes - (base.writes if base else 0)
        if dr or dw:
            out.append((cat, dr, dw))
    return out


class ShardServer:
    """Executes the command protocol against the one shard it owns."""

    def __init__(self, kind: str, shard: Shard) -> None:
        self.kind = kind
        self.shard = shard
        self._spec = get_spec(kind)

    def execute(self, cmd: tuple) -> dict:
        tag = cmd[0]
        if tag == "apply":
            return self._apply(cmd[1], cmd[2])
        if tag == "query":
            return self._query(cmd[1], cmd[2], cmd[3])
        if tag == "stats":
            return self._stats()
        if tag == "ping":
            # Transport echo: no shard work, no I/O — the unit of measure
            # for the dispatch-RTT microbench.
            return {
                "ok": True,
                "pong": cmd[1] if len(cmd) > 1 else None,
                "io": [],
                "wall_s": 0.0,
            }
        raise ValueError(f"unknown worker command {tag!r}")

    def _telemetry(self, resp: dict) -> dict:
        resp["len"] = len(self.shard.index)
        resp["page_count"] = self.shard.pager.page_count
        return resp

    def _apply(self, category: str, ops: List[tuple]) -> dict:
        shard = self.shard
        stats = shard.pager.stats
        before = stats.snapshot()
        applied = 0
        last_pid = None
        removed = False
        error: Optional[BaseException] = None
        t0 = perf_counter()
        with stats.category(category):
            try:
                for op in ops:
                    tag = op[0]
                    if tag == "insert":
                        last_pid = shard.index.insert(op[1], op[2], now=op[3])
                    elif tag == "update":
                        last_pid = shard.index.update(
                            op[1], op[2], op[3], now=op[4]
                        )
                    elif tag == "delete":
                        removed = bool(
                            self._spec.delete(shard.index, op[1], op[2], op[3])
                        )
                    else:
                        raise ValueError(f"unknown apply op {tag!r}")
                    applied += 1
            except Exception as exc:  # op-level failure: report, stay alive
                error = exc
        wall = perf_counter() - t0
        shard.wall_clock_s += wall
        shard.n_updates += applied
        resp = {
            "ok": error is None,
            "applied": applied,
            "pid": last_pid,
            "removed": removed,
            "io": _io_deltas(before, stats.snapshot()),
            "wall_s": wall,
        }
        if error is not None:
            resp["error"] = str(error)
            resp["exc_type"] = type(error).__name__
        return self._telemetry(resp)

    def _query(self, category: str, lo: tuple, hi: tuple) -> dict:
        shard = self.shard
        stats = shard.pager.stats
        before = stats.snapshot()
        t0 = perf_counter()
        with stats.category(category):
            matches = shard.index.range_search(Rect(lo, hi))
        wall = perf_counter() - t0
        shard.wall_clock_s += wall
        shard.n_queries += 1
        shard.result_count += len(matches)
        return self._telemetry(
            {
                "ok": True,
                "matches": matches,
                "io": _io_deltas(before, stats.snapshot()),
                "wall_s": wall,
            }
        )

    def _stats(self) -> dict:
        shard = self.shard
        return self._telemetry(
            {
                "ok": True,
                "tree": tree_stats(shard.index),
                "lazy_hits": getattr(shard.index, "lazy_hits", 0) or 0,
                "relocations": getattr(shard.index, "relocations", 0) or 0,
                "pager": shard.pager.metrics_dict(),
                "io": [],
                "wall_s": 0.0,
            }
        )


def _safe_execute(server: ShardServer, cmd: tuple) -> dict:
    try:
        return server.execute(cmd)
    except Exception as exc:  # command decode / unexpected failure
        return {"ok": False, "error": str(exc), "exc_type": type(exc).__name__}


def _ready_response(shard: Shard, stats: IOStats, wall_s: float) -> dict:
    return {
        "ok": True,
        "ready": True,
        "io": _io_deltas({}, stats.snapshot()),
        "wall_s": wall_s,
        "len": len(shard.index),
        "page_count": shard.pager.page_count,
    }


def _process_shard_main(
    conn,
    channel,
    kind: str,
    sid: int,
    region: Rect,
    options: IndexOptions,
    pool_frames: int,
    page_size: int,
    category: str,
) -> None:
    """Child-process entry: build the shard, then serve commands forever.

    ``channel`` is the optional shared-memory transport; when present every
    message travels through it (the pipe remains the oversize/crash-signal
    fallback it wraps).  When None the pipe carries whole pickles, as
    before PR 7.
    """

    def send(resp: dict) -> None:
        if channel is not None:
            channel.send_resp(resp, conn)
        else:
            conn.send(resp)

    def recv() -> tuple:
        if channel is not None:
            return channel.recv_cmd(conn)
        # Commands arrive in the hoisted-header framing (encode_cmd); a
        # plain conn.recv() would pickle.loads the first stream and
        # silently drop the ops payload.
        return decode_frames(conn.recv_bytes())

    try:
        stats = IOStats()
        t0 = perf_counter()
        with stats.category(category):
            shard = build_shard(
                kind,
                sid,
                region,
                options,
                stats=stats,
                pool_frames=pool_frames,
                page_size=page_size,
            )
        send(_ready_response(shard, stats, perf_counter() - t0))
    except Exception as exc:
        send({"ok": False, "error": str(exc), "exc_type": type(exc).__name__})
        return
    server = ShardServer(kind, shard)
    try:
        while True:
            try:
                cmd = recv()
                tag = cmd[0]
                if tag == "shutdown":
                    return
                if tag == "crash":
                    os._exit(1)
                send(_safe_execute(server, cmd))
            except (EOFError, OSError):
                # Parent gone: pipe EOF/EPIPE, or the shm doorbell's
                # ppid-based liveness check fired.  (Shard execution
                # itself can't land here -- _safe_execute catches.)
                # Exit the loop so the finally below unlinks segments a
                # SIGKILLed parent never will.
                return
    finally:
        if channel is not None:
            # Unlinking while the parent still maps the segments is safe
            # (the name goes away, live mappings persist); the parent's
            # own close(unlink=True) then no-ops on FileNotFoundError.
            channel.close(unlink=True)


class ProcessWorker:
    """One shard in a child process, driven over a duplex pipe.

    The fork start method is preferred (the parent's imported modules and
    the routed history profile transfer by page sharing, not pickling);
    spawn is the fallback where fork is unavailable.

    The channel is a :func:`multiprocessing.Pipe` rather than a pair of
    queues: the protocol allows at most one in-flight command per worker,
    so the queue machinery (a feeder thread and its hand-off latency on
    every message) buys nothing -- and the dispatch round-trip is the
    parallel engine's unit cost, paid per sub-batch and twice per
    sequenced cross-shard move.
    """

    mode = "process"

    def __init__(
        self,
        kind: str,
        sid: int,
        region: Rect,
        options: IndexOptions,
        *,
        pool_frames: int = 0,
        page_size: int = 4096,
        category: str = IOCategory.OTHER,
        ctx=None,
        transport: str = "auto",
    ) -> None:
        if transport not in ("auto", "shm", "pipe"):
            raise ValueError(
                f"unknown transport {transport!r}; choose auto, shm or pipe"
            )
        self.sid = sid
        if ctx is None:
            method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
            ctx = mp.get_context(method)
        self._channel = None
        if transport in ("auto", "shm"):
            if shm_available(ctx):
                self._channel = ShmChannel(ctx)
            elif transport == "shm":
                raise WorkerFailure(
                    "shared-memory transport unavailable "
                    "(needs fork start method and a writable /dev/shm)"
                )
        #: The transport actually in use (``shm`` or ``pipe``).
        self.transport = "shm" if self._channel is not None else "pipe"
        try:
            self._conn, child_conn = ctx.Pipe(duplex=True)
            self._proc = ctx.Process(
                target=_process_shard_main,
                args=(
                    child_conn,
                    self._channel,
                    kind,
                    sid,
                    region,
                    options,
                    pool_frames,
                    page_size,
                    category,
                ),
                daemon=True,
                name=f"shard-worker-{sid}",
            )
            self._proc.start()
        except Exception:
            # close() is never reached when construction fails; unlink the
            # already-created segments here or they sit in /dev/shm until
            # the resource tracker (or a reboot) sweeps them.
            if self._channel is not None:
                self._channel.close(unlink=True)
                self._channel = None
            raise
        # Parent drops its handle on the child end so a dead child reads
        # as EOF instead of a silently half-open pipe.
        child_conn.close()

    def submit(self, cmd: tuple) -> None:
        if not self._proc.is_alive():
            raise WorkerFailure(f"shard {self.sid} worker process is dead")
        try:
            data = encode_cmd(cmd)
            if self._channel is not None:
                self._channel.send_cmd(
                    cmd, self._conn, liveness=self._proc.is_alive, data=data
                )
            else:
                self._conn.send_bytes(data)
        except (BrokenPipeError, OSError):
            raise WorkerFailure(
                f"shard {self.sid} worker process is dead"
            ) from None

    def _recv(self) -> dict:
        try:
            return self._conn.recv()
        except (EOFError, OSError):
            raise WorkerFailure(
                f"shard {self.sid} worker process died mid-command"
            ) from None

    def result(self) -> dict:
        """Await the next response; raises :class:`WorkerFailure` on death.

        A response the child flushed before dying stays readable (in the
        pipe buffer, or in the mailbox with the doorbell already rung), so
        an ack that made it out before the crash is never lost.
        """
        if self._channel is not None:
            try:
                return self._channel.recv_resp(
                    self._conn, liveness=self._proc.is_alive, poll_s=_POLL_S
                )
            except (EOFError, OSError):
                raise WorkerFailure(
                    f"shard {self.sid} worker process died mid-command"
                ) from None
        conn = self._conn
        while True:
            if conn.poll(_POLL_S):
                return self._recv()
            if not self._proc.is_alive():
                # Final drain: the child may have written between our poll
                # timing out and the liveness check.
                if conn.poll(0):
                    return self._recv()
                raise WorkerFailure(
                    f"shard {self.sid} worker process died mid-command"
                )

    def alive(self) -> bool:
        return self._proc.is_alive()

    def close(self) -> None:
        if self._proc.is_alive():
            try:
                self.submit(("shutdown",))
                self._proc.join(timeout=2.0)
            except Exception:
                pass
            if self._proc.is_alive():
                self._proc.terminate()
                self._proc.join(timeout=1.0)
        if self._channel is not None:
            self._channel.close(unlink=True)
            self._channel = None
        self._conn.close()


class ThreadWorker:
    """One shard owned by a worker thread -- the low-overhead smoke mode.

    The shard object lives in the parent (so structural probes and the
    health verifier can inspect it between dispatches), but only the worker
    thread executes commands against it.
    """

    mode = "thread"

    def __init__(
        self,
        kind: str,
        sid: int,
        region: Rect,
        options: IndexOptions,
        *,
        pool_frames: int = 0,
        page_size: int = 4096,
        category: str = IOCategory.OTHER,
    ) -> None:
        self.sid = sid
        stats = IOStats()
        t0 = perf_counter()
        with stats.category(category):
            self.shard = build_shard(
                kind,
                sid,
                region,
                options,
                stats=stats,
                pool_frames=pool_frames,
                page_size=page_size,
            )
        self._server = ShardServer(kind, self.shard)
        self._cmd: "queue.Queue[tuple]" = queue.Queue()
        self._resp: "queue.Queue[dict]" = queue.Queue()
        self._resp.put(_ready_response(self.shard, stats, perf_counter() - t0))
        self._thread = threading.Thread(
            target=self._loop, name=f"shard-worker-{sid}", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        while True:
            cmd = self._cmd.get()
            tag = cmd[0]
            if tag == "shutdown":
                return
            if tag == "crash":
                # Simulated hard death: exit without responding, exactly
                # like a killed process -- the parent detects it via the
                # liveness poll in result().
                return
            self._resp.put(_safe_execute(self._server, cmd))

    def submit(self, cmd: tuple) -> None:
        if not self._thread.is_alive():
            raise WorkerFailure(f"shard {self.sid} worker thread is dead")
        self._cmd.put(cmd)

    def result(self) -> dict:
        while True:
            try:
                return self._resp.get(timeout=_POLL_S)
            except queue.Empty:
                if not self._thread.is_alive():
                    raise WorkerFailure(
                        f"shard {self.sid} worker thread died mid-command"
                    ) from None

    def alive(self) -> bool:
        return self._thread.is_alive()

    def close(self) -> None:
        if self._thread.is_alive():
            self._cmd.put(("shutdown",))
            self._thread.join(timeout=2.0)
