"""Shared-memory mailbox transport for shard-worker dispatch.

The parallel engine's unit cost is the worker round-trip: serialize a
command, wake the child, serialize the response, wake the parent.  Over a
duplex pipe each direction pays a syscall-bound ``write``/``read`` of the
whole pickle (~75-110µs RTT measured in PR 5).  This module moves the
payload bytes through ``multiprocessing.shared_memory`` instead, so a
dispatch is: pickle into the mapped segment (a memory copy), bump a seqlock
header, and release a semaphore the peer is blocked on.  Only the doorbell
crosses the kernel, and it carries no bytes.

Protocol (single-producer/single-consumer, at most one message in flight
per direction — the engine never pipelines commands to one worker):

* A :class:`ShmMailbox` is one direction: a shared segment laid out as a
  24-byte little-endian header ``(seq, length, flags)`` followed by
  ``capacity`` payload bytes, plus two semaphores: a free-slot token
  (initially 1) and the doorbell (initially 0).
* The writer takes the free-slot token (rendezvous: it blocks until the
  reader consumed the previous message, so a not-yet-drained mailbox is
  never overwritten — e.g. a fire-and-forget shutdown or fault injection
  followed immediately by the next command), bumps ``seq`` to an odd
  value (write in progress), copies the pickle, then publishes ``seq+1``
  (even) with the length and releases the doorbell.  The reader blocks on
  the doorbell, copies the payload out, re-checks ``seq`` — an odd or
  changed ``seq`` would mean a torn write, which the token makes
  impossible in normal operation; the check is the seqlock's integrity
  rail against a writer dying mid-copy with the doorbell already rung —
  and returns the free-slot token before handing the message up (so a
  consumer that exits on the message, like the crash hook, has already
  unblocked the writer).
* A message larger than the segment sets ``FLAG_PIPE`` and travels through
  the fallback pipe instead.  The doorbell rings *before* the payload is
  written: the reader must already be draining ``conn`` while the writer
  fills it, or any payload beyond the kernel socket buffer would deadlock
  both ends (writer full, reader still parked on the semaphore).  Dispatch
  stays correct for arbitrarily large sub-batches; only the common case is
  accelerated.

A blocking semaphore (futex on Linux) is deliberately chosen over the
spin-polling loop classic shm rings use: on an oversubscribed or
single-CPU host, spinning steals the timeslice the peer needs to produce
the message (measured 78.7µs spin vs 21.9µs semaphore vs 29.6µs pipe RTT
on a 1-CPU container).

Availability: requires the ``fork`` start method (segments and semaphores
transfer by inheritance; no re-attach, no pickling of handles) and a
writable ``/dev/shm``.  :func:`shm_available` probes both;
:class:`~repro.parallel.workers.ProcessWorker` falls back to the plain
pipe transport when the probe fails or ``transport="pipe"`` is forced.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
from typing import Callable, Optional

from repro.parallel.pack import is_packed, unpack_ops

try:
    from multiprocessing import shared_memory as _shared_memory
except Exception:  # pragma: no cover - stdlib module; absent only on exotic builds
    _shared_memory = None  # type: ignore[assignment]

#: Header: message sequence (odd while a write is in progress), payload
#: length in bytes, flags.
_HEADER = struct.Struct("<QQQ")
HEADER_SIZE = _HEADER.size

#: Payload flags.
FLAG_INLINE = 0  # payload lives in the segment
FLAG_PIPE = 1  # payload was too large; drain it from the fallback pipe

#: Default payload capacity per direction.  Large enough that sub-batches
#: and query responses at bench scale stay inline; a miss only costs the
#: historical pipe hop.  Overridable via ``REPRO_SHM_CAPACITY`` (bytes).
DEFAULT_CAPACITY = 1 << 20

#: Liveness re-check cadence while blocked on the doorbell (parent side).
_POLL_S = 0.05

#: Child-side cadence for the parent-alive check while idle on the command
#: doorbell.  Only orphan-detection latency rides on it.
_CHILD_POLL_S = 0.25


def decode_frames(data: bytes):
    """Decode one message from a header pickle plus an optional body frame.

    The dispatch hot path hoists the constant ``("apply", category)``
    command header out of the per-sub-batch payload (see
    :func:`repro.parallel.workers.encode_cmd`): the wire bytes are then
    the cached header pickle followed by the ops payload -- either the
    magic-prefixed columnar frame of :mod:`repro.parallel.pack` (bulk
    coordinates as raw ``array`` columns, never pickled) or a second
    pickle stream.  Pickle streams are self-terminating, so one
    ``pickle.load`` leaves the cursor exactly at the body; the frame
    magic (never a valid pickle prefix) tells the two body forms apart.
    A plain single-pickle message (responses, control commands) decodes
    unchanged.  Note ``pickle.loads`` alone would *silently drop* the
    body -- hence this explicit decoder on every receive path that can
    see encoded commands.
    """
    stream = io.BytesIO(data)
    first = pickle.load(stream)
    if stream.tell() >= len(data):
        return first
    if is_packed(data, stream.tell()):
        return (*first, unpack_ops(data, stream.tell()))
    body = pickle.load(stream)
    return (*first, body)


def shm_capacity() -> int:
    raw = os.environ.get("REPRO_SHM_CAPACITY", "")
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_CAPACITY
    return value if value >= 4096 else DEFAULT_CAPACITY


def shm_available(ctx) -> bool:
    """True when the shared-memory transport can run under ``ctx``.

    Requires fork (handles transfer by inheritance) and a functioning
    ``shared_memory`` implementation (e.g. a writable ``/dev/shm``).
    """
    if _shared_memory is None:
        return False
    try:
        if ctx.get_start_method() != "fork":
            return False
    except Exception:
        return False
    try:
        probe = _shared_memory.SharedMemory(create=True, size=64)
    except Exception:
        return False
    try:
        probe.close()
        probe.unlink()
    except Exception:
        pass
    return True


class ShmMailbox:
    """One direction of the transport: a seqlock'd segment + doorbell.

    Exactly one process writes and one process reads (which is which flips
    between the request and response mailboxes of a channel).
    """

    __slots__ = ("_shm", "_sem", "_free", "_capacity", "_seq", "_owner")

    def __init__(self, ctx, capacity: int) -> None:
        assert _shared_memory is not None
        self._capacity = capacity
        self._shm = _shared_memory.SharedMemory(
            create=True, size=HEADER_SIZE + capacity
        )
        _HEADER.pack_into(self._shm.buf, 0, 0, 0, 0)
        self._sem = ctx.Semaphore(0)
        self._free = ctx.Semaphore(1)
        self._seq = 0
        self._owner = os.getpid()

    # -- writer side ---------------------------------------------------------

    def _claim_slot(
        self,
        liveness: Optional[Callable[[], bool]],
        poll_s: float,
    ) -> None:
        """Take the free-slot token; with ``liveness``, a dead reader raises
        :class:`BrokenPipeError` instead of blocking forever."""
        if liveness is None:
            self._free.acquire()
            return
        while True:
            if self._free.acquire(timeout=poll_s):
                return
            if not liveness():
                if self._free.acquire(block=False):
                    return
                raise BrokenPipeError(
                    "peer died before consuming the previous message"
                )

    def send(
        self,
        obj,
        conn,
        liveness: Optional[Callable[[], bool]] = None,
        poll_s: float = _POLL_S,
        data: Optional[bytes] = None,
    ) -> None:
        """Publish one message; oversize payloads detour through ``conn``.

        ``data`` lets the caller pass pre-encoded bytes (the hoisted-header
        command framing of :func:`repro.parallel.workers.encode_cmd`);
        they must decode back to ``obj`` via :func:`decode_frames`.
        """
        if data is None:
            data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        self._claim_slot(liveness, poll_s)
        buf = self._shm.buf
        seq = self._seq + 1  # odd: write in progress
        if len(data) <= self._capacity:
            _HEADER.pack_into(buf, 0, seq, 0, FLAG_INLINE)
            buf[HEADER_SIZE : HEADER_SIZE + len(data)] = data
            _HEADER.pack_into(buf, 0, seq + 1, len(data), FLAG_INLINE)
            self._seq = seq + 1
            self._sem.release()
        else:
            _HEADER.pack_into(buf, 0, seq + 1, 0, FLAG_PIPE)
            self._seq = seq + 1
            # Ring the doorbell *before* writing the payload.  The reader
            # is blocked on the doorbell, so it cannot drain the pipe until
            # it fires; a payload larger than the kernel socket buffer
            # (~64-208 KiB) would otherwise block this send_bytes() forever
            # while the reader waits on the semaphore -- a mutual deadlock
            # no liveness poll can break, since both peers stay alive.
            # With the header already published, the reader wakes, sees
            # FLAG_PIPE, and sits in recv_bytes() consuming as we write.
            self._sem.release()
            conn.send_bytes(data)

    # -- reader side ---------------------------------------------------------

    def _consume(self, conn):
        buf = self._shm.buf
        seq, length, flags = _HEADER.unpack_from(buf, 0)
        if flags == FLAG_PIPE:
            data = conn.recv_bytes()
            self._free.release()
        else:
            data = bytes(buf[HEADER_SIZE : HEADER_SIZE + length])
            seq_after = _HEADER.unpack_from(buf, 0)[0]
            if seq % 2 or seq_after != seq:
                raise EOFError("torn shared-memory message")
            self._free.release()
        return decode_frames(data)

    def recv(
        self,
        conn,
        liveness: Optional[Callable[[], bool]] = None,
        poll_s: float = _POLL_S,
    ):
        """Block on the doorbell; ``liveness`` is re-checked every
        ``poll_s`` so a dead peer raises instead of hanging forever."""
        if liveness is None:
            self._sem.acquire()
            return self._consume(conn)
        while True:
            if self._sem.acquire(timeout=poll_s):
                return self._consume(conn)
            if not liveness():
                # Final drain: the peer may have rung the doorbell between
                # the timeout and the liveness check.
                if self._sem.acquire(block=False):
                    return self._consume(conn)
                raise EOFError("peer died before responding")

    # -- lifecycle -----------------------------------------------------------

    def close(self, unlink: bool) -> None:
        try:
            self._shm.close()
        except Exception:
            pass
        if unlink:
            try:
                self._shm.unlink()
            except Exception:
                pass


class ShmChannel:
    """A duplex parent<->child message channel over two mailboxes.

    The fallback pipe ``conn`` (one per side) is still owned by the worker
    for the ready handshake, oversize payloads, and crash detection (a dead
    child's pipe reads EOF; shared memory has no such signal).
    """

    __slots__ = ("_req", "_resp", "capacity", "_parent_pid")

    def __init__(self, ctx, capacity: Optional[int] = None) -> None:
        self.capacity = capacity if capacity is not None else shm_capacity()
        self._req = ShmMailbox(ctx, self.capacity)
        try:
            self._resp = ShmMailbox(ctx, self.capacity)
        except Exception:
            self._req.close(unlink=True)
            raise
        # The channel is built in the parent before fork; the child checks
        # its ppid against this while idle so an uncleanly dead parent
        # (SIGKILL -- no pipe EOF reaches a reader parked on the doorbell)
        # doesn't orphan it forever.
        self._parent_pid = os.getpid()

    # Parent side ------------------------------------------------------------

    def send_cmd(
        self,
        cmd,
        conn,
        liveness=None,
        poll_s: float = _POLL_S,
        data: Optional[bytes] = None,
    ) -> None:
        self._req.send(cmd, conn, liveness, poll_s, data=data)

    def recv_resp(self, conn, liveness, poll_s: float = _POLL_S):
        return self._resp.recv(conn, liveness, poll_s)

    # Child side -------------------------------------------------------------

    def _parent_alive(self) -> bool:
        # After the parent dies the child is reparented (to init or a
        # subreaper), so its ppid stops matching the recorded parent pid.
        return os.getppid() == self._parent_pid

    def recv_cmd(self, conn):
        # A gentler cadence than the parent's: orphan detection latency is
        # all that rides on it, and idle workers shouldn't wake 20x/s.
        return self._req.recv(
            conn, liveness=self._parent_alive, poll_s=_CHILD_POLL_S
        )

    def send_resp(self, resp, conn) -> None:
        # Liveness here keeps the child from parking forever on the
        # free-slot token when the parent died without consuming the
        # previous response; BrokenPipeError surfaces as OSError in the
        # command loop, which exits and unlinks.
        self._resp.send(
            resp, conn, liveness=self._parent_alive, poll_s=_CHILD_POLL_S
        )

    # Lifecycle --------------------------------------------------------------

    def close(self, unlink: bool) -> None:
        self._req.close(unlink)
        self._resp.close(unlink)
