"""Columnar wire framing for bulk apply sub-batches.

The dispatch hot path ships ``("apply", category, ops)`` sub-batches where
``ops`` is a list of small tuples full of float coordinates.  Pickling that
list walks every tuple and boxes every float -- per dispatch, per shard.
This module packs the common op shapes into one flat binary frame instead:
a tag byte per op plus four columnar arrays (oids ``int64``, timestamps
``float64``, coordinates ``float64``), memcpy'd straight from ``array``
buffers.  On the shared-memory transport the frame lands in the mapped
segment as raw bytes -- the coordinate columns cross the process boundary
without ever being pickled; on the pipe fallback the same bytes travel
through ``send_bytes`` unchanged.

Only the hot shapes are packed -- 2-D ``insert``/``update`` ops with float
coordinates.  Anything else (deletes, other dimensions, exotic payload
types) makes :func:`pack_ops` return None and the caller falls back to the
historical pickle framing; the wire format is an optimization, never a
constraint on the protocol.

Frame layout (little-endian)::

    magic   4 bytes  b"RPK1"
    count   uint32   number of ops
    n_old   uint32   number of ops carrying an old position
    tags    count bytes   0 = insert, 1 = update, 2 = update w/ None old
    oids    count * int64
    ts      count * float64
    points  count * 2 float64   new position per op
    olds    n_old * 2 float64   old positions, in op order, tag==1 only

:func:`unpack_ops` reconstructs the exact tuple list ``pack_ops`` saw, so
``unpack_ops(pack_ops(ops)) == ops`` whenever packing succeeded.
"""

from __future__ import annotations

import struct
from array import array
from typing import List, Optional

#: Frame magic: never a valid pickle prefix (pickle protocol 2+ frames
#: start with b"\x80"), so a receiver can sniff frame-vs-pickle cheaply.
MAGIC = b"RPK1"

_PREAMBLE = struct.Struct("<4sII")

_TAG_INSERT = 0
_TAG_UPDATE = 1
_TAG_UPDATE_NO_OLD = 2


def _is_point2(value: object) -> bool:
    return (
        isinstance(value, tuple)
        and len(value) == 2
        and isinstance(value[0], float)
        and isinstance(value[1], float)
    )


def pack_ops(ops: List[tuple]) -> Optional[bytes]:
    """Pack an apply sub-batch into one columnar frame, or None.

    None means "this batch has a shape the fast frame does not model --
    pickle it like before".  Succeeds only when every op is a 2-D
    ``insert``/``update`` with float coordinates and a float timestamp.
    """
    count = len(ops)
    if count == 0:
        return None
    tags = bytearray(count)
    oids = array("q")
    ts = array("d")
    points = array("d")
    olds = array("d")
    for i, op in enumerate(ops):
        tag = op[0]
        if tag == "insert":
            if len(op) != 4 or not _is_point2(op[2]):
                return None
            oid, point, t = op[1], op[2], op[3]
            tags[i] = _TAG_INSERT
        elif tag == "update":
            if len(op) != 5 or not _is_point2(op[3]):
                return None
            oid, old, point, t = op[1], op[2], op[3], op[4]
            if old is None:
                tags[i] = _TAG_UPDATE_NO_OLD
            elif _is_point2(old):
                tags[i] = _TAG_UPDATE
                olds.append(old[0])
                olds.append(old[1])
            else:
                return None
        else:
            return None
        if not isinstance(oid, int) or not isinstance(t, float):
            return None
        oids.append(oid)
        ts.append(t)
        points.append(point[0])
        points.append(point[1])
    return b"".join(
        (
            _PREAMBLE.pack(MAGIC, count, len(olds) // 2),
            bytes(tags),
            oids.tobytes(),
            ts.tobytes(),
            points.tobytes(),
            olds.tobytes(),
        )
    )


def is_packed(data: bytes, offset: int = 0) -> bool:
    """Does ``data[offset:]`` start with a columnar frame?"""
    return data[offset : offset + 4] == MAGIC


def unpack_ops(data: bytes, offset: int = 0) -> List[tuple]:
    """Decode a frame back into the original op-tuple list."""
    magic, count, n_old = _PREAMBLE.unpack_from(data, offset)
    if magic != MAGIC:
        raise ValueError("not a packed ops frame")
    pos = offset + _PREAMBLE.size
    tags = data[pos : pos + count]
    pos += count
    oids = array("q")
    oids.frombytes(data[pos : pos + 8 * count])
    pos += 8 * count
    ts = array("d")
    ts.frombytes(data[pos : pos + 8 * count])
    pos += 8 * count
    points = array("d")
    points.frombytes(data[pos : pos + 16 * count])
    pos += 16 * count
    olds = array("d")
    olds.frombytes(data[pos : pos + 16 * n_old])
    ops: List[tuple] = []
    old_i = 0
    for i in range(count):
        point = (points[2 * i], points[2 * i + 1])
        tag = tags[i]
        if tag == _TAG_INSERT:
            ops.append(("insert", oids[i], point, ts[i]))
        elif tag == _TAG_UPDATE:
            old = (olds[2 * old_i], olds[2 * old_i + 1])
            old_i += 1
            ops.append(("update", oids[i], old, point, ts[i]))
        else:
            ops.append(("update", oids[i], None, point, ts[i]))
    return ops
