"""The parallel sharded engine: the space-partitioned router on a worker pool.

Same routing semantics as :class:`~repro.engine.sharded.ShardedIndex` --
equal-width slabs, owner map, delete+insert boundary crossings, fan-out
queries -- but every shard-local operation executes on the worker that owns
the shard (:mod:`repro.parallel.workers`), so independent shards proceed
concurrently.

Determinism contract:

* batched updates dispatch per-shard sub-batches cut from the same
  ``(t, seq)``-sorted order the inline engine applies, and coalescing
  guarantees one entry per object per batch -- so each shard applies exactly
  the inline sequence restricted to it;
* **cross-shard moves stay sequenced through the router** (delete acked on
  the source worker before the insert is issued to the target): a worker
  failure can therefore never leave an object resident in two shards, and
  the accounting (two update ops, one move) matches inline exactly;
* query fan-out merges responses in shard-id order, byte-identical to the
  inline engine's concatenation.

Failure model: a worker death (process exit, thread abort) is detected by
the liveness poll while awaiting its response.  The engine then **degrades
gracefully to inline execution**: remaining workers shut down and every
shard is rebuilt in-process from the parent's authoritative positions
ledger (acknowledged state only), charged as BUILD I/O, with the
``parallel.worker_failures`` / ``parallel.fallback`` obs counters tagged.
In-flight unacknowledged operations are re-applied inline, so no
acknowledged state is ever lost and no operation is applied twice.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.geometry import Point, Rect
from repro.core.params import CTParams
from repro.engine.buffer import PendingUpdate
from repro.engine.protocol import position_of
from repro.engine.registry import IndexOptions, get_spec
from repro.engine.results import RunResult, merge_results
from repro.engine.sharded import (
    ShardedIndex,
    SpacePartition,
    replay_order,
    route_histories,
)
from repro.obs.metrics import get_registry
from repro.obs.treestats import aggregate_shard_stats, tree_stats
from repro.parallel.workers import ProcessWorker, ThreadWorker, WorkerFailure
from repro.storage.iostats import IOCategory, IOStats


@dataclass
class ShardLedger:
    """Parent-side accounting for one worker-owned shard.

    The shard's pages and index live with its worker; the parent tracks the
    acknowledged counters and reconciles worker-reported I/O deltas here and
    into the shared ledger (single-threaded, post-dispatch)."""

    sid: int
    region: Rect
    stats: IOStats = field(default_factory=IOStats)
    n_updates: int = 0
    n_queries: int = 0
    result_count: int = 0
    wall_clock_s: float = 0.0
    objects: int = 0
    page_count: int = 0

    def run_result(self, kind: str) -> RunResult:
        return RunResult(
            kind=f"{kind}/shard{self.sid}",
            n_updates=self.n_updates,
            n_queries=self.n_queries,
            result_count=self.result_count,
            update_io=self.stats.counter(IOCategory.UPDATE),
            query_io=self.stats.counter(IOCategory.QUERY),
            wall_clock_s=self.wall_clock_s,
        )


class ParallelStore:
    """Pager facade over worker-owned shards (the driver/CLI surface)."""

    def __init__(self, index: "ParallelShardedIndex", page_size: int) -> None:
        self._index = index
        self._page_size = page_size

    @property
    def stats(self) -> IOStats:
        return self._index._stats

    @property
    def page_size(self) -> int:
        return self._page_size

    @property
    def page_count(self) -> int:
        inline = self._index._inline
        if inline is not None:
            return inline.pager.page_count
        return sum(led.page_count for led in self._index._ledgers)

    @property
    def hit_rate(self) -> float:
        inline = self._index._inline
        return inline.pager.hit_rate if inline is not None else 0.0

    def metrics_dict(self) -> Dict[str, object]:
        index = self._index
        out: Dict[str, object] = {
            "n_shards": index.n_shards,
            "page_count": self.page_count,
            "io": index._stats.to_dict(),
            "parallel": {
                "mode": index.mode,
                "workers": index.n_shards,
                "worker_failures": index.worker_failures,
                "fallbacks": index.fallbacks,
                "fell_back": index._inline is not None,
            },
            "shards": [
                {
                    "sid": led.sid,
                    "io": led.stats.to_dict(),
                    "page_count": led.page_count,
                }
                for led in index._ledgers
            ],
        }
        if index._inline is not None:
            out["inline"] = index._inline.pager.metrics_dict()
        return out


class ParallelShardedIndex:
    """A :class:`~repro.engine.protocol.SpatialIndex` router whose shards
    execute on a worker pool (one worker per shard).

    Args:
        kind: registered index kind to build per shard.
        domain: the full data domain, partitioned into ``n_shards`` slabs.
        n_shards: slab count == worker count (each shard owned by exactly
            one worker).
        mode: ``"process"`` (multiprocessing, per-worker pager + index) or
            ``"thread"`` (low-overhead smoke mode, shards parent-resident
            but worker-driven).
        transport: process-mode dispatch transport -- ``"auto"`` (shared
            memory when available, else pipe), ``"shm"`` (required), or
            ``"pipe"`` (forced).  Overridable via the
            ``REPRO_PARALLEL_TRANSPORT`` environment variable; ignored in
            thread mode.
    """

    def __init__(
        self,
        kind: str,
        domain: Rect,
        n_shards: Optional[int] = None,
        *,
        mode: str = "process",
        max_entries: int = 20,
        ct_params: Optional[CTParams] = None,
        histories: Optional[Mapping[int, Sequence[Tuple[Point, float]]]] = None,
        query_rate: float = 50.0,
        adaptive: bool = True,
        split: str = "quadratic",
        pool_frames: int = 0,
        page_size: int = 4096,
        partition=None,
        rebalancer=None,
        transport: Optional[str] = None,
    ) -> None:
        if mode not in ("thread", "process"):
            raise ValueError(f"unknown parallel mode {mode!r}")
        self.kind = kind
        self.domain = domain
        self.mode = mode
        if transport is None:
            transport = os.environ.get("REPRO_PARALLEL_TRANSPORT") or "auto"
        self._transport = transport
        if partition is None:
            if n_shards is None:
                raise ValueError("pass n_shards or an explicit partition")
            partition = SpacePartition(domain, n_shards)
        elif n_shards is not None and n_shards != partition.n_shards:
            raise ValueError(
                f"n_shards={n_shards} disagrees with the supplied "
                f"partition ({partition.n_shards} shards)"
            )
        n_shards = partition.n_shards
        self._partition = partition
        self._stats = IOStats()
        self._owners: Dict[int, int] = {}
        #: Acknowledged state: object id -> (position, last timestamp).
        #: This is what an inline fallback rebuilds from, so it advances
        #: only when a worker has acked the op that produced it.
        self._positions: Dict[int, Tuple[Point, Optional[float]]] = {}
        #: Per-object cross-shard move counts (the speed strategy's signal).
        self._move_counts: Dict[int, int] = {}
        self.cross_shard_moves = 0
        self.cross_shard_move_failures = 0
        self.worker_failures = 0
        self.fallbacks = 0
        self.rebalances = 0
        #: Ledgers of worker generations retired by rebalance cutovers.
        self._retired_results: List[RunResult] = []
        self._rebalancer = rebalancer
        self._inline: Optional[ShardedIndex] = None
        self._prefallback: Optional[List[RunResult]] = None
        self._max_entries = max_entries
        self._ct_params = ct_params
        self._histories = histories
        self._query_rate = query_rate
        self._adaptive = adaptive
        self._split = split
        self._pool_frames = pool_frames
        self._page_size = page_size
        self._ledgers = [
            ShardLedger(sid=sid, region=self.partition.region(sid))
            for sid in range(n_shards)
        ]
        self._store = ParallelStore(self, page_size)
        self._workers: List[object] = []

        spec = get_spec(kind)
        routed = route_histories(self.partition, histories)
        worker_cls = ProcessWorker if mode == "process" else ThreadWorker
        worker_extra = {"transport": transport} if mode == "process" else {}
        category = self._stats.active_category
        try:
            for sid in range(n_shards):
                options = IndexOptions(
                    max_entries=max_entries,
                    ct_params=ct_params,
                    histories=routed[sid] if spec.needs_histories else None,
                    query_rate=query_rate,
                    adaptive=adaptive,
                    split=split,
                )
                self._workers.append(
                    worker_cls(
                        kind,
                        sid,
                        self.partition.region(sid),
                        options,
                        pool_frames=pool_frames,
                        page_size=page_size,
                        category=category,
                        **worker_extra,
                    )
                )
            # Await the ready handshakes after every worker has started, so
            # process-mode shard construction (CT qs-region mining included)
            # runs concurrently across the pool.
            for sid, worker in enumerate(self._workers):
                resp = worker.result()
                if not resp.get("ok"):
                    raise RuntimeError(
                        f"shard {sid} worker failed to build: "
                        f"{resp.get('error')}"
                    )
                self._absorb(sid, resp)
        except Exception:
            self.close()
            raise

    @property
    def partition(self):
        """The live partition (the inline fallback's, once fallen back --
        a rebalancer handed to the fallback keeps evolving it there)."""
        if self._inline is not None:
            return self._inline.partition
        return self._partition

    @partition.setter
    def partition(self, value) -> None:
        self._partition = value

    def _note_op(self) -> None:
        """Post-op rebalancer hook (mirrors the inline engine's cadence)."""
        if self._rebalancer is not None and self._inline is None:
            self._rebalancer.note_op(self)

    # -- worker plumbing ----------------------------------------------------

    def _absorb(self, sid: int, resp: dict) -> None:
        """Reconcile one response's telemetry (single-threaded, post-await)."""
        led = self._ledgers[sid]
        for cat, dr, dw in resp.get("io", ()):
            self._stats.charge(cat, dr, dw)
            led.stats.charge(cat, dr, dw)
        wall = float(resp.get("wall_s", 0.0))
        led.wall_clock_s += wall
        if "len" in resp:
            led.objects = int(resp["len"])
        if "page_count" in resp:
            led.page_count = int(resp["page_count"])
        if wall:
            registry = get_registry()
            if registry.enabled:
                registry.record_duration(f"parallel.worker{sid}.busy_s", wall)

    def _dispatch(
        self, targets: Mapping[int, tuple]
    ) -> Tuple[Dict[int, dict], List[int]]:
        """Submit one command per target shard, then await all responses.

        Returns ``(responses, failed_sids)``.  Responses from shards that
        answered before a peer died are absorbed normally -- acknowledged
        work is never discarded.
        """
        registry = get_registry()
        t0 = perf_counter()
        submitted: List[int] = []
        failed: List[int] = []
        for sid, cmd in targets.items():
            try:
                self._workers[sid].submit(cmd)
                submitted.append(sid)
            except WorkerFailure:
                failed.append(sid)
        out: Dict[int, dict] = {}
        for sid in submitted:
            try:
                resp = self._workers[sid].result()
            except WorkerFailure:
                failed.append(sid)
                continue
            self._absorb(sid, resp)
            out[sid] = resp
        if registry.enabled:
            registry.observe(
                "parallel.dispatch.latency_s", perf_counter() - t0
            )
        return out, failed

    def _single(self, sid: int, op: tuple, category: str) -> dict:
        """One op on one shard; raises :class:`WorkerFailure` on death."""
        out, failed = self._dispatch({sid: ("apply", category, [op])})
        if failed:
            raise WorkerFailure(f"shard {sid} worker died")
        return out[sid]

    def close(self) -> None:
        """Shut every worker down (best-effort, idempotent)."""
        workers, self._workers = self._workers, []
        for worker in workers:
            try:
                worker.close()
            except Exception:
                pass

    def __enter__(self) -> "ParallelShardedIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- graceful degradation ------------------------------------------------

    def _fall_back(self) -> None:
        """Rebuild every shard inline from the acknowledged positions ledger.

        Charged as BUILD I/O on the same shared ledger (the driver's delta
        accounting stays monotone).  Pre-fallback per-shard run ledgers are
        snapshotted so ``shard_results`` stays cumulative across the cutover.
        """
        if self._inline is not None:
            return
        self.worker_failures += 1
        self.fallbacks += 1
        registry = get_registry()
        if registry.enabled:
            registry.inc("parallel.worker_failures")
            registry.inc("parallel.fallback")
        self._prefallback = [led.run_result(self.kind) for led in self._ledgers]
        self.close()
        with self._stats.category(IOCategory.BUILD):
            inline = ShardedIndex(
                self.kind,
                self.domain,
                max_entries=self._max_entries,
                ct_params=self._ct_params,
                histories=self._histories,
                query_rate=self._query_rate,
                adaptive=self._adaptive,
                split=self._split,
                pool_frames=self._pool_frames,
                page_size=self._page_size,
                stats=self._stats,
                partition=self._partition,
            )
            # Replay in timestamp order (untimed inserts first) so a
            # time-driven index observes a monotone clock, like the stream.
            for oid, pos, t in replay_order(self._positions):
                inline.insert(oid, pos, now=t)
        for shard in inline.shards:
            # The replay is reconstruction, not stream work: zero the
            # per-shard stream counters it inflated.
            shard.n_updates = 0
            shard.wall_clock_s = 0.0
        inline._move_counts = dict(self._move_counts)
        # The rebalancer follows the engine that now executes operations
        # (attached only after the replay: reconstruction is not stream
        # work and must not advance the detector).
        inline._rebalancer = self._rebalancer
        self._inline = inline

    # -- SpatialIndex surface ------------------------------------------------

    @property
    def pager(self) -> ParallelStore:
        return self._store

    @property
    def n_shards(self) -> int:
        return self.partition.n_shards

    def __len__(self) -> int:
        if self._inline is not None:
            return len(self._inline)
        return sum(led.objects for led in self._ledgers)

    def insert(
        self, obj_id: int, point: Sequence[float], now: Optional[float] = None
    ):
        if self._inline is not None:
            return self._inline.insert(obj_id, point, now=now)
        pos = position_of(point)
        sid = self.partition.shard_for(obj_id, pos)
        try:
            resp = self._single(
                sid, ("insert", obj_id, pos, now), self._stats.active_category
            )
        except WorkerFailure:
            self._fall_back()
            return self._inline.insert(obj_id, pos, now=now)
        self._ledgers[sid].n_updates += int(resp["applied"])
        if resp["applied"]:
            self._owners[obj_id] = sid
            self._positions[obj_id] = (pos, now)
        if not resp["ok"]:
            raise RuntimeError(
                f"shard {sid} insert failed: {resp.get('error')}"
            )
        self._note_op()
        return resp.get("pid")

    def update(
        self,
        obj_id: int,
        old_point: Sequence[float],
        new_point: Sequence[float],
        now: Optional[float] = None,
    ):
        if self._inline is not None:
            return self._inline.update(obj_id, old_point, new_point, now=now)
        new_pos = position_of(new_point)
        old_sid = self._owners.get(obj_id)
        if old_sid is None:
            raise KeyError(f"object {obj_id} is not indexed")
        new_sid = self.partition.shard_for(obj_id, new_pos)
        old_pos = None if old_point is None else position_of(old_point)
        category = self._stats.active_category
        try:
            if new_sid == old_sid:
                resp = self._single(
                    old_sid,
                    ("update", obj_id, old_pos, new_pos, now),
                    category,
                )
                self._ledgers[old_sid].n_updates += int(resp["applied"])
                if resp["applied"]:
                    self._positions[obj_id] = (new_pos, now)
                if not resp["ok"]:
                    raise RuntimeError(
                        f"shard {old_sid} update failed: {resp.get('error')}"
                    )
                self._note_op()
                return resp.get("pid")
            pid = self._move_via_workers(
                obj_id, old_pos, new_pos, now, category
            )
            self._note_op()
            return pid
        except WorkerFailure:
            self._fall_back()
            return self._inline.update(obj_id, old_point, new_pos, now=now)

    def _move_via_workers(
        self,
        obj_id: int,
        old_pos: Optional[Point],
        new_pos: Point,
        now: Optional[float],
        category: str,
    ):
        """A boundary crossing, sequenced through the router.

        The delete must be acknowledged by the source worker before the
        insert is issued to the target: a failure between the two leaves the
        object in *neither* worker, and the positions ledger (still holding
        the old position) restores it at the source during fallback.  Firing
        both concurrently could instead leave it in both.
        """
        old_sid = self._owners[obj_id]
        new_sid = self.partition.shard_for(obj_id, new_pos)
        self._single(old_sid, ("delete", obj_id, old_pos, now), category)
        self._ledgers[old_sid].n_updates += 1
        return self._move_insert(
            obj_id, old_pos, new_pos, now, category, old_sid, new_sid
        )

    def _move_insert(
        self,
        obj_id: int,
        old_pos: Optional[Point],
        new_pos: Point,
        now: Optional[float],
        category: str,
        old_sid: int,
        new_sid: int,
    ):
        """The insert half of a sequenced move (source delete already acked)."""
        try:
            resp = self._single(
                new_sid, ("insert", obj_id, new_pos, now), category
            )
        except WorkerFailure:
            self.cross_shard_move_failures += 1
            raise
        self._ledgers[new_sid].n_updates += int(resp["applied"])
        if not resp["ok"]:
            # Exception safety, mirroring the inline engine: restore the
            # object to its source shard before surfacing the failure.
            self.cross_shard_move_failures += 1
            if old_pos is not None:
                self._single(
                    old_sid, ("insert", obj_id, old_pos, now), category
                )
                self._ledgers[old_sid].n_updates += 1
            raise RuntimeError(
                f"cross-shard insert failed: {resp.get('error')}"
            )
        self.cross_shard_moves += 1
        self._owners[obj_id] = new_sid
        self._positions[obj_id] = (new_pos, now)
        self._move_counts[obj_id] = self._move_counts.get(obj_id, 0) + 1
        return resp.get("pid")

    def delete(
        self,
        obj_id: int,
        old_point: Optional[Sequence[float]] = None,
        now: Optional[float] = None,
    ) -> bool:
        if self._inline is not None:
            return self._inline.delete(obj_id, old_point, now=now)
        sid = self._owners.get(obj_id)
        if sid is None:
            return False
        pos = None if old_point is None else position_of(old_point)
        try:
            resp = self._single(
                sid, ("delete", obj_id, pos, now), self._stats.active_category
            )
        except WorkerFailure:
            self._fall_back()
            return self._inline.delete(obj_id, old_point, now=now)
        if not resp["ok"]:
            raise RuntimeError(
                f"shard {sid} delete failed: {resp.get('error')}"
            )
        removed = bool(resp.get("removed"))
        if removed:
            del self._owners[obj_id]
            del self._positions[obj_id]
            self._move_counts.pop(obj_id, None)
        return removed

    # -- batched dispatch ----------------------------------------------------

    def apply_batch(self, batch: Sequence[PendingUpdate]) -> int:
        """Group-apply a ``(t, seq)``-sorted coalesced batch by shard.

        Same-shard runs dispatch concurrently (one sub-batch per worker).  A
        cross-shard move stays sequenced through the router, but only its
        *two* shards synchronize: the move's delete is appended to the
        source shard's pending sub-batch and that sub-batch flushes together
        with the target shard's (one concurrent round, so the target has
        applied everything that precedes the insert in batch order), then
        the insert is issued -- after the delete's ack, as always.  The
        other shards' sub-batches keep accumulating, so a move costs two
        round-trip latencies instead of a full-engine barrier.  Coalescing
        guarantees each object appears at most once per batch, so every
        shard still applies exactly the inline engine's sequence restricted
        to that shard.

        A worker failure mid-batch triggers the inline fallback; the
        not-yet-acknowledged remainder of the batch is then applied
        in-process, so the returned count always covers the full batch.
        """
        if self._inline is not None:
            return self._apply_batch_inline(self._inline, batch)
        category = self._stats.active_category
        total = 0
        acked: set = set()
        pending_ops: Dict[int, List[tuple]] = {}
        #: Per pending op: (oid, pos, t) to commit on ack, or None for a
        #: move's delete (its ledger commit rides the insert's ack instead).
        pending_effects: Dict[
            int, List[Optional[Tuple[int, Point, Optional[float]]]]
        ] = {}
        #: Shards whose last dispatched sub-batch applied fully (so a move
        #: can tell whether its trailing delete made it out when a *peer*
        #: shard's sub-batch failed in the same round).
        fully_applied: set = set()

        def flush_pending(only: Optional[Tuple[int, ...]] = None) -> None:
            nonlocal total
            sids = (
                list(pending_ops)
                if only is None
                else [sid for sid in only if sid in pending_ops]
            )
            if not sids:
                return
            targets = {
                sid: ("apply", category, pending_ops[sid]) for sid in sids
            }
            out, failed = self._dispatch(targets)
            fully_applied.clear()
            bad: Optional[Tuple[int, dict]] = None
            for sid, resp in out.items():
                applied = int(resp["applied"])
                self._ledgers[sid].n_updates += applied
                if applied == len(pending_ops[sid]):
                    fully_applied.add(sid)
                for effect in pending_effects[sid][:applied]:
                    if effect is None:
                        continue
                    oid, pos, t = effect
                    self._owners[oid] = sid
                    self._positions[oid] = (pos, t)
                    acked.add(oid)
                    total += 1
                if not resp["ok"] and bad is None:
                    bad = (sid, resp)
            for sid in sids:
                del pending_ops[sid]
                del pending_effects[sid]
            if failed:
                raise WorkerFailure(
                    f"shard worker(s) {sorted(failed)} died mid-batch"
                )
            if bad is not None:
                raise RuntimeError(
                    f"shard {bad[0]} batch apply failed: "
                    f"{bad[1].get('error')}"
                )

        try:
            for update in batch:
                pos = update.point
                new_sid = self.partition.shard_for(update.oid, pos)
                if update.old_point is None:
                    pending_ops.setdefault(new_sid, []).append(
                        ("insert", update.oid, pos, update.t)
                    )
                    pending_effects.setdefault(new_sid, []).append(
                        (update.oid, pos, update.t)
                    )
                    continue
                old_sid = self._owners.get(update.oid)
                if old_sid is None:
                    flush_pending()
                    raise KeyError(f"object {update.oid} is not indexed")
                if old_sid == new_sid:
                    pending_ops.setdefault(old_sid, []).append(
                        ("update", update.oid, update.old_point, pos, update.t)
                    )
                    pending_effects.setdefault(old_sid, []).append(
                        (update.oid, pos, update.t)
                    )
                else:
                    old_pos = update.old_point
                    pending_ops.setdefault(old_sid, []).append(
                        ("delete", update.oid, old_pos, update.t)
                    )
                    pending_effects.setdefault(old_sid, []).append(None)
                    try:
                        flush_pending(only=(old_sid, new_sid))
                    except RuntimeError:
                        if old_sid in fully_applied and old_pos is not None:
                            # The delete made it out but the target shard's
                            # sub-batch failed before the insert could be
                            # issued: restore the object at its source, as
                            # the single-op move path would.
                            self.cross_shard_move_failures += 1
                            self._single(
                                old_sid,
                                ("insert", update.oid, old_pos, update.t),
                                category,
                            )
                            self._ledgers[old_sid].n_updates += 1
                        raise
                    self._move_insert(
                        update.oid, old_pos, pos, update.t, category,
                        old_sid, new_sid,
                    )
                    acked.add(update.oid)
                    total += 1
            flush_pending()
        except WorkerFailure:
            self._fall_back()
            remainder = [u for u in batch if u.oid not in acked]
            total += self._apply_batch_inline(self._inline, remainder)
            return total
        # One detection sweep per applied op, after the batch settled (a
        # rebalance cannot interleave with in-flight sub-batches).
        if self._rebalancer is not None:
            for _ in range(total):
                self._note_op()
        return total

    @staticmethod
    def _apply_batch_inline(
        index: ShardedIndex, batch: Sequence[PendingUpdate]
    ) -> int:
        applied = 0
        for update in batch:
            if update.old_point is None:
                index.insert(update.oid, update.point, now=update.t)
            else:
                index.update(
                    update.oid, update.old_point, update.point, now=update.t
                )
            applied += 1
        return applied

    # -- rebalance -----------------------------------------------------------

    def position_map(self) -> Dict[int, Point]:
        """Acknowledged object positions (authoritative router state)."""
        if self._inline is not None:
            return self._inline.position_map()
        return {oid: pos for oid, (pos, _t) in self._positions.items()}

    def cross_move_counts(self) -> Dict[int, int]:
        """Cross-shard moves per object since birth (the churn signal)."""
        if self._inline is not None:
            return self._inline.cross_move_counts()
        return dict(self._move_counts)

    def apply_partition(self, partition) -> None:
        """Online rebalance on the worker pool.

        Retire the current worker generation, respawn one worker per new
        shard (spawned with ``category=BUILD`` so construction I/O lands
        where the inline engine's does), replay the acknowledged positions
        ledger in canonical order as one BUILD-scoped sub-batch per shard,
        then cut over.  A worker failure mid-rebuild degrades to the
        inline fallback, which rebuilds from the same ledger under the
        *new* partition -- the cutover completes either way, and no
        acknowledged state is lost.
        """
        if self._inline is not None:
            self._inline.apply_partition(partition)
            self.rebalances += 1
            return
        spec = get_spec(self.kind)
        routed = route_histories(partition, self._histories)
        self._retired_results.extend(
            led.run_result(self.kind) for led in self._ledgers
        )
        self.close()
        self._partition = partition
        self._ledgers = [
            ShardLedger(sid=sid, region=partition.region(sid))
            for sid in range(partition.n_shards)
        ]
        worker_cls = ProcessWorker if self.mode == "process" else ThreadWorker
        worker_extra = (
            {"transport": self._transport} if self.mode == "process" else {}
        )
        try:
            for sid in range(partition.n_shards):
                options = IndexOptions(
                    max_entries=self._max_entries,
                    ct_params=self._ct_params,
                    histories=routed[sid] if spec.needs_histories else None,
                    query_rate=self._query_rate,
                    adaptive=self._adaptive,
                    split=self._split,
                )
                self._workers.append(
                    worker_cls(
                        self.kind,
                        sid,
                        partition.region(sid),
                        options,
                        pool_frames=self._pool_frames,
                        page_size=self._page_size,
                        category=IOCategory.BUILD,
                        **worker_extra,
                    )
                )
            for sid, worker in enumerate(self._workers):
                resp = worker.result()
                if not resp.get("ok"):
                    raise WorkerFailure(
                        f"shard {sid} worker failed to rebuild: "
                        f"{resp.get('error')}"
                    )
                self._absorb(sid, resp)
            per_shard: Dict[int, List[tuple]] = {}
            new_owners: Dict[int, int] = {}
            for oid, pos, t in replay_order(self._positions):
                sid = partition.shard_for(oid, pos)
                per_shard.setdefault(sid, []).append(("insert", oid, pos, t))
                new_owners[oid] = sid
            out, failed = self._dispatch(
                {
                    sid: ("apply", IOCategory.BUILD, ops)
                    for sid, ops in per_shard.items()
                }
            )
            if failed:
                raise WorkerFailure(
                    f"shard worker(s) {sorted(failed)} died during rebalance"
                )
            for sid, resp in out.items():
                if not resp["ok"] or int(resp["applied"]) != len(
                    per_shard[sid]
                ):
                    raise WorkerFailure(
                        f"shard {sid} rebalance replay incomplete: "
                        f"{resp.get('error')}"
                    )
            self._owners = new_owners
            self.rebalances += 1
        except WorkerFailure:
            # _fall_back rebuilds inline from the ledger under the new
            # partition (already installed) and keeps counters monotone.
            self._fall_back()
            self.rebalances += 1

    # -- queries -------------------------------------------------------------

    def range_search(self, rect: Rect) -> List[Tuple[int, Point]]:
        """Concurrent fan-out; responses merge in shard-id order, so the
        result sequence is identical to the inline engine's."""
        if self._inline is not None:
            return self._inline.range_search(rect)
        category = self._stats.active_category
        sids = self.partition.intersecting(rect)
        t0 = perf_counter()
        out, failed = self._dispatch(
            {sid: ("query", category, rect.lo, rect.hi) for sid in sids}
        )
        per_sid: Dict[int, List[Tuple[int, Point]]] = {}
        for sid, resp in out.items():
            if not resp["ok"]:
                raise RuntimeError(
                    f"shard {sid} query failed: {resp.get('error')}"
                )
            matches = resp["matches"]
            per_sid[sid] = matches
            led = self._ledgers[sid]
            led.n_queries += 1
            led.result_count += len(matches)
        if failed:
            self._fall_back()
            assert self._inline is not None
            for sid in failed:
                shard = self._inline.shards[sid]
                t1 = perf_counter()
                matches = shard.index.range_search(rect)
                shard.wall_clock_s += perf_counter() - t1
                shard.n_queries += 1
                shard.result_count += len(matches)
                per_sid[sid] = matches
        results: List[Tuple[int, Point]] = []
        for sid in sids:
            results.extend(per_sid.get(sid, ()))
        registry = get_registry()
        if registry.enabled:
            registry.observe("parallel.merge.latency_s", perf_counter() - t0)
        self._note_op()
        return results

    # -- telemetry -----------------------------------------------------------

    @property
    def shards(self):
        """Parent-resident shards (thread mode, or post-fallback inline).

        Raises AttributeError in process mode, where shard structures live
        in worker processes -- probes go through :meth:`collect_tree_stats`.
        """
        if self._inline is not None:
            return self._inline.shards
        if self.mode == "thread" and self._workers:
            return [worker.shard for worker in self._workers]
        raise AttributeError(
            "process-mode shards live in worker processes; "
            "use collect_tree_stats()"
        )

    @property
    def _owner(self) -> Dict[int, int]:
        if self._inline is not None:
            return self._inline._owner
        return self._owners

    def owner_of(self, obj_id: int) -> Optional[int]:
        return self._owner.get(obj_id)

    def _collect_worker_stats(self) -> List[dict]:
        out, failed = self._dispatch(
            {sid: ("stats",) for sid in range(self.n_shards)}
        )
        if failed:
            raise WorkerFailure(
                f"shard worker(s) {sorted(failed)} died during stats probe"
            )
        return [out[sid] for sid in range(self.n_shards)]

    def collect_tree_stats(self) -> Dict[str, object]:
        """Structural probe: workers compute their own ``tree_stats``;
        the parent aggregates (``obs.treestats`` dispatches here)."""
        if self._inline is not None:
            return tree_stats(self._inline)
        try:
            responses = self._collect_worker_stats()
        except WorkerFailure:
            self._fall_back()
            assert self._inline is not None
            return tree_stats(self._inline)
        per_shard = [resp["tree"] for resp in responses]
        return aggregate_shard_stats(per_shard, self)

    @property
    def lazy_hits(self) -> int:
        if self._inline is not None:
            return self._inline.lazy_hits
        try:
            return sum(
                int(resp.get("lazy_hits", 0) or 0)
                for resp in self._collect_worker_stats()
            )
        except WorkerFailure:
            return 0

    @property
    def relocations(self) -> int:
        if self._inline is not None:
            return self._inline.relocations
        try:
            return sum(
                int(resp.get("relocations", 0) or 0)
                for resp in self._collect_worker_stats()
            )
        except WorkerFailure:
            return 0

    def shard_results(self) -> List[RunResult]:
        """Per-shard run ledgers, cumulative across a fallback cutover."""
        if self._inline is not None:
            inline_results = self._inline.shard_results()
            if self._prefallback is None:
                return inline_results
            return [
                merge_results([pre, post], kind=pre.kind)
                for pre, post in zip(self._prefallback, inline_results)
            ]
        return [led.run_result(self.kind) for led in self._ledgers]

    def merged_result(self) -> RunResult:
        """Cumulative across rebalance cutovers and fallback cutovers."""
        return merge_results(
            self._retired_results + self.shard_results(),
            kind=f"{self.kind}x{self.n_shards}",
        )

    def engine_dict(self) -> Dict[str, object]:
        """Engine telemetry for metrics/bench documents."""
        inline = self._inline
        if inline is not None:
            objects = [len(shard.index) for shard in inline.shards]
        else:
            objects = [led.objects for led in self._ledgers]
        out: Dict[str, object] = {
            "kind": self.kind,
            "partition": self.partition.to_dict(),
            "cross_shard_moves": self.cross_shard_moves
            + (inline.cross_shard_moves if inline is not None else 0),
            "cross_shard_move_failures": self.cross_shard_move_failures
            + (inline.cross_shard_move_failures if inline is not None else 0),
            "rebalances": self.rebalances
            + (inline.rebalances if inline is not None else 0),
            "objects": len(self),
            "parallel": {
                "mode": self.mode,
                "workers": self.n_shards,
                "worker_failures": self.worker_failures,
                "fallbacks": self.fallbacks,
                "fell_back": inline is not None,
            },
            "shards": [
                {
                    "sid": led.sid,
                    "region": [list(led.region.lo), list(led.region.hi)],
                    "objects": n_objects,
                    "run": result.to_dict(),
                }
                for led, result, n_objects in zip(
                    self._ledgers, self.shard_results(), objects
                )
            ],
        }
        if self._rebalancer is not None:
            out["rebalancer"] = self._rebalancer.to_dict()
        return out

    def __repr__(self) -> str:
        return (
            f"ParallelShardedIndex(kind={self.kind!r}, mode={self.mode!r}, "
            f"shards={self.n_shards}, objects={len(self)}, "
            f"fell_back={self._inline is not None})"
        )
