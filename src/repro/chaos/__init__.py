"""Deterministic chaos testing for the serving stack.

``repro chaos --seed S`` replays a fault schedule derived entirely from
the seed -- daemon SIGKILLs, connection resets, stalled reads, torn WAL
tails, CRC flips -- against a supervised live daemon under concurrent
writers, then audits the exactly-once invariants: no acked write lost, no
write double-applied, ``verify_index`` clean, replica staleness bounded,
and service restored within the restart budget.

* :mod:`repro.chaos.proxy` -- the in-process TCP fault proxy (RSTs and
  stalls without root or iptables);
* :mod:`repro.chaos.harness` -- the seeded schedule, the workload
  writers, the supervisor wiring, and the invariant audit.
"""

from repro.chaos.harness import (
    PROFILES,
    ChaosConfig,
    ChaosEvent,
    ChaosSchedule,
    format_chaos_report,
    run_chaos,
)
from repro.chaos.proxy import FaultProxy

__all__ = [
    "PROFILES",
    "ChaosConfig",
    "ChaosEvent",
    "ChaosSchedule",
    "FaultProxy",
    "format_chaos_report",
    "run_chaos",
]
