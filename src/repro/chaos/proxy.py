"""An in-process TCP fault proxy: resets and stalled reads on demand.

The chaos harness puts this between its clients and the serving daemon so
network faults are injectable without root, namespaces, or iptables:

* :meth:`FaultProxy.reset_all` -- abruptly closes every live link with
  ``SO_LINGER`` zero, so both peers see a hard RST mid-stream (the
  client's next read raises ``ConnectionResetError``, exactly like a
  dropped NAT entry or a peer crash).
* :meth:`FaultProxy.stall` -- pauses forwarding in both directions for a
  duration: bytes keep arriving at the proxy but nothing moves, so client
  reads hang until their socket timeout fires (the "server is up but the
  network is wedged" failure the retry deadline exists for).

The upstream address is *resolved per connection* through a callable --
typically a reader of the daemon's ready file -- because the supervised
daemon re-binds an ephemeral port on every restart.  While the daemon is
down the resolver fails or the dial is refused; the proxy closes the
client side immediately and the resilient client treats it as the
transport error it is.
"""

from __future__ import annotations

import select
import socket
import struct
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

#: Forwarding chunk size; small enough that a stall takes effect quickly.
_CHUNK = 65536


class FaultProxy:
    """A threaded TCP relay with injectable resets and stalls."""

    def __init__(
        self,
        upstream: Callable[[], Tuple[str, int]],
        *,
        host: str = "127.0.0.1",
        clock=time.monotonic,
    ) -> None:
        self._upstream = upstream
        self._host = host
        self._clock = clock
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._links: List[Tuple[socket.socket, socket.socket]] = []
        self._lock = threading.Lock()
        self._stall_until = 0.0
        self._stopping = False
        self.counters: Dict[str, int] = {
            "connections": 0,
            "upstream_failures": 0,
            "resets": 0,
            "stalls": 0,
        }
        self.address: Optional[Tuple[str, int]] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, 0))
        listener.listen(64)
        self._listener = listener
        self.address = listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="fault-proxy-accept", daemon=True
        )
        self._accept_thread.start()
        return self.address

    def stop(self) -> None:
        self._stopping = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            links = list(self._links)
            self._links.clear()
        for pair in links:
            for sock in pair:
                try:
                    sock.close()
                except OSError:
                    pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)

    # -- fault controls ----------------------------------------------------

    def reset_all(self) -> int:
        """RST every live link; returns how many were cut."""
        with self._lock:
            links = list(self._links)
            self._links.clear()
        for pair in links:
            for sock in pair:
                try:
                    # Linger-zero close sends RST instead of FIN: the peer
                    # sees ECONNRESET mid-read, not a clean EOF.
                    sock.setsockopt(
                        socket.SOL_SOCKET,
                        socket.SO_LINGER,
                        struct.pack("ii", 1, 0),
                    )
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass
        if links:
            self.counters["resets"] += len(links)
        return len(links)

    def stall(self, duration_s: float) -> None:
        """Freeze forwarding (both directions) for ``duration_s``."""
        self._stall_until = max(
            self._stall_until, self._clock() + duration_s
        )
        self.counters["stalls"] += 1

    @property
    def stalled(self) -> bool:
        return self._clock() < self._stall_until

    @property
    def live_links(self) -> int:
        with self._lock:
            return len(self._links)

    # -- relay internals ---------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping:
            try:
                client, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            self.counters["connections"] += 1
            try:
                server = socket.create_connection(
                    self._upstream(), timeout=2.0
                )
            except (OSError, ValueError):
                # Daemon down (mid-restart) or ready file unreadable: the
                # client gets an immediate close -- a transport error its
                # retry loop knows how to handle.
                self.counters["upstream_failures"] += 1
                try:
                    client.close()
                except OSError:
                    pass
                continue
            for sock in (client, server):
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                self._links.append((client, server))
            for src, dst in ((client, server), (server, client)):
                threading.Thread(
                    target=self._pump,
                    args=(src, dst),
                    name="fault-proxy-pump",
                    daemon=True,
                ).start()

    def _pump(self, src: socket.socket, dst: socket.socket) -> None:
        # Poll readability instead of parking in a blocking recv: a thread
        # blocked in recv holds the kernel file reference, which defers
        # the socket teardown -- and therefore the linger-zero RST that
        # :meth:`reset_all`'s close is supposed to fire immediately.
        try:
            while True:
                readable, _, _ = select.select([src], [], [], 0.05)
                if not readable:
                    continue
                data = src.recv(_CHUNK)
                if not data:
                    break
                # A stall holds received bytes here instead of forwarding:
                # the downstream peer's read blocks until its own timeout.
                while self._clock() < self._stall_until:
                    time.sleep(0.01)
                dst.sendall(data)
        except (OSError, ValueError):
            pass  # ValueError: select on a socket closed under us (fd -1)
        finally:
            self._drop(src, dst)

    def _drop(self, a: socket.socket, b: socket.socket) -> None:
        with self._lock:
            self._links = [
                pair for pair in self._links if a not in pair and b not in pair
            ]
        for sock in (a, b):
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "FaultProxy":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
