"""The deterministic chaos harness: seeded faults vs. a live daemon.

``repro chaos --seed S`` replays a fault schedule derived entirely from the
seed against a *supervised* serving daemon under concurrent writers, then
audits the wreckage for the exactly-once invariants:

1. **No acked write lost** -- after the final recovery, every object's
   last definitively-acknowledged position is present in the index
   (the acked-prefix guarantee, end to end through every crash).
2. **No write double-applied** -- no ``(client, rid)`` idempotency stamp
   appears in the surviving WAL under two different sequence numbers, and
   no object appears twice in the recovered index.
3. **Structural integrity** -- recovery's ``verify_index`` fsck is clean.
4. **Bounded staleness** -- replica reads sampled during the run reported
   staleness within the configured bound.
5. **Service recovery** -- the supervisor restored readiness within its
   restart budget; each crash's MTTR is reported.

Faults come in three flavours, composed per profile:

* ``kill``    -- SIGKILL the daemon mid-workload (no drain, no final
  checkpoint; the WAL tail is whatever fsync got there first);
* ``network`` -- connection RSTs and stalled reads through the
  :class:`~repro.chaos.proxy.FaultProxy` the writers connect through;
* ``storage`` -- crash debris appended to the WAL tail between death and
  restart (torn partial frame, CRC-mismatched frame) via the supervisor's
  ``on_crash`` hook -- modelling what a dying process leaves past the
  fsynced prefix, never destroying acked bytes.

Writers resolve *ambiguous* writes (deadline expired, breaker open,
retries exhausted -- the ack may or may not have landed) the only correct
way: by re-driving the **same** ``(client, rid)`` stamp until a
definitive response arrives.  A ``deduped`` ack means the original
applied; a fresh ack means it never did.  Either way the write lands
exactly once, which is the tentpole claim this harness exists to check.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.geometry import Rect
from repro.durability import (
    WalOp,
    append_corrupt_frame,
    append_torn_frame,
    recover,
    scan_directory,
    wal_directories,
)
from repro.resilience import (
    BreakerOpen,
    DeadlineExceeded,
    ResilientServeClient,
    RetryPolicy,
    Supervisor,
    SupervisorPolicy,
    file_ready_check,
)
from repro.serve.protocol import (
    ERR_RETRY_AFTER,
    ERR_SHUTTING_DOWN,
    ServeClient,
    ServeError,
)

PROFILES = ("kill", "network", "storage", "mixed")


# -- the seeded fault timeline -------------------------------------------------


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault: wait ``delay_s`` after the previous event, act.

    ``action`` is ``kill`` / ``reset`` / ``stall``; a kill may carry
    ``surgery`` (``torn_tail`` / ``crc_flip``) applied to the WAL tail by
    the supervisor's crash hook before the restart recovers through it.
    """

    action: str
    delay_s: float
    duration_s: float = 0.0
    surgery: Optional[str] = None
    nbytes: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "action": self.action,
            "delay_s": round(self.delay_s, 4),
            "duration_s": round(self.duration_s, 4),
            "surgery": self.surgery,
            "nbytes": self.nbytes,
        }

    def describe(self) -> str:
        if self.action == "stall":
            return f"stall({self.duration_s:.2f}s)@+{self.delay_s:.2f}s"
        if self.surgery:
            return f"kill+{self.surgery}@+{self.delay_s:.2f}s"
        return f"{self.action}@+{self.delay_s:.2f}s"


class ChaosSchedule:
    """The fault timeline of one run, derived entirely from the seed."""

    def __init__(
        self, events: List[ChaosEvent], *, seed: int, profile: str
    ) -> None:
        self.events = events
        self.seed = seed
        self.profile = profile

    @classmethod
    def generate(cls, seed: int, profile: str = "mixed") -> "ChaosSchedule":
        if profile not in PROFILES:
            raise ValueError(
                f"unknown chaos profile {profile!r}; choose from {PROFILES}"
            )
        rng = random.Random(seed)
        events: List[ChaosEvent] = []

        def kill(surgery: Optional[str] = None) -> ChaosEvent:
            return ChaosEvent(
                "kill",
                delay_s=rng.uniform(0.7, 1.4),
                surgery=surgery,
                nbytes=rng.randint(4, 24) if surgery == "torn_tail" else 0,
            )

        def reset() -> ChaosEvent:
            return ChaosEvent("reset", delay_s=rng.uniform(0.4, 1.0))

        def stall() -> ChaosEvent:
            return ChaosEvent(
                "stall",
                delay_s=rng.uniform(0.4, 1.0),
                duration_s=rng.uniform(0.3, 0.8),
            )

        if profile == "kill":
            events = [kill(), kill()]
        elif profile == "network":
            events = [reset(), stall(), reset()]
        elif profile == "storage":
            events = [kill("torn_tail"), kill("crc_flip")]
        else:  # mixed: one of everything
            events = [reset(), kill("torn_tail"), stall(), kill("crc_flip")]
        return cls(events, seed=seed, profile=profile)

    @property
    def kills(self) -> int:
        return sum(1 for e in self.events if e.action == "kill")

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "profile": self.profile,
            "events": [e.to_dict() for e in self.events],
        }

    def seed_line(self) -> str:
        faults = ", ".join(e.describe() for e in self.events) or "none"
        return (
            f"ChaosSchedule(seed={self.seed}, profile={self.profile!r}): "
            f"{faults}"
        )

    def __repr__(self) -> str:
        return self.seed_line()


# -- configuration -------------------------------------------------------------


@dataclass
class ChaosConfig:
    """Knobs of one chaos run (see the ``repro chaos`` command)."""

    run_dir: Path
    seed: int = 0
    profile: str = "mixed"
    writers: int = 3
    objects: int = 48
    min_ops: int = 150
    kind: str = "lazy"
    staleness_bound_s: float = 5.0
    settle_timeout_s: float = 45.0
    hard_timeout_s: float = 180.0
    refresh_interval: float = 0.1
    checkpoint_every: int = 200
    max_restarts: int = 8

    def __post_init__(self) -> None:
        self.run_dir = Path(self.run_dir)
        if self.writers < 1 or self.objects < self.writers:
            raise ValueError("need >= 1 writer and >= 1 object per writer")
        if self.min_ops < 1:
            raise ValueError("min_ops must be >= 1")


DOMAIN = Rect((0.0, 0.0), (1000.0, 1000.0))
_HISTORY = 8


# -- workload writers ----------------------------------------------------------


@dataclass
class _WriterResult:
    expected: Dict[int, Tuple[float, float]] = field(default_factory=dict)
    ops: int = 0
    ambiguous: int = 0
    resolved_deduped: int = 0
    resolved_fresh: int = 0
    unresolved: int = 0
    timed_out: bool = False
    staleness_samples: List[float] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    error: Optional[str] = None


_RETRYABLE_CODES = (ERR_RETRY_AFTER, ERR_SHUTTING_DOWN, None)


def _settle(
    client: ResilientServeClient,
    fields: Dict[str, object],
    rid: int,
    timeout_s: float,
) -> Optional[Dict[str, object]]:
    """Resolve an ambiguous write by re-driving its original stamp."""
    t_end = time.monotonic() + timeout_s
    while time.monotonic() < t_end:
        try:
            return client.request(
                "update",
                idempotent=False,
                deadline_s=6.0,
                client=client.client_id,
                rid=rid,
                **fields,
            )
        except ServeError as exc:
            if exc.code not in _RETRYABLE_CODES:
                raise  # a non-retryable reject is a harness bug, not chaos
        except (DeadlineExceeded, BreakerOpen, OSError):
            pass
        time.sleep(0.25)
    return None


def _writer_main(
    idx: int,
    cfg: ChaosConfig,
    proxy_addr: Tuple[str, int],
    stop_event: threading.Event,
    result: _WriterResult,
    deadline: float,
) -> None:
    oids = [o for o in range(cfg.objects) if o % cfg.writers == idx]
    walk = random.Random(cfg.seed * 7919 + idx)
    client = ResilientServeClient(
        proxy_addr[0],
        proxy_addr[1],
        client_id=f"cw{idx}",
        timeout=3.0,
        policy=RetryPolicy(
            max_attempts=10,
            deadline_s=8.0,
            backoff_base=0.02,
            backoff_cap=0.4,
        ),
        rng=random.Random(cfg.seed * 104729 + idx),
    )
    # Staleness probes go through their own client so the write client's
    # ack counters stay a pure write ledger.
    reader = ResilientServeClient(
        proxy_addr[0],
        proxy_addr[1],
        client_id=f"cr{idx}",
        timeout=3.0,
        policy=RetryPolicy(max_attempts=2, deadline_s=4.0, backoff_cap=0.2),
        rng=random.Random(cfg.seed * 999331 + idx),
    )
    try:
        n = 0
        while not (stop_event.is_set() and n >= cfg.min_ops):
            if time.monotonic() > deadline:
                result.timed_out = True
                return
            oid = oids[n % len(oids)]
            pos = (walk.uniform(1.0, 999.0), walk.uniform(1.0, 999.0))
            t = 1000.0 + n * 0.01
            try:
                response = client.update(oid, pos, t, deadline_s=8.0)
            except ServeError as exc:
                if exc.code not in _RETRYABLE_CODES:
                    raise
                response = None
            except (DeadlineExceeded, BreakerOpen, OSError):
                response = None
            if response is None:
                # Ambiguous: the original may or may not have applied.
                # Only a same-stamp retry can say -- and either answer
                # leaves the write applied exactly once.
                result.ambiguous += 1
                response = _settle(
                    client,
                    {"oid": oid, "point": list(pos), "t": t},
                    client.last_rid,
                    cfg.settle_timeout_s,
                )
                if response is None:
                    result.unresolved += 1
                    continue  # fate unknown: this oid stays unasserted
                if response.get("deduped"):
                    result.resolved_deduped += 1
                else:
                    result.resolved_fresh += 1
            result.expected[oid] = pos
            result.ops += 1
            n += 1
            if n % 25 == 0:
                try:
                    reply = reader.range(
                        DOMAIN.lo, DOMAIN.hi, deadline_s=4.0
                    )
                    staleness = reply.get("staleness")
                    if staleness and staleness.get("age_s") is not None:
                        result.staleness_samples.append(
                            float(staleness["age_s"])
                        )
                except (ServeError, DeadlineExceeded, BreakerOpen, OSError):
                    pass  # reads are best-effort probes under chaos
    except Exception as exc:  # pragma: no cover - surfaced in the report
        result.error = f"{type(exc).__name__}: {exc}"
    finally:
        result.counters = dict(client.counters)
        client.close()
        reader.close()


# -- harness orchestration -----------------------------------------------------


def _generate_trace(cfg: ChaosConfig) -> Path:
    """A tiny deterministic citysim trace to bulk-load the daemon from."""
    from repro.citysim import City, CitySimulator
    from repro.core.params import SimulationParams

    path = cfg.run_dir / "trace.csv"
    if path.exists():
        return path
    city = City.generate(seed=cfg.seed, n_buildings=12)
    params = SimulationParams(
        n_objects=cfg.objects,
        update_rate=max(cfg.objects / 20.0, 1.0),
        n_history=_HISTORY,
        n_updates=2,
        n_warmup_max=5,
    )
    trace = CitySimulator(city, params, seed=cfg.seed + 1).run()
    trace.save(path)
    return path


def _daemon_argv(cfg: ChaosConfig, trace: Path, ready: Path, wal: Path):
    return [
        sys.executable,
        "-m",
        "repro",
        "serve",
        str(trace),
        "--history",
        str(_HISTORY),
        "--kind",
        str(cfg.kind),
        "--port",
        "0",
        "--ready-file",
        str(ready),
        "--wal-dir",
        str(wal),
        # Acked => fsynced is what makes "zero lost acked writes" a fair
        # demand of a SIGKILL; weaker policies bound loss differently.
        "--sync-policy",
        "always",
        "--refresh",
        str(cfg.refresh_interval),
        "--checkpoint-every",
        str(cfg.checkpoint_every),
        "--queue-depth",
        "256",
    ]


def _read_ready(ready: Path) -> Tuple[str, int]:
    doc = json.loads(ready.read_text(encoding="utf-8"))
    return str(doc["host"]), int(doc["port"])


def _scan_duplicate_stamps(wal_dir: Path) -> Dict[str, List[int]]:
    """(client, rid) stamps logged under >1 distinct seq = double-applies.

    Batch records legitimately share one stamp across consecutive seqs in
    one append run; the harness drives single updates only, so any repeat
    here is a real double-apply.
    """
    seen: Dict[Tuple[str, int], set] = {}
    for sub in wal_directories(wal_dir):
        for record in scan_directory(sub).records:
            if record.op in WalOp.DATA and record.client is not None:
                seen.setdefault((record.client, record.rid), set()).add(
                    record.seq
                )
    return {
        f"{client}:{rid}": sorted(seqs)
        for (client, rid), seqs in seen.items()
        if len(seqs) > 1
    }


def run_chaos(cfg: ChaosConfig) -> Dict[str, object]:
    """One full chaos run -> the JSON-safe report (``report["ok"]`` is the
    verdict).  Deterministic given the seed: the fault schedule, workload
    positions, and retry jitter streams all derive from it."""
    t_start = time.monotonic()
    cfg.run_dir.mkdir(parents=True, exist_ok=True)
    schedule = ChaosSchedule.generate(cfg.seed, cfg.profile)
    trace = _generate_trace(cfg)
    ready = cfg.run_dir / "ready.json"
    wal_dir = cfg.run_dir / "wal"
    daemon_log = open(cfg.run_dir / "daemon.log", "ab")
    argv = _daemon_argv(cfg, trace, ready, wal_dir)
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src_root, env.get("PYTHONPATH")) if p
    )

    pending_surgery: deque = deque()
    surgery_applied: List[str] = []

    def on_crash(_restart: int) -> List[str]:
        done: List[str] = []
        while pending_surgery:
            kind, nbytes = pending_surgery.popleft()
            try:
                if kind == "torn_tail":
                    path = append_torn_frame(wal_dir, nbytes)
                    done.append(f"torn_tail({nbytes}B) -> {path.name}")
                else:
                    path = append_corrupt_frame(wal_dir)
                    done.append(f"crc_flip -> {path.name}")
            except FileNotFoundError as exc:
                done.append(f"{kind} skipped: {exc}")
        surgery_applied.extend(done)
        return done

    supervisor = Supervisor(
        lambda: subprocess.Popen(
            argv, env=env, stdout=daemon_log, stderr=daemon_log
        ),
        ready_check=file_ready_check(ready),
        policy=SupervisorPolicy(
            max_restarts=cfg.max_restarts,
            backoff_base=0.1,
            backoff_cap=1.0,
            ready_timeout=60.0,
        ),
        on_crash=on_crash,
    )
    fault_counts = {"kills": 0, "resets": 0, "stalls": 0}
    stop_event = threading.Event()
    proxy = None
    sup_thread = None
    server_stats: Optional[Dict[str, object]] = None
    try:
        supervisor.start()

        from repro.chaos.proxy import FaultProxy

        proxy = FaultProxy(lambda: _read_ready(ready))
        proxy_addr = proxy.start()

        sup_thread = threading.Thread(
            target=supervisor.run, name="chaos-supervisor", daemon=True
        )
        sup_thread.start()

        results = [_WriterResult() for _ in range(cfg.writers)]
        deadline = time.monotonic() + cfg.hard_timeout_s
        writer_threads = [
            threading.Thread(
                target=_writer_main,
                args=(i, cfg, proxy_addr, stop_event, results[i], deadline),
                name=f"chaos-writer-{i}",
                daemon=True,
            )
            for i in range(cfg.writers)
        ]
        for thread in writer_threads:
            thread.start()

        # Replay the seeded fault timeline against the live system.
        for event in schedule.events:
            time.sleep(event.delay_s)
            if event.action == "kill":
                if event.surgery:
                    # Queued *before* the kill so the crash hook -- which
                    # runs between death and restart -- finds it.
                    pending_surgery.append((event.surgery, event.nbytes))
                pid = supervisor.child_pid
                if pid is not None:
                    try:
                        os.kill(pid, signal.SIGKILL)
                        fault_counts["kills"] += 1
                    except (OSError, ProcessLookupError):
                        pass
            elif event.action == "reset":
                proxy.reset_all()
                fault_counts["resets"] += 1
            elif event.action == "stall":
                proxy.stall(event.duration_s)
                fault_counts["stalls"] += 1
        time.sleep(0.5)  # let the last fault's recovery begin
        stop_event.set()

        for thread in writer_threads:
            thread.join(timeout=cfg.hard_timeout_s)

        # Best-effort server-side counter snapshot before the drain.
        try:
            with ServeClient(*_read_ready(ready), timeout=5.0) as probe:
                server_stats = probe.stats()
        except (OSError, ValueError, ServeError):
            server_stats = None
    finally:
        stop_event.set()
        supervisor.stop()
        if sup_thread is not None:
            sup_thread.join(timeout=60.0)
        if proxy is not None:
            proxy.stop()
        daemon_log.close()

    # -- post-mortem audit -------------------------------------------------
    duplicates = _scan_duplicate_stamps(wal_dir)
    index, recovery_report = recover(wal_dir)
    matches = index.range_search(DOMAIN)
    positions: Dict[int, Tuple[float, float]] = {}
    duplicate_objects = 0
    for oid, pos in matches:
        if oid in positions:
            duplicate_objects += 1
        positions[int(oid)] = (float(pos[0]), float(pos[1]))
    lost: List[Dict[str, object]] = []
    for result in results:
        for oid, expected in result.expected.items():
            got = positions.get(oid)
            if got is None or abs(got[0] - expected[0]) > 1e-9 or abs(
                got[1] - expected[1]
            ) > 1e-9:
                lost.append({"oid": oid, "expected": expected, "got": got})
    staleness_samples = [
        s for result in results for s in result.staleness_samples
    ]
    staleness_max = max(staleness_samples) if staleness_samples else None
    unresolved = sum(r.unresolved for r in results)
    timed_out = any(r.timed_out for r in results)
    writer_errors = [r.error for r in results if r.error]

    invariants = {
        "acked_writes_lost": len(lost),
        "double_applied_stamps": len(duplicates),
        "duplicate_objects": duplicate_objects,
        "unresolved_ambiguous": unresolved,
        "verify_ok": bool(recovery_report.verify_ok),
        "staleness_max_s": staleness_max,
        "staleness_bound_s": cfg.staleness_bound_s,
        "staleness_ok": (
            staleness_max is None or staleness_max <= cfg.staleness_bound_s
        ),
        "supervisor_recovered": not supervisor.exhausted,
    }
    ok = (
        not lost
        and not duplicates
        and duplicate_objects == 0
        and unresolved == 0
        and bool(recovery_report.verify_ok)
        and bool(invariants["staleness_ok"])
        and not supervisor.exhausted
        and not timed_out
        and not writer_errors
    )

    def _sum(key: str) -> int:
        return sum(int(r.counters.get(key, 0)) for r in results)

    report: Dict[str, object] = {
        "ok": ok,
        "seed": cfg.seed,
        "profile": cfg.profile,
        "seed_line": schedule.seed_line(),
        "schedule": schedule.to_dict(),
        "workload": {
            "writers": cfg.writers,
            "objects": cfg.objects,
            "min_ops": cfg.min_ops,
            "ops_acked": sum(r.ops for r in results),
            "acked_first_try": _sum("acked_first_try"),
            "acked_retried": _sum("acked_retried"),
            "dedup_acks": _sum("dedup_acks"),
            "rejects": _sum("rejects"),
            "transport_errors": _sum("transport_errors"),
            "reconnects": _sum("reconnects"),
            "ambiguous": sum(r.ambiguous for r in results),
            "resolved_deduped": sum(r.resolved_deduped for r in results),
            "resolved_fresh": sum(r.resolved_fresh for r in results),
            "unresolved": unresolved,
            "timed_out": timed_out,
            "errors": writer_errors,
        },
        "faults": dict(fault_counts),
        "surgery": list(surgery_applied),
        "proxy": dict(proxy.counters) if proxy is not None else {},
        "supervisor": supervisor.to_dict(),
        "mttr": {
            "mean_s": supervisor.to_dict()["mttr_mean_s"],
            "max_s": supervisor.to_dict()["mttr_max_s"],
        },
        "server_stats": (
            {"service": server_stats.get("service")}
            if isinstance(server_stats, dict)
            else None
        ),
        "recovery": recovery_report.to_dict(),
        "invariants": invariants,
        "duplicates": duplicates,
        "lost": lost[:20],
        "wall_s": time.monotonic() - t_start,
    }
    return report


def format_chaos_report(report: Dict[str, object]) -> str:
    """The human summary ``repro chaos`` prints."""
    work = report["workload"]
    inv = report["invariants"]
    mttr = report["mttr"]
    lines = [
        report["seed_line"],
        (
            f"workload: {work['ops_acked']} acked "
            f"({work['acked_first_try']} first-try, "
            f"{work['acked_retried']} retried, "
            f"{work['dedup_acks']} deduped), "
            f"{work['ambiguous']} ambiguous "
            f"({work['resolved_deduped']} were applied, "
            f"{work['resolved_fresh']} were not)"
        ),
        (
            f"faults:   {report['faults']['kills']} kills, "
            f"{report['faults']['resets']} resets, "
            f"{report['faults']['stalls']} stalls"
            + (
                f"; surgery: {', '.join(report['surgery'])}"
                if report["surgery"]
                else ""
            )
        ),
        (
            f"recovery: {report['supervisor']['restarts']} restarts, "
            f"MTTR mean "
            + (
                f"{mttr['mean_s']:.2f}s max {mttr['max_s']:.2f}s"
                if mttr["mean_s"] is not None
                else "n/a"
            )
        ),
        (
            f"invariants: lost={inv['acked_writes_lost']} "
            f"double-applied={inv['double_applied_stamps']} "
            f"dup-objects={inv['duplicate_objects']} "
            f"verify={'ok' if inv['verify_ok'] else 'FAIL'} "
            f"staleness="
            + (
                f"{inv['staleness_max_s']:.3f}s"
                if inv["staleness_max_s"] is not None
                else "n/a"
            )
            + f"/{inv['staleness_bound_s']:g}s"
        ),
        f"verdict:  {'OK' if report['ok'] else 'FAILED'}",
    ]
    return "\n".join(lines)
