"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``simulate``   -- generate a city and record a movement trace to CSV;
* ``build``      -- mine qs-regions from a trace and report the CT-R-tree;
* ``experiment`` -- run one of the paper's tables/figures at a chosen scale;
* ``compare``    -- race the four index structures on a trace;
* ``recover``    -- rebuild an index from a ``--wal-dir`` directory after a
  crash (newest valid checkpoint + WAL tail replay);
* ``verify``     -- structurally verify (fsck) a snapshot file or a
  durability directory, optionally repairing recoverable violations;
* ``serve``      -- run the concurrent serving daemon (asyncio TCP, bounded
  writer queue, admission control, snapshot read replicas) on a trace's
  current positions until SIGINT/SIGTERM drains it; with ``--wal-dir`` a
  restart boots through crash recovery instead of the trace, and
  ``--supervise`` keeps a crashed daemon restarting within a budget;
* ``bench-serve``-- drive a daemon with the multi-process load generator at
  several client counts and print/dump p50/p99 latency, sustained ops/sec,
  reject rate, and result parity against an inline run;
* ``chaos``      -- replay a seeded fault schedule (SIGKILLs, connection
  resets, stalled reads, torn WAL tails) against a supervised live daemon
  and audit the exactly-once invariants;
* ``params``     -- print Table 1.

Every command is deterministic given ``--seed``.

``build`` and ``compare`` accept ``--metrics-out out.json``: it enables the
process-global :class:`~repro.obs.MetricsRegistry` for the run and dumps the
registry plus structural probes (tree shape, buffer-pool telemetry) as JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.citysim import City, CitySimulator, Trace
from repro.core.builder import CTRTreeBuilder
from repro.core.params import CTParams, SimulationParams, format_table1
from repro.engine import FlushPolicy, ShardedIndex, UpdateBuffer
from repro.obs import get_registry, set_enabled, tree_stats
from repro.storage import BufferPool, Pager
from repro.workload import (
    IndexKind,
    QueryWorkload,
    SimulationDriver,
    UpdateStream,
    make_index,
)

EXPERIMENTS = (
    "table1",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "ablations",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Change Tolerant Indexing for Constantly Evolving Data (ICDE 2005) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="generate a city movement trace")
    simulate.add_argument("output", help="trace CSV path")
    simulate.add_argument("--objects", type=int, default=1000)
    simulate.add_argument("--history", type=int, default=110)
    simulate.add_argument("--updates", type=int, default=20)
    simulate.add_argument("--buildings", type=int, default=71)
    simulate.add_argument("--seed", type=int, default=0)

    build = sub.add_parser("build", help="build a CT-R-tree from a trace")
    build.add_argument("trace", help="trace CSV path (from `repro simulate`)")
    build.add_argument("--history", type=int, default=110)
    build.add_argument("--query-rate", type=float, default=None,
                       help="anticipated query rate for Eq. 6 (default: update rate / 100)")
    build.add_argument("--city-size", type=float, default=1000.0)
    build.add_argument("--workers", type=int, default=0, metavar="N",
                       help="mine Phases 1-2 across N processes "
                            "(bit-identical to the serial build; 0 = serial)")
    build.add_argument("--save", metavar="SNAPSHOT",
                       help="write the built index to a JSON snapshot file")
    build.add_argument("--metrics-out", metavar="JSON",
                       help="enable metrics and dump the registry, build phase "
                            "timings, and tree-shape stats to this JSON file")

    experiment = sub.add_parser("experiment", help="run a paper table/figure")
    experiment.add_argument("name", choices=EXPERIMENTS)
    experiment.add_argument("--scale", default="small",
                            choices=("smoke", "small", "medium", "paper"))
    experiment.add_argument("--seed", type=int, default=0)

    compare = sub.add_parser("compare", help="race the four indexes on a trace")
    compare.add_argument("trace", help="trace CSV path")
    compare.add_argument("--index", action="append", default=None,
                         choices=IndexKind.ALL, metavar="KIND", dest="index",
                         help="race only this index kind (repeatable; "
                              f"choices: {', '.join(IndexKind.ALL)}; "
                              "default: all of them)")
    compare.add_argument("--history", type=int, default=110)
    compare.add_argument("--ratio", type=float, default=100.0,
                         help="update/query ratio (default: the Table-1 baseline)")
    compare.add_argument("--city-size", type=float, default=1000.0)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--buffer-pool", type=int, default=0, metavar="FRAMES",
                         help="run every index over an LRU buffer pool of this "
                              "many frames (0 = paper accounting, no cache)")
    compare.add_argument("--shards", type=int, default=1, metavar="N",
                         help="space-partition the domain into N shards, one "
                              "pager + index per shard (1 = unsharded)")
    compare.add_argument("--batch", type=int, default=0, metavar="SIZE",
                         help="buffer updates in a coalescing memtable and "
                              "group-apply every SIZE distinct objects "
                              "(flushed before each query; 0 = unbatched)")
    compare.add_argument("--metrics-out", metavar="JSON",
                         help="enable metrics and dump the registry, per-index "
                              "tree stats, run ledgers, and buffer-pool "
                              "telemetry to this JSON file")
    compare.add_argument("--wal-dir", metavar="DIR", default=None,
                         help="write-ahead-log every update before applying it; "
                              "each index gets DIR/<kind>/ with its own WAL "
                              "segments and checkpoints (sharded runs log "
                              "per shard under DIR/<kind>/shard-NN/)")
    compare.add_argument("--sync-policy", default="group:8",
                         metavar="always|group:N|onflush",
                         help="WAL sync policy: fsync every append, group-"
                              "commit every N appends, or only at buffer "
                              "flushes (default: group:8)")
    compare.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                         help="take an automatic checkpoint every N applied "
                              "updates (0 = only the post-load baseline and "
                              "the final checkpoint)")
    compare.add_argument("--self-heal", action="store_true",
                         help="wrap every index in the health layer's self-"
                              "healing wrapper: drift is monitored online and "
                              "a DEGRADED index is rebuilt in the background "
                              "and atomically cut over (not with --shards)")
    compare.add_argument("--drift-window", type=int, default=200, metavar="N",
                         help="updates per drift-monitor window when "
                              "--self-heal is on (default: 200)")
    compare.add_argument("--parallel", default="off",
                         choices=("off", "thread", "process"),
                         help="run the sharded engine on a worker pool, one "
                              "worker per shard (process = real parallelism, "
                              "thread = low-overhead smoke mode; implies "
                              "sharding, see --workers; not with --wal-dir "
                              "or --self-heal)")
    compare.add_argument("--workers", type=int, default=0, metavar="N",
                         help="worker count for --parallel; each worker owns "
                              "one shard, so this doubles as the shard count "
                              "when --shards is not given (they must agree "
                              "when both are)")
    compare.add_argument("--partitioner", default="grid",
                         choices=("grid", "density", "speed"),
                         help="shard partitioning strategy: equal-width grid "
                              "slabs, density-balanced boundaries at object-"
                              "count quantiles, or speed-based (fast movers "
                              "routed to a dedicated churn shard); needs "
                              "--shards or --parallel (default: grid)")
    compare.add_argument("--rebalance", action="store_true",
                         help="enable online shard rebalancing: hot shards "
                              "are detected from per-shard I/O ledgers and "
                              "the partition is re-cut with an atomic "
                              "cutover (needs --shards or --parallel; not "
                              "with --wal-dir)")
    compare.add_argument("--lsm-memtable", type=int, default=None, metavar="N",
                         help="LSM-R-tree: flush the memtable every N distinct "
                              "objects (default: 256)")
    compare.add_argument("--lsm-size-ratio", type=int, default=None, metavar="T",
                         help="LSM-R-tree: size-tiered compaction ratio "
                              "(default: 4)")
    compare.add_argument("--lsm-max-runs", type=int, default=None, metavar="N",
                         help="LSM-R-tree: compact whenever more than N runs "
                              "exist (default: 8)")

    recover = sub.add_parser(
        "recover", help="recover an index from a WAL directory after a crash"
    )
    recover.add_argument("dir", help="durability directory (as given to --wal-dir, "
                                     "plus the index kind subdirectory)")
    recover.add_argument("--save", metavar="SNAPSHOT",
                         help="write the recovered index to a JSON snapshot file")
    recover.add_argument("--no-repair", action="store_true",
                         help="do not trim torn tails or delete covered "
                              "segments/stale tmp files after replay")

    verify = sub.add_parser(
        "verify", help="structurally verify (fsck) an index snapshot or WAL dir"
    )
    verify.add_argument("target", help="JSON snapshot file, or a durability "
                                       "directory (recovered first, then "
                                       "verified)")
    verify.add_argument("--repair", action="store_true",
                        help="repair recoverable violations (stale hash "
                             "entries, escaped MBRs, stale fill counters) "
                             "and verify again")
    verify.add_argument("--json", metavar="OUT", default=None,
                        help="write the verify/repair reports to this JSON file")

    report = sub.add_parser("report", help="run every experiment, write one markdown report")
    report.add_argument("-o", "--output", default="report.md")
    report.add_argument("--scale", default="smoke",
                        choices=("smoke", "small", "medium", "paper"))
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--sections", nargs="*", default=None,
                        help="subset of sections (default: all)")

    serve = sub.add_parser(
        "serve", help="run the concurrent serving daemon on a trace"
    )
    serve.add_argument("trace", help="trace CSV path (current positions are "
                                     "bulk-loaded, then the daemon serves)")
    serve.add_argument("--history", type=int, default=110)
    serve.add_argument("--kind", default=IndexKind.LAZY, choices=IndexKind.ALL)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (default 0 = ephemeral; see --ready-file)")
    serve.add_argument("--ready-file", metavar="JSON", default=None,
                       help="atomically write {host, port, pid} here once the "
                            "daemon is accepting (for scripts using --port 0)")
    serve.add_argument("--queue-depth", type=int, default=1024,
                       help="bound on unapplied acked writes; a full queue "
                            "rejects with RETRY_AFTER (default: 1024)")
    serve.add_argument("--write-batch", type=int, default=64,
                       help="max ops the writer applies per batch (default: 64)")
    serve.add_argument("--rate", type=float, default=0.0,
                       help="per-client admitted ops/s token-bucket rate "
                            "(default: 0 = admission off)")
    serve.add_argument("--burst", type=float, default=0.0,
                       help="token-bucket burst size (default: one second's "
                            "worth of --rate)")
    serve.add_argument("--replicas", type=int, default=1,
                       help="snapshot read replicas (0 = every read is a "
                            "fresh read on the writer; default: 1)")
    serve.add_argument("--refresh", type=float, default=0.25,
                       help="replica refresh interval in seconds; bounds "
                            "reported staleness (default: 0.25)")
    serve.add_argument("--shards", type=int, default=1,
                       help="space-partition the primary into N shards "
                            "(default: 1)")
    serve.add_argument("--wal-dir", metavar="DIR", default=None,
                       help="WAL-log every write before acking it; crash "
                            "recovery replays exactly the acked prefix")
    serve.add_argument("--sync-policy", default="group:8",
                       metavar="always|group:N|onflush")
    serve.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                       help="checkpoint every N applied updates at quiescent "
                            "points (0 = baseline + final only)")
    serve.add_argument("--city-size", type=float, default=1000.0)
    serve.add_argument("--supervise", action="store_true",
                       help="run the daemon as a supervised child: crashes "
                            "restart it through WAL recovery within a budget "
                            "(requires --wal-dir and --ready-file)")
    serve.add_argument("--max-restarts", type=int, default=5,
                       help="supervisor restart budget (default: 5)")
    serve.add_argument("--restart-backoff", type=float, default=0.2,
                       help="supervisor backoff base in seconds, doubled per "
                            "consecutive restart (default: 0.2)")
    serve.add_argument("--ready-timeout", type=float, default=30.0,
                       help="seconds the supervisor waits for readiness "
                            "after each (re)spawn (default: 30)")
    serve.add_argument("--fault-schedule", metavar="JSON", default=None,
                       help="arm the WAL with a durability FaultSchedule "
                            "(inline JSON or a file path; a file is consumed "
                            "one-shot so a supervised restart comes up "
                            "unarmed)")

    bench_serve = sub.add_parser(
        "bench-serve", help="load-generate against the daemon, report p50/p99"
    )
    bench_serve.add_argument("trace", help="trace CSV path")
    bench_serve.add_argument("--history", type=int, default=110)
    bench_serve.add_argument("--kind", default=IndexKind.LAZY,
                             choices=IndexKind.ALL)
    bench_serve.add_argument("--clients", default="1,8,32",
                             help="comma-separated client counts; one daemon "
                                  "run each (default: 1,8,32)")
    bench_serve.add_argument("--mode", default="process",
                             choices=("process", "thread"),
                             help="loadgen client isolation (default: process)")
    bench_serve.add_argument("--queue-depth", type=int, default=1024)
    bench_serve.add_argument("--write-batch", type=int, default=64)
    bench_serve.add_argument("--rate", type=float, default=0.0)
    bench_serve.add_argument("--replicas", type=int, default=1)
    bench_serve.add_argument("--refresh", type=float, default=0.25)
    bench_serve.add_argument("--shards", type=int, default=1)
    bench_serve.add_argument("--ratio", type=float, default=100.0,
                             help="update/query ratio in the replayed "
                                  "workload (default: 100)")
    bench_serve.add_argument("--seed", type=int, default=0)
    bench_serve.add_argument("--city-size", type=float, default=1000.0)
    bench_serve.add_argument("--out", metavar="JSON", default=None,
                             help="dump the BENCH serve section to this file")

    chaos = sub.add_parser(
        "chaos", help="seeded fault schedule vs a live supervised daemon"
    )
    chaos.add_argument("--seed", type=int, default=0,
                       help="derives the fault schedule, workload, and retry "
                            "jitter (default: 0)")
    chaos.add_argument("--profile", default="mixed",
                       choices=("kill", "network", "storage", "mixed"),
                       help="fault mix: daemon SIGKILLs, connection resets + "
                            "stalls, crash + WAL-tail debris, or one of "
                            "everything (default: mixed)")
    chaos.add_argument("--writers", type=int, default=3,
                       help="concurrent writer clients (default: 3)")
    chaos.add_argument("--objects", type=int, default=48,
                       help="moving objects in the workload (default: 48)")
    chaos.add_argument("--min-ops", type=int, default=150,
                       help="acked writes per writer before the run may end "
                            "(default: 150)")
    chaos.add_argument("--kind", default=IndexKind.LAZY,
                       choices=IndexKind.ALL)
    chaos.add_argument("--staleness-bound", type=float, default=5.0,
                       help="max tolerated replica staleness age in seconds "
                            "(default: 5)")
    chaos.add_argument("--run-dir", metavar="DIR", default=None,
                       help="working directory (default: a fresh temp dir, "
                            "removed when the run passes)")
    chaos.add_argument("--out", metavar="JSON", default=None,
                       help="write the full chaos report here")
    chaos.add_argument("--keep", action="store_true",
                       help="keep the run directory even on success")

    sub.add_parser("params", help="print Table 1")
    return parser


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.serve import ShutdownRequested, handle_signals

    city = City.generate(seed=args.seed, n_buildings=args.buildings)
    params = SimulationParams(
        n_objects=args.objects,
        update_rate=args.objects / 20.0,
        n_history=args.history,
        n_updates=args.updates,
        n_warmup_max=60,
    )
    simulator = CitySimulator(city, params, seed=args.seed + 1)
    try:
        with handle_signals():
            trace = simulator.run()
            trace.save(args.output)  # atomic: no torn CSV on interrupt
    except ShutdownRequested as exc:
        print(f"interrupted ({exc}): no trace written", file=sys.stderr)
        return 130
    print(f"{city}")
    print(f"recorded {trace} -> {args.output}")
    return 0


def _domain(size: float):
    from repro.core.geometry import Rect

    return Rect((0.0, 0.0), (size, size))


def cmd_build(args: argparse.Namespace) -> int:
    if args.metrics_out:
        set_enabled(True).reset()
    trace = Trace.load(args.trace)
    histories = trace.histories(args.history)
    current = trace.current_positions(args.history)
    stream = UpdateStream(trace, args.history)
    query_rate = (
        args.query_rate if args.query_rate is not None else max(stream.rate, 1.0) / 100.0
    )
    pager = Pager()
    builder = CTRTreeBuilder(
        CTParams(), query_rate=query_rate, workers=args.workers
    )
    tree, report = builder.build(pager, _domain(args.city_size), histories, current)
    if args.workers and args.workers > 1:
        print(f"parallel build: {args.workers} workers (bit-identical)")
    print(f"objects:        {report.object_count}")
    print(f"phase 1 regions:{report.phase1_regions:>8}")
    print(f"phase 2 regions:{report.phase2_regions:>8}")
    print(f"phase 3 regions:{report.phase3_regions:>8}")
    print(f"build I/Os:     {report.build_ios:>8}")
    print(f"index:          {tree}")
    if args.save:
        from repro.storage.snapshot import save_ctrtree

        path = save_ctrtree(tree, args.save)
        print(f"snapshot:       {path}")
    if args.metrics_out:
        if not _write_metrics(
            args.metrics_out,
            {
                "command": "build",
                "build": report.to_dict(),
                "tree_stats": tree_stats(tree),
                "pager": pager.metrics_dict(),
            },
        ):
            return 1
    return 0


def _write_metrics(path: str, payload: dict) -> bool:
    """Dump ``payload`` plus the global registry to ``path`` as JSON, then
    switch the registry back off so library state doesn't leak past the
    command (matters for in-process callers such as the tests)."""
    payload["registry"] = get_registry().to_dict()
    try:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    except OSError as exc:
        set_enabled(False)
        print(f"cannot write --metrics-out file: {exc}", file=sys.stderr)
        return False
    set_enabled(False)
    print(f"metrics:        {path}")
    return True


def cmd_experiment(args: argparse.Namespace) -> int:
    if args.name == "table1":
        from repro.experiments import table1

        print(table1.run("paper"))
        return 0
    if args.name == "ablations":
        from repro.experiments import ablations

        for result in ablations.run(args.scale, args.seed).values():
            print(result)
            print()
        return 0
    if args.name == "figure12":
        from repro.experiments import figure12

        for result in figure12.run(args.scale, args.seed).values():
            print(result)
            print()
        return 0
    import importlib

    module = importlib.import_module(f"repro.experiments.{args.name}")
    print(module.run(args.scale, args.seed))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.serve import (
        ShutdownRequested,
        describe_teardown,
        handle_signals,
        teardown_run,
    )

    if args.metrics_out:
        set_enabled(True).reset()
    trace = Trace.load(args.trace)
    domain = _domain(args.city_size)
    histories = trace.histories(args.history)
    current = trace.current_positions(args.history)
    load_time = trace.load_time(args.history)
    stream = UpdateStream(trace, args.history)
    if len(stream) == 0:
        print("trace has no online samples past the history length", file=sys.stderr)
        return 1
    query_rate = stream.rate / args.ratio
    t_start, t_end = trace.online_span(args.history)
    queries = QueryWorkload(domain, query_rate, 0.001, seed=args.seed).between(
        t_start, t_end
    )
    pooled = args.buffer_pool > 0
    sharded = args.shards > 1
    batched = args.batch > 0
    walled = args.wal_dir is not None
    healing = getattr(args, "self_heal", False)
    parallel_mode = getattr(args, "parallel", "off")
    parallel = parallel_mode != "off"
    if healing and sharded:
        print("--self-heal does not compose with --shards (the wrapper "
              "rebuilds one structure; shard routers manage their own)",
              file=sys.stderr)
        return 1
    if args.workers and not parallel:
        print("--workers needs --parallel thread|process", file=sys.stderr)
        return 1
    partitioner = getattr(args, "partitioner", "grid")
    rebalance = getattr(args, "rebalance", False)
    if (partitioner != "grid" or rebalance) and not (sharded or parallel):
        print("--partitioner/--rebalance need --shards N or --parallel "
              "(they configure the shard router)", file=sys.stderr)
        return 1
    if rebalance and walled:
        print("--rebalance does not compose with --wal-dir (the per-shard "
              "WAL map is fixed when durability attaches; rebalancing "
              "re-cuts it mid-run)", file=sys.stderr)
        return 1
    n_workers = 0
    if parallel:
        if walled:
            print("--parallel does not compose with --wal-dir (WAL append "
                  "order assumes a single applying actor; workers apply "
                  "concurrently)", file=sys.stderr)
            return 1
        if healing:
            print("--parallel does not compose with --self-heal (the "
                  "wrapper rebuilds one structure; the worker pool degrades "
                  "to inline on its own)", file=sys.stderr)
            return 1
        if args.workers > 1 and sharded and args.workers != args.shards:
            print("--workers must equal --shards (each worker owns exactly "
                  "one shard)", file=sys.stderr)
            return 1
        n_workers = args.workers if args.workers > 1 else args.shards
        if n_workers < 2:
            print("--parallel needs --workers N (or --shards N) with N >= 2",
                  file=sys.stderr)
            return 1
        sharded = False  # the parallel router replaces the inline one
    kinds = tuple(dict.fromkeys(args.index)) if args.index else IndexKind.ALL
    print(f"{len(stream)} updates, {len(queries)} queries (ratio {args.ratio:g})")
    if pooled:
        print(f"buffer pool: {args.buffer_pool} frames (LRU, write-back)")
    if sharded or batched or parallel:
        parts = []
        if sharded:
            parts.append(f"{args.shards} shards ({partitioner} partition)")
        if parallel:
            parts.append(f"parallel {parallel_mode} "
                         f"({n_workers} workers, one shard each, "
                         f"{partitioner} partition)")
        if rebalance:
            parts.append("online rebalance (hot-shard detection)")
        if batched:
            parts.append(f"batch {args.batch} (coalescing update buffer)")
        print(f"engine: {', '.join(parts)}")
    if walled:
        line = f"durability: WAL under {args.wal_dir} (sync {args.sync_policy}"
        if args.checkpoint_every:
            line += f", checkpoint every {args.checkpoint_every} updates"
        print(line + ")")
    if healing:
        print(f"health: self-healing on (drift window {args.drift_window})")
    print()
    header = f"{'index':<12} {'update I/O':>12} {'query I/O':>10} {'total':>10}"
    if pooled:
        header += f" {'hit rate':>9}"
    if batched:
        header += f" {'coalesced':>10}"
    if healing:
        header += f" {'health':>14}"
    print(header)
    print("-" * len(header))
    partition = None
    if (sharded or parallel) and partitioner != "grid":
        from repro.engine import make_partition

        partition = make_partition(
            partitioner,
            domain,
            n_workers if parallel else args.shards,
            positions=current,
            histories=histories,
        )
    per_index: dict = {}
    index = buffer = durability = closer = None
    try:
        with handle_signals():
            for kind in kinds:
                closer = buffer = durability = None
                rebalancer = None
                if rebalance:
                    from repro.engine import RebalancePolicy, ShardRebalancer

                    rebalancer = ShardRebalancer(RebalancePolicy(
                        strategy="speed" if partitioner == "speed" else "density"
                    ))
                if parallel:
                    from repro.parallel import ParallelShardedIndex

                    index = ParallelShardedIndex(
                        kind,
                        domain,
                        n_workers,
                        mode=parallel_mode,
                        histories=histories if kind == IndexKind.CT else None,
                        query_rate=query_rate,
                        pool_frames=args.buffer_pool,
                        partition=partition,
                        rebalancer=rebalancer,
                    )
                    closer = index
                    store = index.pager
                    store_metrics = store.metrics_dict
                elif sharded:
                    index = ShardedIndex(
                        kind,
                        domain,
                        args.shards,
                        histories=histories if kind == IndexKind.CT else None,
                        query_rate=query_rate,
                        pool_frames=args.buffer_pool,
                        partition=partition,
                        rebalancer=rebalancer,
                    )
                    store = index.pager
                    store_metrics = store.metrics_dict
                else:
                    pager = Pager()
                    store = (
                        BufferPool(pager, capacity=args.buffer_pool)
                        if pooled
                        else pager
                    )
                    index = make_index(
                        kind, store, domain,
                        histories=histories, query_rate=query_rate,
                        lsm_memtable=args.lsm_memtable,
                        lsm_size_ratio=args.lsm_size_ratio,
                        lsm_max_runs=args.lsm_max_runs,
                    )
                    store_metrics = pager.metrics_dict
                buffer = (
                    UpdateBuffer(FlushPolicy(batch_size=args.batch))
                    if batched
                    else None
                )
                if walled:
                    from repro.durability import DurabilityManager

                    durability = DurabilityManager(
                        f"{args.wal_dir}/{kind}",
                        sync=args.sync_policy,
                        checkpoint_every=args.checkpoint_every,
                    )
                wrapper = None
                if healing:
                    from repro.engine import IndexOptions
                    from repro.health import DriftMonitor, SelfHealingIndex

                    wrapper = SelfHealingIndex(
                        index,
                        kind,
                        domain,
                        monitor=DriftMonitor(window=args.drift_window),
                        options=IndexOptions(
                            histories=histories if kind == IndexKind.CT else None,
                            query_rate=query_rate,
                        ),
                        durability=durability,
                    )
                    index = wrapper
                driver = SimulationDriver(
                    index, store, kind, update_buffer=buffer, durability=durability
                )
                driver.load(current, now=load_time)
                result = driver.run(stream, queries)
                # Same drain the daemon's graceful shutdown performs: flush
                # any coalescing buffer, take the final checkpoint (the WAL
                # tail past it is empty, not torn), close the WAL segments.
                teardown_run(index=index, buffer=buffer, durability=durability)
                line = (
                    f"{IndexKind.LABELS[kind]:<12} {result.update_ios:>12,} "
                    f"{result.query_ios:>10,} {result.total_ios:>10,}"
                )
                if pooled:
                    line += f" {store.hit_rate:>8.1%}"
                if batched:
                    line += f" {result.n_coalesced:>10,}"
                if wrapper is not None:
                    line += (
                        f" {wrapper.health_state:>9}"
                        f" x{wrapper.cutovers:<3}"
                    )
                print(line)
                if args.metrics_out:
                    per_index[kind] = {
                        "run": result.to_dict(),
                        "tree_stats": tree_stats(index),
                        "pager": store_metrics(),
                        "buffer_pool": (
                            store.metrics_dict()
                            if pooled and not sharded and not parallel
                            else None
                        ),
                        "engine": {
                            "shards": n_workers if parallel else args.shards,
                            "batch": args.batch,
                            "parallel": parallel_mode,
                            "sharded": (
                                index.engine_dict()
                                if sharded or parallel
                                else None
                            ),
                            "buffer": (
                                buffer.stats.to_dict()
                                if buffer is not None
                                else None
                            ),
                        },
                        "durability": (
                            durability.metrics_dict()
                            if durability is not None
                            else None
                        ),
                        "health": (
                            wrapper.health_dict() if wrapper is not None else None
                        ),
                    }
                if closer is not None:
                    closer.close()
                    closer = None
                buffer = durability = None
    except ShutdownRequested as exc:
        # The daemon's drain, on the batch path: flush the buffer, final
        # checkpoint, close the WAL, tear down workers and their /dev/shm
        # mailboxes -- an interrupted run leaks nothing.
        actions = teardown_run(
            index=index, buffer=buffer, durability=durability, closer=closer
        )
        print(describe_teardown(actions, str(exc)), file=sys.stderr)
        set_enabled(False)
        return 130
    except BaseException:
        # Crash path: still release workers/shm and WAL file handles, but
        # take no checkpoint -- recovery semantics stay those of a crash.
        teardown_run(
            index=index, buffer=buffer, durability=durability,
            closer=closer, checkpoint=False,
        )
        raise
    if args.metrics_out:
        if not _write_metrics(
            args.metrics_out,
            {
                "command": "compare",
                "buffer_pool_frames": args.buffer_pool,
                "shards": args.shards,
                "partitioner": partitioner,
                "rebalance": rebalance,
                "parallel": parallel_mode,
                "workers": n_workers,
                "batch": args.batch,
                "self_heal": healing,
                "drift_window": args.drift_window if healing else None,
                "wal_dir": args.wal_dir,
                "sync_policy": args.sync_policy if walled else None,
                "checkpoint_every": args.checkpoint_every if walled else None,
                "n_updates": len(stream),
                "n_queries": len(queries),
                "indexes": per_index,
            },
        ):
            return 1
    return 0


def cmd_recover(args: argparse.Namespace) -> int:
    from repro.durability import RecoveryError, recover

    try:
        index, report = recover(args.dir, repair=not args.no_repair)
    except RecoveryError as exc:
        print(f"recovery failed: {exc}", file=sys.stderr)
        return 1
    print(f"checkpoint:     #{report.checkpoint_ordinal} "
          f"(kind {report.kind or '?'}, covers seq {report.checkpoint_seq})")
    print(f"replayed:       {report.records_replayed} records")
    print(f"skipped:        {report.records_skipped} records")
    print(f"truncated:      {report.segments_truncated} segments"
          + (f", {report.tmp_files_removed} tmp files"
             if report.tmp_files_removed else ""))
    if report.torn_tail:
        print("torn tail:      yes (trimmed)" if not args.no_repair
              else "torn tail:      yes")
    if report.corrupt_segments:
        print(f"corrupt:        {report.corrupt_segments} segments")
    if report.missing_segments:
        print(f"missing:        segments {report.missing_segments}")
    if report.gap_at_seq:
        print(f"ledger ends:    seq {report.gap_at_seq - 1}")
    if report.verify_ok is not None:
        print(f"verify:         {'ok' if report.verify_ok else 'FAILED'}"
              + (f" ({len(report.verify_violations)} violations)"
                 if not report.verify_ok else ""))
    print(f"replay time:    {report.replay_s:.3f}s")
    print(f"objects:        {len(index)}")
    print(f"index:          {index!r}")
    if args.save:
        from repro.storage.snapshot import save_index

        path = save_index(index, args.save)
        print(f"snapshot:       {path}")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    import os

    from repro.health import repair_index, verify_index

    if os.path.isdir(args.target):
        from repro.durability import RecoveryError, recover

        try:
            # The verifier runs below; recovery need not run it too.
            index, _report = recover(args.target, verify=False)
        except RecoveryError as exc:
            print(f"recovery failed: {exc}", file=sys.stderr)
            return 1
        print(f"recovered:      {index!r}")
    else:
        from repro.storage.snapshot import SnapshotError, load_index

        try:
            index = load_index(args.target)
        except (OSError, SnapshotError) as exc:
            print(f"cannot load snapshot: {exc}", file=sys.stderr)
            return 1
        print(f"loaded:         {index!r}")

    report = verify_index(index)
    print(f"verify:         {report.summary()}")
    for violation in report.violations:
        print(f"  {violation}")
    payload: dict = {"command": "verify", "target": args.target,
                     "verify": report.to_dict(), "repair": None,
                     "reverify": None}
    if args.repair and not report.ok:
        repair = repair_index(index)
        print(f"repair:         {repair.total} fixes "
              f"({json.dumps(repair.to_dict())})")
        report = verify_index(index)
        print(f"re-verify:      {report.summary()}")
        for violation in report.violations:
            print(f"  {violation}")
        payload["repair"] = repair.to_dict()
        payload["reverify"] = report.to_dict()
    if args.json:
        try:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
                fh.write("\n")
        except OSError as exc:
            print(f"cannot write --json file: {exc}", file=sys.stderr)
            return 1
        print(f"report:         {args.json}")
    return 0 if report.ok else 1


def _load_fault_injector(spec: str):
    """``--fault-schedule``: inline JSON or a file path (consumed one-shot).

    The file form exists for the supervised daemon: the supervisor's
    restarted child re-reads its argv, and deleting the file after arming
    makes the injected crash a one-time event instead of a crash loop.
    """
    import os

    from repro.durability import FaultSchedule

    text = spec
    if os.path.isfile(spec):
        with open(spec, "r", encoding="utf-8") as fh:
            text = fh.read()
        try:
            os.unlink(spec)
        except OSError:
            pass
    schedule = FaultSchedule.from_json(text)
    print(f"armed: {schedule.seed_line()}", flush=True)
    return schedule.injector()


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import os

    from repro.serve import EngineService, ServeConfig, ServeServer
    from repro.serve.bench import build_primary

    if args.supervise:
        return _cmd_serve_supervised(args)

    domain = _domain(args.city_size)
    fault = (
        _load_fault_injector(args.fault_schedule)
        if args.fault_schedule
        else None
    )
    durability = None
    if args.wal_dir:
        from repro.durability import DurabilityManager, list_checkpoints

        has_checkpoint = bool(list_checkpoints(args.wal_dir))
    else:
        has_checkpoint = False

    recovery_report = None
    if has_checkpoint:
        # A restart: the WAL directory -- not the trace -- is the truth.
        # Re-loading the trace here would take a fresh baseline checkpoint
        # covering records never applied, silently dropping acked writes.
        from repro.durability import RecoveryError, recover

        try:
            index, recovery_report = recover(args.wal_dir)
        except RecoveryError as exc:
            print(f"recovery failed: {exc}", file=sys.stderr)
            return 1
        kind = recovery_report.kind or args.kind
        if kind != args.kind:
            print(
                f"recovered kind {kind!r} overrides --kind {args.kind!r}",
                file=sys.stderr,
            )
        store = getattr(index, "pager", None) or Pager()
        n_loaded = len(index)
    else:
        trace = Trace.load(args.trace)
        kind = args.kind
        histories = (
            trace.histories(args.history) if kind == IndexKind.CT else None
        )
        positions = trace.current_positions(args.history)
        if not positions:
            print("trace has no objects at the history cut", file=sys.stderr)
            return 1
        index, store = build_primary(
            kind, domain, histories=histories, shards=args.shards
        )
        n_loaded = len(positions)
    if args.wal_dir:
        durability = DurabilityManager(
            args.wal_dir,
            sync=args.sync_policy,
            checkpoint_every=args.checkpoint_every,
            fault=fault,
        )
    service = EngineService(index, store, kind, domain, durability=durability)
    if recovery_report is not None:
        service.adopt_recovered(recovery_report)
        if durability is not None:
            # Fold the replayed WAL tail into a fresh checkpoint now, so
            # the next crash recovers from here instead of re-replaying.
            service.checkpoint()
        print(
            f"recovered: {recovery_report.records_replayed} records past "
            f"checkpoint #{recovery_report.checkpoint_ordinal}, "
            f"{len(service.positions)} objects",
            flush=True,
        )
    else:
        service.load(positions, now=trace.load_time(args.history))
    server = ServeServer(
        service,
        ServeConfig(
            host=args.host,
            port=args.port,
            queue_depth=args.queue_depth,
            write_batch=args.write_batch,
            rate=args.rate,
            burst=args.burst,
            replicas=args.replicas,
            refresh_interval=args.refresh,
        ),
    )

    async def _run_daemon() -> None:
        await server.start()
        server.install_signal_handlers()
        host, port = server.address
        print(
            f"serving {kind} ({n_loaded} objects) on "
            f"{host}:{port} (pid {os.getpid()})",
            flush=True,
        )
        if args.ready_file:
            tmp = args.ready_file + ".tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump({"host": host, "port": port, "pid": os.getpid()}, fh)
                fh.write("\n")
            os.replace(tmp, args.ready_file)
        await server.wait_stopped()

    try:
        asyncio.run(_run_daemon())
    finally:
        service.close_index()
        if args.ready_file:
            try:
                os.unlink(args.ready_file)
            except OSError:
                pass
    if server.error is not None:
        print(f"daemon died: {server.error!r}", file=sys.stderr)
        return 1
    print(f"drained: acked {service.acked}, applied {service.applied}")
    return 0


def _serve_child_argv(args: argparse.Namespace) -> List[str]:
    """Reconstruct the plain (unsupervised) ``serve`` argv for the child."""
    argv = [
        sys.executable, "-m", "repro", "serve", args.trace,
        "--history", str(args.history),
        "--kind", str(args.kind),
        "--host", args.host,
        "--port", str(args.port),
        "--ready-file", args.ready_file,
        "--wal-dir", args.wal_dir,
        "--sync-policy", args.sync_policy,
        "--checkpoint-every", str(args.checkpoint_every),
        "--queue-depth", str(args.queue_depth),
        "--write-batch", str(args.write_batch),
        "--rate", str(args.rate),
        "--burst", str(args.burst),
        "--replicas", str(args.replicas),
        "--refresh", str(args.refresh),
        "--shards", str(args.shards),
        "--city-size", str(args.city_size),
    ]
    if args.fault_schedule:
        argv += ["--fault-schedule", args.fault_schedule]
    return argv


def _cmd_serve_supervised(args: argparse.Namespace) -> int:
    import signal
    import subprocess

    from repro.resilience import (
        Supervisor,
        SupervisorError,
        SupervisorPolicy,
        file_ready_check,
    )

    if not args.wal_dir or not args.ready_file:
        print("--supervise requires --wal-dir and --ready-file",
              file=sys.stderr)
        return 2
    argv = _serve_child_argv(args)
    supervisor = Supervisor(
        lambda: subprocess.Popen(argv),
        ready_check=file_ready_check(args.ready_file),
        policy=SupervisorPolicy(
            max_restarts=args.max_restarts,
            backoff_base=args.restart_backoff,
            ready_timeout=args.ready_timeout,
        ),
    )
    for sig in (signal.SIGINT, signal.SIGTERM):
        signal.signal(sig, lambda _s, _f: supervisor.stop())
    try:
        supervisor.start()
    except SupervisorError as exc:
        print(f"supervised daemon never became ready: {exc}",
              file=sys.stderr)
        return 1
    print(
        f"supervising pid {supervisor.child_pid} "
        f"(budget: {args.max_restarts} restarts)",
        flush=True,
    )
    code = supervisor.run()
    for event in supervisor.events:
        mttr = f"{event.mttr_s:.2f}s" if event.mttr_s is not None else "?"
        print(
            f"restart #{event.restart}: exit {event.exit_code}, "
            f"backoff {event.backoff_s:.2f}s, "
            f"{'ready' if event.ready else 'NOT READY'}, mttr {mttr}"
        )
    summary = supervisor.to_dict()
    mean = summary["mttr_mean_s"]
    print(
        f"supervisor: {summary['restarts']}/{summary['budget']} restarts"
        + (f", mttr mean {mean:.2f}s" if mean is not None else "")
    )
    if supervisor.exhausted:
        print("restart budget exhausted; giving up", file=sys.stderr)
        return code or 1
    return 0 if code == 0 else code


def cmd_chaos(args: argparse.Namespace) -> int:
    import shutil
    import tempfile
    from pathlib import Path

    from repro.chaos import ChaosConfig, format_chaos_report, run_chaos

    if args.run_dir:
        run_dir = Path(args.run_dir)
        ephemeral = False
    else:
        run_dir = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
        ephemeral = True
    cfg = ChaosConfig(
        run_dir=run_dir,
        seed=args.seed,
        profile=args.profile,
        writers=args.writers,
        objects=args.objects,
        min_ops=args.min_ops,
        kind=args.kind,
        staleness_bound_s=args.staleness_bound,
    )
    report = run_chaos(cfg)
    print(format_chaos_report(report))
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as fh:
                json.dump(report, fh, indent=2, sort_keys=True, default=str)
                fh.write("\n")
        except OSError as exc:
            print(f"cannot write --out file: {exc}", file=sys.stderr)
            return 1
        print(f"report: {args.out}")
    if ephemeral and report["ok"] and not args.keep:
        shutil.rmtree(run_dir, ignore_errors=True)
    else:
        print(f"run dir: {run_dir}")
    return 0 if report["ok"] else 1


def cmd_bench_serve(args: argparse.Namespace) -> int:
    from repro.serve.bench import format_serve_table, run_serve_bench

    trace = Trace.load(args.trace)
    domain = _domain(args.city_size)
    try:
        client_counts = tuple(
            int(c) for c in args.clients.split(",") if c.strip()
        )
    except ValueError:
        print(f"bad --clients list: {args.clients!r}", file=sys.stderr)
        return 1
    if not client_counts or min(client_counts) < 1:
        print("--clients needs positive counts, e.g. 1,8,32", file=sys.stderr)
        return 1
    section = run_serve_bench(
        trace,
        args.history,
        domain,
        kind=args.kind,
        client_counts=client_counts,
        queue_depth=args.queue_depth,
        write_batch=args.write_batch,
        rate=args.rate,
        replicas=args.replicas,
        refresh_interval=args.refresh,
        shards=args.shards,
        query_ratio=args.ratio,
        seed=args.seed,
        loadgen_mode=args.mode,
    )
    print(
        f"{section['n_updates']} updates + {section['n_queries']} queries "
        f"per run, {section['sweep_cells']}-cell parity sweep"
    )
    print(format_serve_table(section))
    print(f"parity: {'ok' if section['parity'] else 'FAIL'}   "
          f"verify: {'ok' if section['verify_ok'] else 'FAIL'}")
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as fh:
                json.dump({"serve": section}, fh, indent=2, sort_keys=True)
                fh.write("\n")
        except OSError as exc:
            print(f"cannot write --out file: {exc}", file=sys.stderr)
            return 1
        print(f"wrote {args.out}")
    return 0 if section["parity"] and section["verify_ok"] else 1


def cmd_params(_args: argparse.Namespace) -> int:
    print(format_table1(SimulationParams(), CTParams()))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import ALL_SECTIONS, write_report

    sections = args.sections if args.sections else list(ALL_SECTIONS)
    path = write_report(args.output, args.scale, args.seed, sections)
    print(f"wrote {path}")
    return 0


COMMANDS = {
    "simulate": cmd_simulate,
    "build": cmd_build,
    "experiment": cmd_experiment,
    "compare": cmd_compare,
    "recover": cmd_recover,
    "verify": cmd_verify,
    "serve": cmd_serve,
    "bench-serve": cmd_bench_serve,
    "chaos": cmd_chaos,
    "params": cmd_params,
    "report": cmd_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
