"""Durability: write-ahead logging, checkpointing, crash recovery, faults.

The in-memory levers that make the engine fast (the coalescing update
buffer, lazily-updated structures) are exactly the state a crash loses;
this package closes the loop:

* :mod:`repro.durability.wal` -- the append-only, CRC-checksummed,
  length-prefixed record log with ``always``/``group:N``/``onflush`` sync
  policies and segment rotation;
* :mod:`repro.durability.checkpoint` -- atomic checkpoints (tmp + fsync +
  rename) embedding the generic snapshot document plus the WAL sequence
  they cover, with retention and segment truncation;
* :mod:`repro.durability.recovery` -- ``recover(dir)``: newest valid
  checkpoint + merged seq-ordered WAL replay, tolerant of torn tails, with
  a :class:`RecoveryReport` audit trail;
* :mod:`repro.durability.manager` -- the :class:`DurabilityManager` the
  driver/CLI hold (per-shard logs for the sharded engine, automatic
  checkpoint cadence);
* :mod:`repro.durability.faults` -- deterministic fault injection (crash at
  the Nth write, torn tails, CRC corruption, lost segments) for the
  recovery test suite.
"""

from repro.durability.checkpoint import (
    CheckpointError,
    CheckpointInfo,
    clean_stale_tmp,
    list_checkpoints,
    load_latest_checkpoint,
    next_ordinal,
    read_checkpoint,
    read_checkpoint_info,
    write_checkpoint,
)
from repro.durability.faults import (
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    InjectedCrash,
    append_corrupt_frame,
    append_torn_frame,
    corrupt_record,
    drop_segment,
    tear_tail,
)
from repro.durability.manager import DurabilityManager
from repro.durability.recovery import (
    RecoveryError,
    RecoveryReport,
    recover,
    wal_directories,
)
from repro.durability.wal import (
    SyncPolicy,
    WalOp,
    WalRecord,
    WalStats,
    WriteAheadLog,
    list_segments,
    scan_directory,
    scan_segment,
)

__all__ = [
    "CheckpointError",
    "CheckpointInfo",
    "clean_stale_tmp",
    "list_checkpoints",
    "load_latest_checkpoint",
    "next_ordinal",
    "read_checkpoint",
    "read_checkpoint_info",
    "write_checkpoint",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "append_corrupt_frame",
    "append_torn_frame",
    "InjectedCrash",
    "corrupt_record",
    "drop_segment",
    "tear_tail",
    "DurabilityManager",
    "RecoveryError",
    "RecoveryReport",
    "recover",
    "wal_directories",
    "SyncPolicy",
    "WalOp",
    "WalRecord",
    "WalStats",
    "WriteAheadLog",
    "list_segments",
    "scan_directory",
    "scan_segment",
]
