"""Atomic checkpoints: a snapshot document plus the WAL position it covers.

A checkpoint file is one JSON envelope::

    {
      "version": 1,
      "ordinal": 3,              # monotone checkpoint counter
      "covered_seq": 1207,       # every WAL record with seq <= this is
                                 # reflected in the embedded snapshot
      "kind": "lazy",            # the snapshot's registry kind tag
      "snapshot": { ... }        # storage.snapshot document, verbatim
    }

The embedded snapshot reuses :func:`repro.storage.snapshot.build_document`
/ :func:`load_document` -- the kind-tag dispatch table is shared, so every
index the snapshot layer supports (including the sharded engine's
one-document form) checkpoints for free.

Writes are atomic (tmp file + fsync + ``os.replace``): a crash mid-write
leaves the previous checkpoint intact, and recovery skips damaged or
half-decoded files by falling back to the next-newest valid one.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.storage.snapshot import SnapshotError, build_document, load_document

CHECKPOINT_VERSION = 1
CHECKPOINT_PREFIX = "checkpoint-"
CHECKPOINT_SUFFIX = ".json"


class CheckpointError(RuntimeError):
    """Raised when no usable checkpoint can be read or written."""


@dataclass(frozen=True)
class CheckpointInfo:
    """Metadata of one checkpoint file (the envelope minus the snapshot)."""

    path: Path
    ordinal: int
    covered_seq: int
    kind: str
    #: Application state embedded alongside the snapshot (e.g. the serving
    #: layer's idempotency watermark); ``None`` for pre-``app_state`` files.
    app_state: Optional[dict] = None


def checkpoint_path(directory: Union[str, Path], ordinal: int) -> Path:
    return Path(directory) / f"{CHECKPOINT_PREFIX}{ordinal:08d}{CHECKPOINT_SUFFIX}"


def list_checkpoints(directory: Union[str, Path]) -> List[Tuple[int, Path]]:
    """``(ordinal, path)`` for every checkpoint file, oldest first.

    ``*.tmp`` leftovers from a crashed write are not checkpoints and are
    ignored here (recovery's repair pass deletes them).
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = []
    for path in directory.iterdir():
        name = path.name
        if name.startswith(CHECKPOINT_PREFIX) and name.endswith(CHECKPOINT_SUFFIX):
            stem = name[len(CHECKPOINT_PREFIX) : -len(CHECKPOINT_SUFFIX)]
            try:
                found.append((int(stem), path))
            except ValueError:
                continue
    return sorted(found)


def next_ordinal(directory: Union[str, Path]) -> int:
    existing = list_checkpoints(directory)
    return (existing[-1][0] + 1) if existing else 1


def write_checkpoint(
    index,
    directory: Union[str, Path],
    *,
    covered_seq: int,
    ordinal: Optional[int] = None,
    kind: Optional[str] = None,
    retain: int = 2,
    fault=None,
    app_state: Optional[dict] = None,
) -> CheckpointInfo:
    """Atomically publish a checkpoint of ``index``.

    ``covered_seq`` is the caller's promise that every WAL record with a
    sequence number at or below it is applied in ``index`` -- the caller
    (the :class:`~repro.durability.manager.DurabilityManager`) only
    checkpoints at quiescent points (update buffer drained).

    ``retain`` older checkpoints are kept as fallbacks for a checkpoint
    file that itself turns out damaged.

    ``app_state`` is an optional JSON-safe dict stored verbatim in the
    envelope: state that must survive the WAL truncation this checkpoint
    triggers (the serving layer's dedup watermark lives here).  Readers
    that predate the key ignore it.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if ordinal is None:
        ordinal = next_ordinal(directory)
    snapshot = build_document(index, kind=kind)
    envelope = {
        "version": CHECKPOINT_VERSION,
        "ordinal": ordinal,
        "covered_seq": covered_seq,
        "kind": snapshot.get("kind"),
        "snapshot": snapshot,
    }
    if app_state is not None:
        envelope["app_state"] = app_state
    path = checkpoint_path(directory, ordinal)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(envelope))
        fh.flush()
        os.fsync(fh.fileno())
    if fault is not None:
        fault.before_checkpoint_replace(tmp)
    os.replace(tmp, path)
    _apply_retention(directory, keep_from=ordinal, retain=retain)
    return CheckpointInfo(
        path=path,
        ordinal=ordinal,
        covered_seq=covered_seq,
        kind=str(envelope["kind"]),
        app_state=app_state,
    )


def _apply_retention(directory: Path, *, keep_from: int, retain: int) -> int:
    """Keep the newest checkpoint plus ``retain`` fallbacks; drop the rest."""
    removed = 0
    older = [
        (ordinal, path)
        for ordinal, path in list_checkpoints(directory)
        if ordinal < keep_from
    ]
    for ordinal, path in older[: max(0, len(older) - retain)]:
        path.unlink()
        removed += 1
    return removed


def read_checkpoint(path: Union[str, Path]):
    """Decode one checkpoint file -> ``(index, CheckpointInfo)``.

    Raises :class:`SnapshotError` for any damage (truncated JSON, wrong
    version, undecodable snapshot) so recovery can fall back.
    """
    path = Path(path)
    try:
        envelope = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise SnapshotError(f"not a checkpoint file: {exc}") from exc
    if not isinstance(envelope, dict):
        raise SnapshotError("checkpoint envelope must be an object")
    if envelope.get("version") != CHECKPOINT_VERSION:
        raise SnapshotError(
            f"unsupported checkpoint version {envelope.get('version')!r}"
        )
    try:
        covered_seq = int(envelope["covered_seq"])
        ordinal = int(envelope["ordinal"])
        snapshot = envelope["snapshot"]
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotError(f"malformed checkpoint envelope: {exc}") from exc
    index = load_document(snapshot)
    app_state = envelope.get("app_state")
    info = CheckpointInfo(
        path=path,
        ordinal=ordinal,
        covered_seq=covered_seq,
        kind=str(envelope.get("kind")),
        app_state=app_state if isinstance(app_state, dict) else None,
    )
    return index, info


def read_checkpoint_info(path: Union[str, Path]) -> CheckpointInfo:
    """Decode only a checkpoint's metadata envelope -- no index rebuild.

    For callers that need ``covered_seq``/``app_state`` without paying for
    snapshot materialization (e.g. a fresh
    :class:`~repro.durability.manager.DurabilityManager` resuming the
    global sequence past a checkpoint whose covered segments were all
    truncated).  Raises :class:`SnapshotError` on damage.
    """
    path = Path(path)
    try:
        envelope = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise SnapshotError(f"not a checkpoint file: {exc}") from exc
    if not isinstance(envelope, dict):
        raise SnapshotError("checkpoint envelope must be an object")
    if envelope.get("version") != CHECKPOINT_VERSION:
        raise SnapshotError(
            f"unsupported checkpoint version {envelope.get('version')!r}"
        )
    try:
        covered_seq = int(envelope["covered_seq"])
        ordinal = int(envelope["ordinal"])
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotError(f"malformed checkpoint envelope: {exc}") from exc
    app_state = envelope.get("app_state")
    return CheckpointInfo(
        path=path,
        ordinal=ordinal,
        covered_seq=covered_seq,
        kind=str(envelope.get("kind")),
        app_state=app_state if isinstance(app_state, dict) else None,
    )


def load_latest_checkpoint(directory: Union[str, Path]):
    """The newest *valid* checkpoint -> ``(index, CheckpointInfo)`` or
    ``None`` when the directory holds no usable checkpoint.

    Damaged files (torn writes that predate the atomic writer, bit rot) are
    skipped, newest-first, instead of aborting recovery.
    """
    for _ordinal, path in reversed(list_checkpoints(directory)):
        try:
            return read_checkpoint(path)
        except SnapshotError:
            continue
    return None


def clean_stale_tmp(directory: Union[str, Path]) -> int:
    """Delete ``*.tmp`` leftovers from crashed checkpoint/snapshot writes."""
    directory = Path(directory)
    if not directory.is_dir():
        return 0
    removed = 0
    for path in directory.iterdir():
        if path.name.endswith(".tmp"):
            path.unlink()
            removed += 1
    return removed
