"""The durability manager: one WAL-per-index (or per shard) + checkpoints.

The :class:`DurabilityManager` is the single object the driver, the update
buffer and the CLI hold.  It owns:

* the write-ahead log(s) -- a flat segment directory for a single index,
  or one ``shard-NN/`` log per shard of a
  :class:`~repro.engine.sharded.ShardedIndex`, stamped from one **global**
  sequence so recovery's merged replay is totally ordered (the same
  merged-ledger idea the engine uses for per-shard I/O accounting);
* checkpointing -- atomic snapshots via the generic kind-tag dispatch,
  recording the covered WAL sequence, retiring obsolete segments, and
  (optionally) firing automatically every ``checkpoint_every`` applied
  records;
* the acknowledgement rule -- logging happens *before* the in-memory state
  change (the update buffer calls :meth:`log_insert`/:meth:`log_update`
  before it buffers; the driver logs before it applies).

The manager satisfies the :class:`~repro.engine.buffer.UpdateLog` protocol,
so ``UpdateBuffer(wal=manager)`` wires buffered runs for free.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.durability.checkpoint import (
    CheckpointInfo,
    list_checkpoints,
    next_ordinal,
    read_checkpoint_info,
    write_checkpoint,
)
from repro.durability.recovery import SHARD_DIR_PREFIX
from repro.durability.wal import SyncPolicy, WalOp, WalStats, WriteAheadLog


def _position(point: Optional[Sequence[float]]) -> Optional[Tuple[float, ...]]:
    return None if point is None else tuple(point)


class DurabilityManager:
    """WAL + checkpoint orchestration for one index behind one directory.

    Args:
        directory: where segments and checkpoints live (created if missing).
        sync: WAL sync policy (``always`` / ``group:N`` / ``onflush``).
        checkpoint_every: fire an automatic checkpoint once this many data
            records have been noted applied since the last one (0 = only
            explicit :meth:`checkpoint` calls).
        segment_bytes: WAL segment rotation threshold.
        retain: older checkpoints kept as fallbacks.
        fault: optional :class:`~repro.durability.faults.FaultInjector`
            threaded through every WAL write/fsync and checkpoint publish.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        sync: Union[str, SyncPolicy] = "group:8",
        checkpoint_every: int = 0,
        segment_bytes: int = 1 << 20,
        retain: int = 2,
        fault=None,
    ) -> None:
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.sync_policy = SyncPolicy.parse(sync)
        self.checkpoint_every = checkpoint_every
        self.segment_bytes = segment_bytes
        self.retain = retain
        self._fault = fault
        self._index = None
        self._kind: Optional[str] = None
        self._wals: Dict[int, WriteAheadLog] = {}
        self._router = None  # SpacePartition of a sharded index
        self._seq = 0
        self._applied_since_checkpoint = 0
        self.last_checkpoint: Optional[CheckpointInfo] = None
        self.checkpoints_taken = 0
        #: Optional zero-argument callable returning a JSON-safe dict of
        #: application state (e.g. the serving layer's dedup watermark)
        #: embedded in each checkpoint envelope -- state that must survive
        #: the WAL truncation the checkpoint performs.
        self.state_provider = None

    # -- attachment ------------------------------------------------------

    def attach(self, index, *, kind: Optional[str] = None) -> "DurabilityManager":
        """Bind to ``index``; a sharded engine gets one log per shard."""
        if self._wals:
            raise RuntimeError("DurabilityManager is already attached")
        self._index = index
        self._kind = kind
        if hasattr(index, "partition") and hasattr(index, "shards"):
            self._router = index.partition
            for sid in range(index.partition.n_shards):
                self._wals[sid] = self._open_wal(
                    self.directory / f"{SHARD_DIR_PREFIX}{sid:02d}"
                )
        else:
            self._wals[0] = self._open_wal(self.directory)
        # Continue the global sequence past anything already on disk --
        # including the newest checkpoint's covered seq: with every covered
        # segment truncated, the WALs alone would restart numbering inside
        # the covered range and recovery would skip the new records as
        # already applied.
        self._seq = max(wal.last_seq for wal in self._wals.values())
        for _ordinal, path in reversed(list_checkpoints(self.directory)):
            try:
                info = read_checkpoint_info(path)
            except Exception:
                continue  # damaged checkpoint: recovery's problem, not ours
            self._seq = max(self._seq, info.covered_seq)
            break
        return self

    def _open_wal(self, directory: Path) -> WriteAheadLog:
        return WriteAheadLog(
            directory,
            sync=self.sync_policy,
            segment_bytes=self.segment_bytes,
            fault=self._fault,
        )

    @property
    def attached(self) -> bool:
        return bool(self._wals)

    @property
    def last_seq(self) -> int:
        return self._seq

    def _wal_for(self, point: Optional[Sequence[float]]) -> WriteAheadLog:
        if not self._wals:
            raise RuntimeError("DurabilityManager.attach was never called")
        if self._router is None or point is None:
            return next(iter(self._wals.values()))
        return self._wals[self._router.shard_of(point)]

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # -- the UpdateLog surface (what the buffer and driver call) ---------

    def log_insert(
        self,
        oid: int,
        point: Sequence[float],
        t: float,
        *,
        client: Optional[str] = None,
        rid: Optional[int] = None,
    ) -> int:
        return self._wal_for(point).append(
            WalOp.INSERT, oid=oid, point=_position(point), t=t,
            seq=self._next_seq(), client=client, rid=rid,
        )

    def log_update(
        self,
        oid: int,
        old_point: Sequence[float],
        point: Sequence[float],
        t: float,
        *,
        client: Optional[str] = None,
        rid: Optional[int] = None,
    ) -> int:
        # Routed by the *new* position: replay goes through the router,
        # which re-derives any cross-shard move from its restored owner map.
        return self._wal_for(point).append(
            WalOp.UPDATE, oid=oid, point=_position(point),
            old_point=_position(old_point), t=t, seq=self._next_seq(),
            client=client, rid=rid,
        )

    def log_delete(
        self, oid: int, old_point: Optional[Sequence[float]], t: Optional[float]
    ) -> int:
        return self._wal_for(old_point).append(
            WalOp.DELETE, oid=oid, old_point=_position(old_point), t=t,
            seq=self._next_seq(),
        )

    def log_flush(self) -> None:
        """Mark a buffer drain; ``onflush`` syncs commit here."""
        for wal in self._wals.values():
            wal.append(WalOp.FLUSH, seq=self._next_seq())

    # -- checkpointing ---------------------------------------------------

    def note_applied(self, n: int) -> None:
        """Tell the manager ``n`` logged records reached the index."""
        self._applied_since_checkpoint += n

    def maybe_checkpoint(self) -> Optional[CheckpointInfo]:
        """Checkpoint if the automatic threshold has been crossed.

        The driver calls this only at quiescent points (no buffered-but-
        unapplied records), which is what makes ``covered_seq = last_seq``
        truthful.
        """
        if (
            self.checkpoint_every
            and self._applied_since_checkpoint >= self.checkpoint_every
        ):
            return self.checkpoint()
        return None

    def checkpoint(self) -> CheckpointInfo:
        """Atomically snapshot the index, then retire covered segments."""
        if self._index is None:
            raise RuntimeError("DurabilityManager.attach was never called")
        covered = self._seq
        # A self-healing wrapper exposes the structure currently serving
        # via ``snapshot_target``; snapshot that, not the wrapper.
        target = getattr(self._index, "snapshot_target", self._index)
        app_state = self.state_provider() if self.state_provider else None
        info = write_checkpoint(
            target,
            self.directory,
            covered_seq=covered,
            ordinal=next_ordinal(self.directory),
            kind=self._kind,
            retain=self.retain,
            fault=self._fault,
            app_state=app_state,
        )
        # The marker makes the checkpoint visible in the log itself; the
        # truncation pass then drops every segment the snapshot covers.
        for wal in self._wals.values():
            wal.append(WalOp.CHECKPOINT, seq=self._next_seq())
            wal.sync()
            wal.truncate_covered(covered)
        self.last_checkpoint = info
        self.checkpoints_taken += 1
        self._applied_since_checkpoint = 0
        return info

    # -- telemetry / lifecycle -------------------------------------------

    @property
    def stats(self) -> WalStats:
        merged = WalStats()
        for wal in self._wals.values():
            merged = merged.merge(wal.stats)
        return merged

    def metrics_dict(self) -> Dict[str, object]:
        return {
            "directory": str(self.directory),
            "sync_policy": self.sync_policy.spec(),
            "checkpoint_every": self.checkpoint_every,
            "last_seq": self._seq,
            "checkpoints_taken": self.checkpoints_taken,
            "covered_seq": (
                self.last_checkpoint.covered_seq if self.last_checkpoint else 0
            ),
            "wal": self.stats.to_dict(),
            "shards": (
                None if self._router is None else self._router.n_shards
            ),
        }

    def close(self) -> None:
        for wal in self._wals.values():
            wal.close()

    def __enter__(self) -> "DurabilityManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"DurabilityManager(dir={str(self.directory)!r}, "
            f"sync={self.sync_policy.spec()!r}, last_seq={self._seq}, "
            f"checkpoints={self.checkpoints_taken})"
        )
