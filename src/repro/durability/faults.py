"""Deterministic fault injection for the durability test suite.

Two families of faults, both reproducible given the same arguments:

* **Live crash points** -- a :class:`FaultInjector` threaded into a
  :class:`~repro.durability.wal.WriteAheadLog` (and the checkpoint writer)
  counts physical events and raises :class:`InjectedCrash` at a chosen one,
  optionally leaving a torn partial frame behind, exactly as a process
  death mid-``write(2)`` would.
* **Post-mortem file surgery** -- helpers that damage an existing WAL
  directory the way real-world failures do: :func:`tear_tail` (partial last
  write), :func:`corrupt_record` (bit rot under a valid length prefix),
  :func:`drop_segment` (lost file).

The recovery suite uses both to assert the invariant *crash anywhere ->
the recovered index answers queries identically to an uncrashed run over
the durable prefix*.
"""

from __future__ import annotations

import json
import os
import random
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.durability.wal import _HEADER, list_segments, segment_path


class InjectedCrash(RuntimeError):
    """The deterministic stand-in for a process death (never caught by the
    durability layer itself -- only the test harness expects it)."""


class FaultInjector:
    """Counts WAL events and crashes at a configured point.

    Args:
        crash_on_append: crash on the Nth physical frame write (1-based);
            ``torn_bytes`` of the frame are written first, so ``torn_bytes=0``
            models a crash before the write and a small positive value
            models a torn write.
        torn_bytes: how much of the crashing frame reaches the file.
        crash_on_sync: crash on the Nth fsync, before it happens (records
            staged by group commit since the last sync are lost).
        crash_on_checkpoint_replace: crash after the checkpoint tmp file is
            fully written but before the atomic rename publishes it.
    """

    def __init__(
        self,
        *,
        crash_on_append: Optional[int] = None,
        torn_bytes: int = 0,
        crash_on_sync: Optional[int] = None,
        crash_on_checkpoint_replace: bool = False,
    ) -> None:
        if torn_bytes < 0:
            raise ValueError("torn_bytes must be >= 0")
        self.crash_on_append = crash_on_append
        self.torn_bytes = torn_bytes
        self.crash_on_sync = crash_on_sync
        self.crash_on_checkpoint_replace = crash_on_checkpoint_replace
        self.appends = 0
        self.syncs = 0

    # -- hooks the WAL calls ---------------------------------------------

    def write_frame(self, fh, frame: bytes) -> None:
        self.appends += 1
        if self.crash_on_append is not None and self.appends >= self.crash_on_append:
            torn = frame[: self.torn_bytes]
            if torn:
                fh.write(torn)
            # What a dying process leaves behind is whatever the OS already
            # had; flush so the torn prefix is really in the file.
            fh.flush()
            raise InjectedCrash(
                f"crash at append #{self.appends} "
                f"({len(torn)}/{len(frame)} bytes written)"
            )
        fh.write(frame)

    def before_sync(self) -> None:
        self.syncs += 1
        if self.crash_on_sync is not None and self.syncs >= self.crash_on_sync:
            raise InjectedCrash(f"crash at fsync #{self.syncs}")

    def before_checkpoint_replace(self, tmp_path: Path) -> None:
        if self.crash_on_checkpoint_replace:
            raise InjectedCrash(
                f"crash before publishing checkpoint {tmp_path.name}"
            )

    @classmethod
    def from_schedule(cls, schedule: "FaultSchedule") -> Optional["FaultInjector"]:
        """The injector for a schedule's live crash point (or ``None``)."""
        return schedule.injector()


# -- seedable fault schedules --------------------------------------------------


@dataclass(frozen=True)
class FaultSpec:
    """One fault in a :class:`FaultSchedule`.

    ``at`` is the fault's trigger coordinate: the 1-based physical event
    count for live crash points (append / fsync number), the 0-based record
    index for ``crc_flip``, and the byte count for ``torn_tail``.
    """

    kind: str
    at: int = 1
    torn_bytes: int = 0
    flip: int = 0xFF

    CRASH_APPEND = "crash_append"
    CRASH_SYNC = "crash_sync"
    CRASH_CHECKPOINT = "crash_checkpoint"
    TORN_TAIL = "torn_tail"
    CRC_FLIP = "crc_flip"

    LIVE = (CRASH_APPEND, CRASH_SYNC, CRASH_CHECKPOINT)
    SURGERY = (TORN_TAIL, CRC_FLIP)

    def __post_init__(self) -> None:
        if self.kind not in self.LIVE + self.SURGERY:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at < 0:
            raise ValueError("fault trigger point must be >= 0")

    def to_dict(self) -> Dict[str, int]:
        return {
            "kind": self.kind,
            "at": self.at,
            "torn_bytes": self.torn_bytes,
            "flip": self.flip,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "FaultSpec":
        return cls(
            kind=str(doc["kind"]),
            at=int(doc.get("at", 1)),
            torn_bytes=int(doc.get("torn_bytes", 0)),
            flip=int(doc.get("flip", 0xFF)),
        )

    def describe(self) -> str:
        extra = ""
        if self.kind in (self.CRASH_APPEND, self.TORN_TAIL) and self.torn_bytes:
            extra = f"(torn={self.torn_bytes})"
        elif self.kind == self.CRC_FLIP:
            extra = f"(flip=0x{self.flip:02X})"
        return f"{self.kind}@{self.at}{extra}"


class FaultSchedule:
    """A reproducible, serializable sequence of faults.

    The chaos harness's contract is that *any* failure reproduces from its
    seed line alone: ``FaultSchedule.generate(seed)`` derives the exact
    same fault specs every time, ``to_json``/``from_json`` round-trip them
    for report embedding, :meth:`injector` builds the live
    :class:`FaultInjector`, and :meth:`apply_surgery` performs the
    post-mortem file damage (torn tail, CRC flip) on a WAL directory.
    """

    def __init__(
        self, specs: Sequence[FaultSpec], *, seed: Optional[int] = None
    ) -> None:
        self.specs: List[FaultSpec] = list(specs)
        self.seed = seed

    @classmethod
    def generate(
        cls,
        seed: int,
        *,
        n_faults: int = 2,
        kinds: Optional[Sequence[str]] = None,
        max_at: int = 64,
    ) -> "FaultSchedule":
        """Derive ``n_faults`` specs deterministically from ``seed``.

        Same arguments -> byte-identical schedule; the seed is remembered
        so :meth:`seed_line` can print the reproduction command.
        """
        if n_faults < 0:
            raise ValueError("n_faults must be >= 0")
        allowed = tuple(kinds) if kinds else FaultSpec.LIVE + FaultSpec.SURGERY
        rng = random.Random(seed)
        specs = []
        for _ in range(n_faults):
            kind = rng.choice(allowed)
            if kind == FaultSpec.TORN_TAIL:
                # Tear a few bytes: enough to shear the final frame, never
                # the whole segment.
                spec = FaultSpec(kind, at=rng.randint(1, 12))
            elif kind == FaultSpec.CRC_FLIP:
                spec = FaultSpec(
                    kind, at=rng.randint(0, 7), flip=rng.randint(1, 0xFF)
                )
            elif kind == FaultSpec.CRASH_APPEND:
                spec = FaultSpec(
                    kind,
                    at=rng.randint(1, max_at),
                    torn_bytes=rng.choice((0, rng.randint(1, 7))),
                )
            elif kind == FaultSpec.CRASH_SYNC:
                spec = FaultSpec(kind, at=rng.randint(1, max(1, max_at // 8)))
            else:
                spec = FaultSpec(FaultSpec.CRASH_CHECKPOINT, at=1)
            specs.append(spec)
        return cls(specs, seed=seed)

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "specs": [spec.to_dict() for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "FaultSchedule":
        specs = [FaultSpec.from_dict(entry) for entry in doc.get("specs", [])]
        seed = doc.get("seed")
        return cls(specs, seed=None if seed is None else int(seed))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), separators=(",", ":"), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        return cls.from_dict(json.loads(text))

    def seed_line(self) -> str:
        """One line that reproduces this schedule exactly."""
        origin = (
            f"seed={self.seed}" if self.seed is not None else "explicit specs"
        )
        faults = ", ".join(s.describe() for s in self.specs) or "none"
        return f"FaultSchedule({origin}): {faults}"

    # -- execution --------------------------------------------------------

    @property
    def live_specs(self) -> List[FaultSpec]:
        return [s for s in self.specs if s.kind in FaultSpec.LIVE]

    @property
    def surgery_specs(self) -> List[FaultSpec]:
        return [s for s in self.specs if s.kind in FaultSpec.SURGERY]

    def injector(self) -> Optional[FaultInjector]:
        """A :class:`FaultInjector` armed with the first live crash spec
        (an injector crashes once), or ``None`` with no live fault."""
        live = self.live_specs
        if not live:
            return None
        spec = live[0]
        if spec.kind == FaultSpec.CRASH_APPEND:
            return FaultInjector(
                crash_on_append=spec.at, torn_bytes=spec.torn_bytes
            )
        if spec.kind == FaultSpec.CRASH_SYNC:
            return FaultInjector(crash_on_sync=spec.at)
        return FaultInjector(crash_on_checkpoint_replace=True)

    def apply_surgery(self, directory: Union[str, Path]) -> List[str]:
        """Apply the post-mortem specs to a WAL directory; returns what was
        done.  Damage that cannot land (no segments yet, record index past
        the end) is skipped and reported -- surgery models opportunistic
        real-world corruption, not a hard precondition."""
        applied: List[str] = []
        for spec in self.surgery_specs:
            try:
                if spec.kind == FaultSpec.TORN_TAIL:
                    path = tear_tail(directory, nbytes=spec.at)
                    applied.append(f"torn_tail({spec.at}B) -> {path.name}")
                else:
                    path = corrupt_record(directory, spec.at, flip=spec.flip)
                    applied.append(
                        f"crc_flip(record {spec.at}) -> {path.name}"
                    )
            except (FileNotFoundError, IndexError) as exc:
                applied.append(f"{spec.kind}@{spec.at} skipped: {exc}")
        return applied

    def __repr__(self) -> str:
        return self.seed_line()


# -- post-mortem file surgery --------------------------------------------------


def _last_segment(directory: Union[str, Path]) -> Path:
    segments = list_segments(directory)
    if not segments:
        raise FileNotFoundError(f"no WAL segments in {directory}")
    return segments[-1][1]


def tear_tail(directory: Union[str, Path], nbytes: int = 5) -> Path:
    """Truncate the newest segment by ``nbytes``, modelling a torn write."""
    path = _last_segment(directory)
    size = path.stat().st_size
    with open(path, "r+b") as fh:
        fh.truncate(max(0, size - nbytes))
    return path


def corrupt_record(
    directory: Union[str, Path], record_index: int, *, flip: int = 0xFF
) -> Path:
    """XOR one payload byte of the ``record_index``-th record (0-based) in
    the newest segment, leaving the length prefix intact -- the CRC, not the
    framing, must catch it."""
    path = _last_segment(directory)
    data = bytearray(path.read_bytes())
    offset = 0
    index = 0
    while offset + _HEADER.size <= len(data):
        length, _crc = _HEADER.unpack_from(data, offset)
        payload_at = offset + _HEADER.size
        if payload_at + length > len(data):
            break
        if index == record_index:
            data[payload_at] ^= flip
            path.write_bytes(bytes(data))
            return path
        index += 1
        offset = payload_at + length
    raise IndexError(
        f"segment {path.name} has only {index} complete records; "
        f"cannot corrupt record {record_index}"
    )


def append_torn_frame(
    directory: Union[str, Path], nbytes: int = 16
) -> Path:
    """Append a *partial* frame to the newest segment: a valid header
    declaring a payload longer than the ``nbytes`` of garbage that follow.

    This is the crash-honest tail fault: what a dying process leaves past
    the fsynced prefix.  Recovery sees a torn tail, replays every complete
    record, and trims the debris -- no acked data is touched (unlike
    :func:`tear_tail`, which truncates real bytes and may shear the final
    acked record).
    """
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    path = _last_segment(directory)
    with open(path, "ab") as fh:
        fh.write(_HEADER.pack(nbytes + 64, 0))
        fh.write(b"\xa5" * nbytes)
    return path


def append_corrupt_frame(
    directory: Union[str, Path], *, flip: int = 0xFF
) -> Path:
    """Append a *complete* frame whose CRC does not match its payload.

    Models in-flight bytes that reached the file scrambled when the
    process died: the framing is intact, so only the checksum catches it.
    Recovery stops at the bad frame -- the full acked prefix before it
    replays -- and repair trims it.
    """
    if not 0 <= flip <= 0xFF:
        raise ValueError("flip must be a byte value")
    path = _last_segment(directory)
    payload = b'{"op":"ins","seq":0,"oid":0}'
    crc = (zlib.crc32(payload) ^ max(1, flip)) & 0xFFFFFFFF
    with open(path, "ab") as fh:
        fh.write(_HEADER.pack(len(payload), crc))
        fh.write(payload)
    return path


def drop_segment(directory: Union[str, Path], number: Optional[int] = None) -> Path:
    """Delete one segment file (default: the oldest), modelling a lost file."""
    directory = Path(directory)
    if number is None:
        segments = list_segments(directory)
        if not segments:
            raise FileNotFoundError(f"no WAL segments in {directory}")
        number = segments[0][0]
    path = segment_path(directory, number)
    os.unlink(path)
    return path
