"""Deterministic fault injection for the durability test suite.

Two families of faults, both reproducible given the same arguments:

* **Live crash points** -- a :class:`FaultInjector` threaded into a
  :class:`~repro.durability.wal.WriteAheadLog` (and the checkpoint writer)
  counts physical events and raises :class:`InjectedCrash` at a chosen one,
  optionally leaving a torn partial frame behind, exactly as a process
  death mid-``write(2)`` would.
* **Post-mortem file surgery** -- helpers that damage an existing WAL
  directory the way real-world failures do: :func:`tear_tail` (partial last
  write), :func:`corrupt_record` (bit rot under a valid length prefix),
  :func:`drop_segment` (lost file).

The recovery suite uses both to assert the invariant *crash anywhere ->
the recovered index answers queries identically to an uncrashed run over
the durable prefix*.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

from repro.durability.wal import _HEADER, list_segments, segment_path


class InjectedCrash(RuntimeError):
    """The deterministic stand-in for a process death (never caught by the
    durability layer itself -- only the test harness expects it)."""


class FaultInjector:
    """Counts WAL events and crashes at a configured point.

    Args:
        crash_on_append: crash on the Nth physical frame write (1-based);
            ``torn_bytes`` of the frame are written first, so ``torn_bytes=0``
            models a crash before the write and a small positive value
            models a torn write.
        torn_bytes: how much of the crashing frame reaches the file.
        crash_on_sync: crash on the Nth fsync, before it happens (records
            staged by group commit since the last sync are lost).
        crash_on_checkpoint_replace: crash after the checkpoint tmp file is
            fully written but before the atomic rename publishes it.
    """

    def __init__(
        self,
        *,
        crash_on_append: Optional[int] = None,
        torn_bytes: int = 0,
        crash_on_sync: Optional[int] = None,
        crash_on_checkpoint_replace: bool = False,
    ) -> None:
        if torn_bytes < 0:
            raise ValueError("torn_bytes must be >= 0")
        self.crash_on_append = crash_on_append
        self.torn_bytes = torn_bytes
        self.crash_on_sync = crash_on_sync
        self.crash_on_checkpoint_replace = crash_on_checkpoint_replace
        self.appends = 0
        self.syncs = 0

    # -- hooks the WAL calls ---------------------------------------------

    def write_frame(self, fh, frame: bytes) -> None:
        self.appends += 1
        if self.crash_on_append is not None and self.appends >= self.crash_on_append:
            torn = frame[: self.torn_bytes]
            if torn:
                fh.write(torn)
            # What a dying process leaves behind is whatever the OS already
            # had; flush so the torn prefix is really in the file.
            fh.flush()
            raise InjectedCrash(
                f"crash at append #{self.appends} "
                f"({len(torn)}/{len(frame)} bytes written)"
            )
        fh.write(frame)

    def before_sync(self) -> None:
        self.syncs += 1
        if self.crash_on_sync is not None and self.syncs >= self.crash_on_sync:
            raise InjectedCrash(f"crash at fsync #{self.syncs}")

    def before_checkpoint_replace(self, tmp_path: Path) -> None:
        if self.crash_on_checkpoint_replace:
            raise InjectedCrash(
                f"crash before publishing checkpoint {tmp_path.name}"
            )


# -- post-mortem file surgery --------------------------------------------------


def _last_segment(directory: Union[str, Path]) -> Path:
    segments = list_segments(directory)
    if not segments:
        raise FileNotFoundError(f"no WAL segments in {directory}")
    return segments[-1][1]


def tear_tail(directory: Union[str, Path], nbytes: int = 5) -> Path:
    """Truncate the newest segment by ``nbytes``, modelling a torn write."""
    path = _last_segment(directory)
    size = path.stat().st_size
    with open(path, "r+b") as fh:
        fh.truncate(max(0, size - nbytes))
    return path


def corrupt_record(
    directory: Union[str, Path], record_index: int, *, flip: int = 0xFF
) -> Path:
    """XOR one payload byte of the ``record_index``-th record (0-based) in
    the newest segment, leaving the length prefix intact -- the CRC, not the
    framing, must catch it."""
    path = _last_segment(directory)
    data = bytearray(path.read_bytes())
    offset = 0
    index = 0
    while offset + _HEADER.size <= len(data):
        length, _crc = _HEADER.unpack_from(data, offset)
        payload_at = offset + _HEADER.size
        if payload_at + length > len(data):
            break
        if index == record_index:
            data[payload_at] ^= flip
            path.write_bytes(bytes(data))
            return path
        index += 1
        offset = payload_at + length
    raise IndexError(
        f"segment {path.name} has only {index} complete records; "
        f"cannot corrupt record {record_index}"
    )


def drop_segment(directory: Union[str, Path], number: Optional[int] = None) -> Path:
    """Delete one segment file (default: the oldest), modelling a lost file."""
    directory = Path(directory)
    if number is None:
        segments = list_segments(directory)
        if not segments:
            raise FileNotFoundError(f"no WAL segments in {directory}")
        number = segments[0][0]
    path = segment_path(directory, number)
    os.unlink(path)
    return path
