"""Crash recovery: newest valid checkpoint + WAL tail replay.

``recover(dir)`` rebuilds the index a crashed process would have served:

1. load the newest *valid* checkpoint (damaged ones fall back to older);
2. scan every WAL segment -- flat layout for a single index, one
   ``shard-NN/`` log directory per shard for the sharded engine -- and
   merge the records into one ledger ordered by the global sequence number
   (the sharded engine's per-shard logs interleave exactly like its
   per-shard I/O ledgers merge into one ``RunResult``);
3. replay every data record past the checkpoint's ``covered_seq`` through
   the index, in ``(t, seq)`` order (seq order *is* timestamp order: the
   driver logs in stream order), stopping at the first sequence gap -- a
   torn final record, a corrupted record, or a missing segment all surface
   as a gap, so nothing past a hole is ever applied out of order;
4. optionally repair the directory: trim damaged tails to their valid
   prefix, drop records beyond the gap (they are unreachable forever),
   delete segments wholly covered by the checkpoint, and remove stale
   ``*.tmp`` leftovers -- leaving a directory a fresh writer can append to.

The returned :class:`RecoveryReport` is the audit trail the fault-injection
suite asserts against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Dict, List, Optional, Tuple, Union

from repro.durability.checkpoint import (
    CheckpointInfo,
    clean_stale_tmp,
    load_latest_checkpoint,
)
from repro.durability.wal import (
    DirectoryScan,
    WalOp,
    WalRecord,
    list_segments,
    scan_directory,
    scan_segment,
)
from repro.obs.metrics import get_registry

#: Per-shard WAL directories inside a sharded durability directory.
SHARD_DIR_PREFIX = "shard-"


class RecoveryError(RuntimeError):
    """Raised when no starting state (checkpoint or factory) exists."""


@dataclass
class RecoveryReport:
    """What recovery found, replayed, and cleaned up."""

    checkpoint_ordinal: int = 0
    checkpoint_seq: int = 0
    kind: str = ""
    records_replayed: int = 0
    #: Records read but not applied: already covered by the checkpoint,
    #: duplicates, or stranded past a sequence gap.
    records_skipped: int = 0
    #: Segments deleted (covered by the checkpoint) plus tails trimmed.
    segments_truncated: int = 0
    torn_tail: bool = False
    corrupt_segments: int = 0
    missing_segments: List[int] = field(default_factory=list)
    #: First sequence number missing from the replayable ledger (0 = none).
    gap_at_seq: int = 0
    tmp_files_removed: int = 0
    replay_s: float = 0.0
    #: Post-recovery structural verification (the health layer's fsck):
    #: None when verification was skipped or unavailable.
    verify_ok: Optional[bool] = None
    verify_violations: List[str] = field(default_factory=list)
    #: ``app_state`` dict of the loaded checkpoint (``None`` when absent):
    #: application state -- e.g. the serving dedup watermark -- that the
    #: checkpoint carried past its WAL truncation.
    app_state: Optional[Dict[str, object]] = None
    #: ``(client, rid, seq)`` idempotency stamps of the *replayed* data
    #: records, in replay order -- the WAL-tail half of rebuilding the
    #: dedup journal after a restart (``app_state`` holds the other half).
    dedup_records: List[Tuple[str, int, int]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "checkpoint_ordinal": self.checkpoint_ordinal,
            "checkpoint_seq": self.checkpoint_seq,
            "kind": self.kind,
            "records_replayed": self.records_replayed,
            "records_skipped": self.records_skipped,
            "segments_truncated": self.segments_truncated,
            "torn_tail": self.torn_tail,
            "corrupt_segments": self.corrupt_segments,
            "missing_segments": list(self.missing_segments),
            "gap_at_seq": self.gap_at_seq,
            "tmp_files_removed": self.tmp_files_removed,
            "replay_s": self.replay_s,
            "verify_ok": self.verify_ok,
            "verify_violations": list(self.verify_violations),
            "dedup_records": len(self.dedup_records),
        }


def wal_directories(directory: Union[str, Path]) -> List[Path]:
    """The log directories under ``directory``: its ``shard-NN/`` children
    for a sharded layout, else the directory itself."""
    directory = Path(directory)
    shard_dirs = sorted(
        child
        for child in directory.iterdir()
        if child.is_dir() and child.name.startswith(SHARD_DIR_PREFIX)
    )
    return shard_dirs if shard_dirs else [directory]


def _apply_record(index, kind: str, record: WalRecord) -> None:
    if record.op == WalOp.INSERT:
        index.insert(record.oid, record.point, now=record.t)
    elif record.op == WalOp.UPDATE:
        try:
            index.update(record.oid, record.old_point, record.point, now=record.t)
        except KeyError:
            # Upsert: in a WAL-only recovery (checkpoint lost, empty index
            # from the factory) the object's insert was never logged -- the
            # driver bulk-loads it -- so its first update materializes it.
            index.insert(record.oid, record.point, now=record.t)
    elif record.op == WalOp.DELETE:
        _delete_record(index, kind, record)
    else:
        raise RecoveryError(f"cannot replay op {record.op!r}")


def _delete_record(index, kind: str, record: WalRecord) -> None:
    if kind == "sharded":
        index.delete(record.oid, record.old_point, now=record.t)
        return
    # The registry's capability adapter knows each family's delete shape.
    from repro.engine.registry import get_spec

    try:
        spec = get_spec(kind)
    except ValueError:
        index.delete(record.oid)
        return
    spec.delete(index, record.oid, record.old_point, record.t)


def recover(
    directory: Union[str, Path],
    *,
    index_factory=None,
    repair: bool = True,
    verify: bool = True,
):
    """Rebuild the index from ``directory`` -> ``(index, RecoveryReport)``.

    Args:
        directory: the durability directory (checkpoints at the top level,
            WAL segments flat or under ``shard-NN/``).
        index_factory: zero-argument callable building the empty index when
            no valid checkpoint exists (a WAL-only recovery); without it,
            a checkpointless directory raises :class:`RecoveryError`.
        repair: trim torn tails, drop unreachable post-gap records, delete
            covered segments and stale tmp files, so a fresh
            :class:`~repro.durability.manager.DurabilityManager` can take
            over the directory.
        verify: run the health layer's structural verifier over the
            recovered index; the verdict lands in ``report.verify_ok`` /
            ``report.verify_violations`` (never raises -- a crash should
            still hand back whatever state replay could assemble).
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise RecoveryError(f"no such durability directory: {directory}")
    t0 = perf_counter()
    report = RecoveryReport()

    loaded = load_latest_checkpoint(directory)
    if loaded is not None:
        index, info = loaded
        report.checkpoint_ordinal = info.ordinal
        report.checkpoint_seq = info.covered_seq
        report.kind = info.kind
        report.app_state = info.app_state
    elif index_factory is not None:
        index = index_factory()
        info = None
        from repro.storage.snapshot import SnapshotError, index_kind_of

        try:
            report.kind = index_kind_of(index)
        except SnapshotError:
            report.kind = type(index).__name__
    else:
        raise RecoveryError(
            f"{directory} holds no valid checkpoint and no index_factory "
            "was supplied"
        )

    # Merge every log directory into one seq-ordered ledger.
    scans: List[Tuple[Path, DirectoryScan]] = [
        (wal_dir, scan_directory(wal_dir)) for wal_dir in wal_directories(directory)
    ]
    records: List[WalRecord] = []
    for _wal_dir, scan in scans:
        records.extend(scan.records)
        report.torn_tail = report.torn_tail or scan.torn_tail
        report.corrupt_segments += scan.corrupt_segments
        report.missing_segments.extend(scan.missing_segments)
    records.sort(key=lambda r: r.seq)

    covered = report.checkpoint_seq
    expected = covered + 1
    last_good = covered
    stopped = False
    for position, record in enumerate(records):
        if record.seq <= covered or record.seq < expected:
            report.records_skipped += 1  # covered by checkpoint / duplicate
            continue
        if record.seq != expected:
            # A hole: torn tail, corruption, or a lost segment.  Nothing
            # past it can be applied without reordering history.
            report.gap_at_seq = expected
            report.records_skipped += len(records) - position
            stopped = True
            break
        if record.op in WalOp.DATA:
            _apply_record(index, report.kind, record)
            report.records_replayed += 1
            if record.client is not None and record.rid is not None:
                report.dedup_records.append(
                    (record.client, record.rid, record.seq)
                )
        last_good = record.seq
        expected = record.seq + 1
    if not stopped and (report.torn_tail or report.corrupt_segments):
        # Damage at the very tail: no complete record was lost, but note
        # where the ledger ends so repair can trim the debris.
        report.gap_at_seq = expected

    if repair:
        report.tmp_files_removed = clean_stale_tmp(directory)
        for wal_dir, _scan in scans:
            report.segments_truncated += _repair_wal_dir(
                wal_dir, covered_seq=covered, last_good_seq=last_good
            )

    if verify:
        # Function-level import: durability must stay importable without
        # the health layer (dependency points health -> durability-free).
        from repro.health.verify import verify_index

        try:
            verdict = verify_index(index, kind=report.kind or None)
        except Exception as exc:  # diagnostics must not mask recovery
            report.verify_ok = None
            report.verify_violations = [f"verifier crashed: {exc!r}"]
        else:
            report.verify_ok = verdict.ok
            report.verify_violations = [str(v) for v in verdict.violations]

    report.replay_s = perf_counter() - t0
    registry = get_registry()
    if registry.enabled:
        registry.record_duration("durability.recovery.replay_s", report.replay_s)
        registry.inc("durability.recovery.records_replayed", report.records_replayed)
        if report.verify_ok is not None:
            registry.inc(
                "durability.recovery.verify_ok"
                if report.verify_ok
                else "durability.recovery.verify_failed"
            )
    return index, report


def _repair_wal_dir(
    wal_dir: Path, *, covered_seq: int, last_good_seq: int
) -> int:
    """Make ``wal_dir`` consistent with the recovered state.

    Deletes segments wholly covered by the checkpoint, and truncates every
    remaining segment to the prefix of records with ``seq <=
    last_good_seq`` (within one log, sequence numbers are monotone, so the
    keep-prefix is well-defined).  Returns segments deleted + trimmed.
    """
    changed = 0
    for _number, path in list_segments(wal_dir):
        scan = scan_segment(path)
        if (
            scan.records
            and scan.records[-1].seq <= covered_seq
            and not scan.torn_tail
            and not scan.corrupt
        ):
            path.unlink()
            changed += 1
            continue
        keep_bytes = 0
        for record, end_offset in zip(scan.records, scan.end_offsets):
            if record.seq <= last_good_seq:
                keep_bytes = end_offset
        if keep_bytes < path.stat().st_size:
            with open(path, "r+b") as fh:
                fh.truncate(keep_bytes)
            changed += 1
    return changed
