"""The write-ahead log: append-only, CRC-checksummed, length-prefixed.

PR 2's coalescing :class:`~repro.engine.buffer.UpdateBuffer` wins its I/O
savings by keeping acknowledged work in memory -- which a crash silently
loses.  The WAL closes that hole the way the LSM-based R-tree line of work
does (Shin et al.): every update is appended to an on-disk log *before* it
is acknowledged, so recovery can replay the tail that never reached the
index pages.

On-disk format (one or more segment files, ``wal-<n>.log``)::

    +----------------+----------------+------------------+
    | length (u32 LE)| crc32 (u32 LE) | payload bytes    |
    +----------------+----------------+------------------+

The payload is compact JSON -- the repo's no-pickle rule applies to the log
exactly as it does to snapshots (data only, never code).  Each record
carries a monotone sequence number ``seq``; checkpoints record the highest
``seq`` they cover, and recovery replays only records past it, stopping at
the first gap in the sequence (a torn tail, a corrupted record, or a
missing segment all surface as a gap).

Sync policies (the durability/throughput dial):

* ``always``   -- fsync after every append (no acknowledged record is ever
  lost; one fsync per update);
* ``group:N``  -- group commit: fsync once every N appends (amortized
  fsyncs; a crash loses at most the last unsynced group);
* ``onflush``  -- fsync only at flush/checkpoint markers (cheapest; bounds
  loss to one buffer flush interval).

Segment rotation keeps individual files small so checkpoint-driven
truncation can drop covered history file-by-file.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.obs.metrics import MetricsRegistry, get_registry

#: Frame header: payload length and CRC32 of the payload, little-endian.
_HEADER = struct.Struct("<II")

SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".log"


class WalOp:
    """Record types (mirrors the ``IndexKind`` string-constant idiom)."""

    INSERT = "ins"
    UPDATE = "upd"
    DELETE = "del"
    FLUSH = "flush"  # an UpdateBuffer drained into the index
    CHECKPOINT = "ckpt"  # a checkpoint covering every earlier seq was taken

    DATA = (INSERT, UPDATE, DELETE)
    MARKERS = (FLUSH, CHECKPOINT)


class WalError(RuntimeError):
    """Raised for malformed WAL state the caller must not ignore."""


@dataclass(frozen=True)
class WalRecord:
    """One logical log entry (decoded form of one frame payload).

    ``client``/``rid`` are the optional idempotency stamp a serving write
    carries (``repro.resilience``): retries of one logical write share one
    ``(client, rid)`` pair, so recovery can rebuild the dedup watermark and
    the chaos harness can prove no pair was applied twice.  Pre-stamp logs
    decode fine -- both keys are absent and default to ``None``.
    """

    op: str
    seq: int
    t: Optional[float] = None
    oid: Optional[int] = None
    point: Optional[Tuple[float, ...]] = None
    old_point: Optional[Tuple[float, ...]] = None
    client: Optional[str] = None
    rid: Optional[int] = None

    def to_payload(self) -> bytes:
        doc: Dict[str, object] = {"op": self.op, "seq": self.seq}
        if self.t is not None:
            doc["t"] = self.t
        if self.oid is not None:
            doc["oid"] = self.oid
        if self.point is not None:
            doc["pt"] = list(self.point)
        if self.old_point is not None:
            doc["old"] = list(self.old_point)
        if self.client is not None:
            doc["cl"] = self.client
        if self.rid is not None:
            doc["rid"] = self.rid
        return json.dumps(doc, separators=(",", ":")).encode("utf-8")

    @classmethod
    def from_payload(cls, payload: bytes) -> "WalRecord":
        try:
            doc = json.loads(payload.decode("utf-8"))
            return cls(
                op=doc["op"],
                seq=doc["seq"],
                t=doc.get("t"),
                oid=doc.get("oid"),
                point=None if doc.get("pt") is None else tuple(doc["pt"]),
                old_point=None if doc.get("old") is None else tuple(doc["old"]),
                client=doc.get("cl"),
                rid=doc.get("rid"),
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise WalError(f"undecodable WAL payload: {exc}") from exc

    def to_frame(self) -> bytes:
        payload = self.to_payload()
        return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass(frozen=True)
class SyncPolicy:
    """When appends reach the platter: ``always`` / ``group:N`` / ``onflush``."""

    mode: str = "group"
    every: int = 8

    ALWAYS = "always"
    GROUP = "group"
    ON_FLUSH = "onflush"

    def __post_init__(self) -> None:
        if self.mode not in (self.ALWAYS, self.GROUP, self.ON_FLUSH):
            raise ValueError(f"unknown sync mode {self.mode!r}")
        if self.mode == self.GROUP and self.every < 1:
            raise ValueError("group commit size must be >= 1")

    @classmethod
    def parse(cls, spec: Union[str, "SyncPolicy"]) -> "SyncPolicy":
        """``"always"`` | ``"group:N"`` | ``"onflush"`` -> policy."""
        if isinstance(spec, SyncPolicy):
            return spec
        text = spec.strip().lower()
        if text == cls.ALWAYS:
            return cls(mode=cls.ALWAYS)
        if text == cls.ON_FLUSH:
            return cls(mode=cls.ON_FLUSH)
        if text.startswith("group"):
            _, _, n = text.partition(":")
            return cls(mode=cls.GROUP, every=int(n) if n else 8)
        raise ValueError(
            f"unknown sync policy {spec!r}; expected always, group:N, or onflush"
        )

    def spec(self) -> str:
        return f"group:{self.every}" if self.mode == self.GROUP else self.mode

    def sync_after(self, pending: int, op: str) -> bool:
        if self.mode == self.ALWAYS:
            return True
        if self.mode == self.GROUP:
            return pending >= self.every
        return op in WalOp.MARKERS  # onflush: markers are the commit points


@dataclass
class WalStats:
    """Lifetime tallies of one log (monotone, JSON-ready)."""

    appends: int = 0
    fsyncs: int = 0
    bytes_written: int = 0
    rotations: int = 0

    def merge(self, other: "WalStats") -> "WalStats":
        return WalStats(
            self.appends + other.appends,
            self.fsyncs + other.fsyncs,
            self.bytes_written + other.bytes_written,
            self.rotations + other.rotations,
        )

    def to_dict(self) -> Dict[str, int]:
        return {
            "appends": self.appends,
            "fsyncs": self.fsyncs,
            "bytes_written": self.bytes_written,
            "rotations": self.rotations,
        }


def segment_path(directory: Path, number: int) -> Path:
    return directory / f"{SEGMENT_PREFIX}{number:08d}{SEGMENT_SUFFIX}"


def segment_number(path: Path) -> int:
    stem = path.name[len(SEGMENT_PREFIX) : -len(SEGMENT_SUFFIX)]
    try:
        return int(stem)
    except ValueError as exc:
        raise WalError(f"not a WAL segment name: {path.name}") from exc


def list_segments(directory: Union[str, Path]) -> List[Tuple[int, Path]]:
    """``(number, path)`` for every segment in ``directory``, ascending."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = []
    for path in directory.iterdir():
        if path.name.startswith(SEGMENT_PREFIX) and path.name.endswith(
            SEGMENT_SUFFIX
        ):
            found.append((segment_number(path), path))
    return sorted(found)


@dataclass
class SegmentScan:
    """What a best-effort read of one segment file yielded."""

    path: Path
    records: List[WalRecord] = field(default_factory=list)
    #: End byte offset of each decoded record (parallel to ``records``).
    end_offsets: List[int] = field(default_factory=list)
    #: Bytes of the valid record prefix (truncation point for repair).
    valid_bytes: int = 0
    #: A partial frame at EOF: the expected torn-write shape, not corruption.
    torn_tail: bool = False
    #: A complete frame whose CRC (or payload) did not verify; scanning
    #: stops there -- framing past a bad record cannot be trusted.
    corrupt: bool = False


def scan_segment(path: Union[str, Path]) -> SegmentScan:
    """Decode the valid record prefix of one segment.

    Tolerant by construction: a short header or short payload at EOF is a
    torn tail (the crash the WAL exists to survive); a CRC mismatch is
    corruption.  Either way the scan stops and reports how many bytes were
    trustworthy.
    """
    path = Path(path)
    scan = SegmentScan(path=path)
    data = path.read_bytes()
    offset = 0
    while offset < len(data):
        if offset + _HEADER.size > len(data):
            scan.torn_tail = True
            break
        length, crc = _HEADER.unpack_from(data, offset)
        payload = data[offset + _HEADER.size : offset + _HEADER.size + length]
        if len(payload) < length:
            scan.torn_tail = True
            break
        if zlib.crc32(payload) != crc:
            scan.corrupt = True
            break
        try:
            scan.records.append(WalRecord.from_payload(payload))
        except WalError:
            scan.corrupt = True
            break
        offset += _HEADER.size + length
        scan.end_offsets.append(offset)
        scan.valid_bytes = offset
    return scan


class WriteAheadLog:
    """An append-only record log over rotating segment files.

    A writer never appends to a pre-existing segment: reopening a directory
    (e.g. after a crash that recovery chose not to repair) starts a fresh
    segment, so a torn tail in an old file can never be written *past*.
    Sequence numbers continue from the highest found on disk unless the
    owner (a :class:`~repro.durability.manager.DurabilityManager` with a
    global sequence) supplies them explicitly.

    Args:
        directory: segment directory (created if missing).
        sync: a :class:`SyncPolicy` or its string spec.
        segment_bytes: rotate to a new segment once the current one reaches
            this size (checked after each append).
        fault: optional :class:`~repro.durability.faults.FaultInjector`;
            every physical frame write and fsync is routed through it.
        metrics: observability sink (defaults to the global registry, which
            is disabled unless an entry point opted in).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        sync: Union[str, SyncPolicy] = "group:8",
        segment_bytes: int = 1 << 20,
        fault=None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.sync_policy = SyncPolicy.parse(sync)
        self.segment_bytes = segment_bytes
        self.stats = WalStats()
        self.metrics = metrics if metrics is not None else get_registry()
        self._fault = fault
        self._pending_sync = 0
        self._closed = False

        existing = list_segments(self.directory)
        self._segment = (existing[-1][0] + 1) if existing else 1
        self._next_seq = 1
        for _, path in existing:
            scanned = scan_segment(path)
            if scanned.records:
                self._next_seq = max(
                    self._next_seq, scanned.records[-1].seq + 1
                )
        self._fh = open(segment_path(self.directory, self._segment), "ab")

    # -- writing ---------------------------------------------------------

    @property
    def last_seq(self) -> int:
        """The highest sequence number this writer has appended (0 if none)."""
        return self._next_seq - 1

    @property
    def segment(self) -> int:
        return self._segment

    def append(
        self,
        op: str,
        *,
        oid: Optional[int] = None,
        point: Optional[Tuple[float, ...]] = None,
        old_point: Optional[Tuple[float, ...]] = None,
        t: Optional[float] = None,
        seq: Optional[int] = None,
        client: Optional[str] = None,
        rid: Optional[int] = None,
    ) -> int:
        """Append one record; returns its sequence number.

        The record is durable per the sync policy -- ``always`` means it hit
        the platter before this returns; group/onflush mean it is staged.
        """
        if self._closed:
            raise WalError("append to a closed WAL")
        if seq is None:
            seq = self._next_seq
        self._next_seq = max(self._next_seq, seq + 1)
        record = WalRecord(
            op=op, seq=seq, t=t, oid=oid, point=point, old_point=old_point,
            client=client, rid=rid,
        )
        frame = record.to_frame()
        if self._fault is not None:
            self._fault.write_frame(self._fh, frame)
        else:
            self._fh.write(frame)
        self.stats.appends += 1
        self.stats.bytes_written += len(frame)
        self._pending_sync += 1
        if self.metrics.enabled:
            self.metrics.inc("wal.appends")
            self.metrics.inc("wal.bytes", len(frame))
        if self.sync_policy.sync_after(self._pending_sync, op):
            self.sync()
        if self._fh.tell() >= self.segment_bytes:
            self.rotate()
        return seq

    def sync(self) -> None:
        """Flush and fsync the active segment (one group commit)."""
        if self._pending_sync == 0:
            return
        if self._fault is not None:
            self._fault.before_sync()
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.stats.fsyncs += 1
        if self.metrics.enabled:
            self.metrics.inc("wal.fsyncs")
            self.metrics.observe("wal.group_commit_records", self._pending_sync)
        self._pending_sync = 0

    def rotate(self) -> int:
        """Close the active segment and open the next one."""
        self.sync()
        self._fh.close()
        self._segment += 1
        self._fh = open(segment_path(self.directory, self._segment), "ab")
        self.stats.rotations += 1
        return self._segment

    def truncate_covered(self, covered_seq: int) -> int:
        """Delete closed segments wholly covered by a checkpoint.

        A segment is obsolete when every record in it has ``seq <=
        covered_seq``; the active segment is never deleted.  Returns the
        number of segments removed.
        """
        removed = 0
        for number, path in list_segments(self.directory):
            if number == self._segment:
                continue
            scanned = scan_segment(path)
            if scanned.records and scanned.records[-1].seq > covered_seq:
                continue
            if scanned.torn_tail or scanned.corrupt:
                # A damaged segment is recovery's to repair, not ours.
                continue
            path.unlink()
            removed += 1
        return removed

    def close(self) -> None:
        if self._closed:
            return
        try:
            self.sync()
        finally:
            self._fh.close()
            self._closed = True

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog(dir={str(self.directory)!r}, "
            f"segment={self._segment}, last_seq={self.last_seq}, "
            f"sync={self.sync_policy.spec()!r})"
        )


@dataclass
class DirectoryScan:
    """Every decodable record in a WAL directory, plus damage observed."""

    records: List[WalRecord] = field(default_factory=list)
    torn_tail: bool = False
    corrupt_segments: int = 0
    missing_segments: List[int] = field(default_factory=list)
    segments: int = 0


def scan_directory(directory: Union[str, Path]) -> DirectoryScan:
    """Scan every segment in order; damage stops *that* segment only.

    Cross-segment ordering trusts the per-record sequence numbers (recovery
    enforces contiguity), so a scan keeps reading later segments even when
    an earlier one is damaged -- the seq gap, not the scan, decides what is
    replayable.
    """
    result = DirectoryScan()
    segments = list_segments(directory)
    result.segments = len(segments)
    previous_number: Optional[int] = None
    for number, path in segments:
        if previous_number is not None and number != previous_number + 1:
            result.missing_segments.extend(range(previous_number + 1, number))
        previous_number = number
        scanned = scan_segment(path)
        result.records.extend(scanned.records)
        if scanned.torn_tail:
            result.torn_tail = True
        if scanned.corrupt:
            result.corrupt_segments += 1
    return result


def iter_data_records(records: List[WalRecord]) -> Iterator[WalRecord]:
    """The insert/update/delete records of a scan, markers skipped."""
    for record in records:
        if record.op in WalOp.DATA:
            yield record
