"""Counters, wall-clock timers, and value summaries behind one registry.

The paper's evaluation is an accounting exercise (page I/Os attributed to
updates vs. queries); :class:`~repro.storage.iostats.IOStats` covers that
ledger.  Everything else an experiment wants to know -- how long a phase
took, how the per-operation latency is distributed, how often the buffer
pool hit -- funnels through a :class:`MetricsRegistry`.

Design constraints:

* **Default-off.**  The global registry starts disabled; a disabled registry
  turns every recording call into a cheap early return and :meth:`timer`
  into a shared no-op context manager, so instrumented hot paths cost a
  single branch when observability is not requested.
* **JSON-ready.**  :meth:`MetricsRegistry.to_dict` renders the whole
  registry as plain dicts/floats for ``--metrics-out`` and the bench files.
* **Deterministic.**  The registry stores what callers hand it; it never
  consults clocks on its own (timers use ``time.perf_counter`` only inside
  an explicitly entered span).
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Optional


class Summary:
    """Streaming summary of an observed value series (count/total/min/max).

    A deliberately boring histogram substitute: experiments at reproduction
    scale want means and extremes, not bucket boundaries, and a four-slot
    summary keeps ``observe`` allocation-free.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
        }

    def __repr__(self) -> str:
        return f"Summary(count={self.count}, mean={self.mean:.6g})"


class _NullTimer:
    """The context manager handed out by a disabled registry."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_TIMER = _NullTimer()


class _Timer:
    """A live span: observes its wall-clock duration on exit."""

    __slots__ = ("_summary", "_t0")

    def __init__(self, summary: Summary) -> None:
        self._summary = summary
        self._t0 = 0.0

    def __enter__(self) -> "_Timer":
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._summary.observe(perf_counter() - self._t0)


class MetricsRegistry:
    """Named counters, timers, and value summaries for one experiment run.

    Args:
        enabled: record calls are no-ops when False (the default for the
            process-global registry; explicit registries default to on).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, int] = {}
        self._values: Dict[str, Summary] = {}
        self._timers: Dict[str, Summary] = {}

    # -- recording -------------------------------------------------------

    def inc(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the counter ``name``."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + value

    def observe(self, name: str, value: float) -> None:
        """Record one sample of the value series ``name``."""
        if not self.enabled:
            return
        summary = self._values.get(name)
        if summary is None:
            summary = self._values[name] = Summary()
        summary.observe(value)

    def timer(self, name: str):
        """A context manager timing a span into the timer series ``name``."""
        if not self.enabled:
            return _NULL_TIMER
        summary = self._timers.get(name)
        if summary is None:
            summary = self._timers[name] = Summary()
        return _Timer(summary)

    def record_duration(self, name: str, seconds: float) -> None:
        """Record an externally measured span into the timer series."""
        if not self.enabled:
            return
        summary = self._timers.get(name)
        if summary is None:
            summary = self._timers[name] = Summary()
        summary.observe(seconds)

    # -- reporting -------------------------------------------------------

    def counter_value(self, name: str) -> int:
        return self._counters.get(name, 0)

    def value_summary(self, name: str) -> Optional[Summary]:
        return self._values.get(name)

    def timer_summary(self, name: str) -> Optional[Summary]:
        return self._timers.get(name)

    def to_dict(self) -> Dict[str, object]:
        """The whole registry as JSON-ready plain data."""
        return {
            "enabled": self.enabled,
            "counters": dict(sorted(self._counters.items())),
            "values": {k: s.to_dict() for k, s in sorted(self._values.items())},
            "timers": {k: s.to_dict() for k, s in sorted(self._timers.items())},
        }

    def reset(self) -> None:
        self._counters.clear()
        self._values.clear()
        self._timers.clear()

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(enabled={self.enabled}, "
            f"counters={len(self._counters)}, values={len(self._values)}, "
            f"timers={len(self._timers)})"
        )


#: Process-global registry: disabled until an entry point (``--metrics-out``,
#: the bench harness) opts in, so library code can record unconditionally.
_GLOBAL = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    """The process-global registry (disabled by default)."""
    return _GLOBAL


def set_enabled(enabled: bool) -> MetricsRegistry:
    """Enable/disable the global registry; returns it for chaining."""
    _GLOBAL.enabled = enabled
    return _GLOBAL
