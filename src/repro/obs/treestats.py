"""Structural probes: the shape of an index as JSON-ready numbers.

``tree_stats`` walks a paged tree **uncharged** (via ``Pager.inspect``) and
reports the quantities the paper's analysis reasons about -- height, node
count, fanout distribution, MBR dead space -- plus the CT-R-tree's own
structural inventory (qs-region count, chain pages, overflow buffers).

The walker is duck-typed: anything exposing ``pager``, ``root_pid``,
``height`` and ``max_entries`` with R-tree-style nodes (``level``,
``entries``, ``is_leaf``) qualifies, which covers the traditional R-tree,
the lazy-R-tree, the alpha-tree, and the CT-R-tree's structural tree.
"""

from __future__ import annotations

from typing import Dict, List


def _dead_space(node) -> float:
    """1 - (summed child area / covering area), clamped to [0, 1].

    A cheap proxy for the wasted volume a query pays for: child overlap can
    push the summed area past the cover, in which case dead space clamps to
    zero rather than going negative.
    """
    tight = node.tight_mbr()
    if tight is None:
        return 0.0
    cover = tight.area
    if cover <= 0.0:
        return 0.0
    covered = sum(entry.rect.area for entry in node.entries)
    return max(0.0, min(1.0, 1.0 - covered / cover))


def tree_stats(index) -> Dict[str, object]:
    """Shape statistics for a paged tree index.

    Returns a plain dict (JSON-ready) with at least ``height``, ``size``,
    ``node_count``, ``leaf_count``, ``entry_count``, ``fanout`` (min/max/
    mean), ``fanout_hist`` and ``mbr_dead_space_ratio``.  CT-R-trees
    additionally report ``qs_region_count``, ``chain_pages``,
    ``buffered_objects`` and ``buffer_trees``; the lazy-R-tree reports its
    ``lazy_hits``/``relocations`` tallies.
    """
    if hasattr(index, "inner") and hasattr(index, "health_state"):
        # The health layer's self-healing wrapper: probe whatever structure
        # is currently serving (post-cutover that is the rebuilt shadow).
        return tree_stats(index.inner)
    collect = getattr(index, "collect_tree_stats", None)
    if collect is not None:
        # An index whose structure is not parent-resident (the parallel
        # engine's process workers) gathers its own per-shard probes.
        return collect()
    outer = index
    if hasattr(index, "shards") and hasattr(index, "partition"):
        # The engine's sharded router: aggregate the per-shard probes.
        return _sharded_stats(index)
    if not hasattr(index, "root_pid") and hasattr(index, "tree"):
        # Wrapper indexes (the lazy-R-tree) delegate the paged tree itself.
        index = index.tree
    pager = index.pager
    is_ct = hasattr(index, "iter_qs_entries")

    node_count = 0
    leaf_count = 0
    entry_count = 0
    fills: List[int] = []
    fanout_hist: Dict[str, int] = {}
    dead_spaces: List[float] = []
    chain_pages = 0

    stack = [index.root_pid]
    while stack:
        node = pager.inspect(stack.pop())
        node_count += 1
        fill = len(node.entries)
        entry_count += fill
        fills.append(fill)
        fanout_hist[str(fill)] = fanout_hist.get(str(fill), 0) + 1
        if node.is_leaf:
            leaf_count += 1
            # R-tree leaves hold degenerate (point) rectangles -- dead space
            # is vacuously ~1 there, so only region-bearing leaves (the
            # CT-R-tree's qs-region level) contribute to the ratio.
            if is_ct and node.entries:
                dead_spaces.append(_dead_space(node))
            for entry in node.entries:
                chain = getattr(entry, "chain", None)
                if chain is not None:
                    chain_pages += len(chain)
        else:
            if node.entries:
                dead_spaces.append(_dead_space(node))
            stack.extend(entry.child for entry in node.entries)

    stats: Dict[str, object] = {
        "height": index.height,
        "size": len(index),
        "node_count": node_count,
        "leaf_count": leaf_count,
        "internal_count": node_count - leaf_count,
        "entry_count": entry_count,
        "max_entries": index.max_entries,
        "fanout": {
            "min": min(fills) if fills else 0,
            "max": max(fills) if fills else 0,
            "mean": sum(fills) / len(fills) if fills else 0.0,
        },
        "fanout_hist": dict(sorted(fanout_hist.items(), key=lambda kv: int(kv[0]))),
        "avg_fill": (
            sum(fills) / (len(fills) * index.max_entries) if fills else 0.0
        ),
        "mbr_dead_space_ratio": (
            sum(dead_spaces) / len(dead_spaces) if dead_spaces else 0.0
        ),
    }

    if is_ct:
        stats["qs_region_count"] = index.region_count
        stats["chain_pages"] = chain_pages
        stats["buffered_objects"] = index.buffered_object_count()
        stats["buffer_trees"] = len(getattr(index, "_buffer_trees", {}))

    for tally in ("lazy_hits", "relocations"):
        value = getattr(outer, tally, None)
        if value is not None:
            stats[tally] = value

    return stats


def _sharded_stats(index) -> Dict[str, object]:
    """Aggregate probe over a sharded engine: per-shard stats plus sums.

    Sums what adds (sizes, node/entry counts, tally counters), maxes what
    does not (height), and keeps the per-shard breakdown so skew -- the
    failure mode of a static partition -- stays visible.
    """
    per_shard = [tree_stats(shard.index) for shard in index.shards]
    return aggregate_shard_stats(per_shard, index)


def aggregate_shard_stats(per_shard, index) -> Dict[str, object]:
    """Aggregate already-collected per-shard probe dicts (see
    :func:`_sharded_stats`); the parallel engine calls this with probes its
    workers computed in their own processes."""
    sizes = [int(s.get("size", 0)) for s in per_shard]
    aggregated: Dict[str, object] = {
        "sharded": True,
        "kind": getattr(index, "kind", "?"),
        "n_shards": len(per_shard),
        "size": sum(sizes),
        "height": max((int(s.get("height", 0)) for s in per_shard), default=0),
        "node_count": sum(int(s.get("node_count", 0)) for s in per_shard),
        "leaf_count": sum(int(s.get("leaf_count", 0)) for s in per_shard),
        "entry_count": sum(int(s.get("entry_count", 0)) for s in per_shard),
        "cross_shard_moves": getattr(index, "cross_shard_moves", 0),
        "shard_sizes": sizes,
        "shard_skew": (
            max(sizes) / (sum(sizes) / len(sizes)) if sizes and sum(sizes) else 0.0
        ),
        "shards": per_shard,
    }
    for tally in ("lazy_hits", "relocations"):
        if any(tally in s for s in per_shard):
            aggregated[tally] = sum(int(s.get(tally, 0)) for s in per_shard)
    if any("qs_region_count" in s for s in per_shard):
        aggregated["qs_region_count"] = sum(
            int(s.get("qs_region_count", 0)) for s in per_shard
        )
    return aggregated
