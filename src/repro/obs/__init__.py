"""Observability: metrics registry, wall-clock timers, structural probes.

One import surface for everything the experiments measure beyond the page-I/O
ledger (:mod:`repro.storage.iostats`):

* :class:`MetricsRegistry` -- counters, timers, value summaries; the global
  instance (:func:`get_registry`) is **disabled by default** so instrumented
  hot paths stay free until an entry point opts in via :func:`set_enabled`;
* :func:`tree_stats` -- the shape of a paged tree (height, fanout, MBR dead
  space, qs-region inventory) as a JSON-ready dict.
"""

from repro.obs.metrics import (
    MetricsRegistry,
    Summary,
    get_registry,
    set_enabled,
)
from repro.obs.treestats import tree_stats

__all__ = [
    "MetricsRegistry",
    "Summary",
    "get_registry",
    "set_enabled",
    "tree_stats",
]
