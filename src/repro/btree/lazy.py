"""The lazy B+-tree: Figure 1's secondary hash index, transplanted to 1-D.

Exactly the paper's Section-2.1 move: keep a hash index on object id pointing
at the leaf page holding the object.  An update whose new key stays inside
the leaf's covered interval rewrites the leaf in place -- one bucket read,
one leaf read, one leaf write -- and the B+-tree structure does not change.
Updates that cross a separator fall back to a pointer-based delete plus a
fresh insert.
"""

from __future__ import annotations

from bisect import insort
from typing import List, Optional, Tuple

from repro.btree.bptree import BNode, BPlusTree
from repro.hashindex import HashIndex
from repro.storage.page import PageId
from repro.storage.pager import Pager


class LazyBPlusTree:
    """B+-tree with lazy updates through a secondary hash index on object id."""

    def __init__(
        self,
        pager: Pager,
        max_entries: int = 20,
        hash_index: Optional[HashIndex] = None,
    ) -> None:
        self.tree = BPlusTree(
            pager, max_entries=max_entries, on_entries_moved=self._entries_moved
        )
        self.hash = hash_index if hash_index is not None else HashIndex(pager)
        self.lazy_hits = 0
        self.relocations = 0

    def _entries_moved(self, pairs: List[Tuple[int, PageId]]) -> None:
        self.hash.set_many(pairs)

    @property
    def pager(self) -> Pager:
        return self.tree.pager

    def __len__(self) -> int:
        return len(self.tree)

    # -- operations ---------------------------------------------------------

    def insert(self, obj_id: int, key: float) -> PageId:
        pid = self.tree.insert(obj_id, key)
        self.hash.set(obj_id, pid)
        return pid

    def delete(self, obj_id: int) -> bool:
        pid = self.hash.get(obj_id)
        if pid is None:
            return False
        if self.tree.delete_at(obj_id, pid) is None:
            return False
        self.hash.remove(obj_id)
        return True

    def update(
        self,
        obj_id: int,
        old_key: float,
        new_key: float,
        now: Optional[float] = None,
    ) -> PageId:
        """Move ``obj_id`` to ``new_key``; lazy while the leaf interval holds.

        ``old_key``/``now`` are accepted for interface parity and unused.
        """
        del old_key, now
        pid = self.hash.get(obj_id)
        if pid is None:
            raise KeyError(f"object {obj_id} is not indexed")
        leaf = self.tree.pager.read(pid)
        assert isinstance(leaf, BNode)
        index = leaf.find_entry(obj_id)
        if index is None:
            raise KeyError(f"stale hash pointer for object {obj_id}")
        composite = (float(new_key), obj_id)
        if leaf.covers(composite):
            leaf.entries.pop(index)
            insort(leaf.entries, composite)
            self.tree.pager.write(leaf)
            self.lazy_hits += 1
            return pid
        self.relocations += 1
        self.tree.delete_from_node(leaf, index)
        new_pid = self.tree.insert(obj_id, new_key)
        self.hash.set(obj_id, new_pid)
        return new_pid

    def range_search(self, low: float, high: float) -> List[Tuple[int, float]]:
        return self.tree.range_search(low, high)

    def search(self, key: float) -> List[int]:
        return self.tree.search(key)

    # -- uncharged introspection ------------------------------------------

    def validate(self) -> List[str]:
        problems = self.tree.validate()
        for leaf in self.tree.iter_leaves():
            for _key, oid in leaf.entries:
                pointed = self.hash.peek(oid)
                if pointed != leaf.pid:
                    problems.append(
                        f"hash points object {oid} at page {pointed}, "
                        f"but it lives in {leaf.pid}"
                    )
        return problems

    def __repr__(self) -> str:
        return (
            f"LazyBPlusTree(size={len(self.tree)}, "
            f"lazy_hits={self.lazy_hits}, relocations={self.relocations})"
        )
