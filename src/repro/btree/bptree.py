"""A paged B+-tree over scalar keys.

The substrate for the change-tolerant extension study: objects are (id, key)
pairs where the key is a constantly-evolving scalar (a sensor reading).
Leaves hold sorted entries and are doubly linked for range scans; internal
nodes hold separators.  I/O is charged through the shared pager: one read
per node visited, one write per node mutated -- identical to the R-tree
family, so 1-D comparisons are apples-to-apples.

Two design notes:

* **Composite keys.**  Sensor readings collide (two sensors at 20.0 degC),
  and duplicate keys wreck separator invariants.  Internally every entry and
  separator is the composite ``(key, obj_id)`` -- totally ordered and unique
  -- while the public API speaks plain scalars.
* **Relaxed deletion.**  Like the lazy R-tree variants, an underfull node is
  tolerated; only an empty node is unlinked.  Every update is a delete +
  re-insert (the traditional cost the lazy/CT variants attack).

Each node mirrors its covered composite interval ``(low, high]`` as
uncharged metadata -- the 1-D analogue of the R-tree's ``mbr`` mirror --
which is what gives the lazy variant its "same interval" test.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from typing import Callable, Iterator, List, Optional, Tuple

from repro.storage.page import NO_PAGE, Page, PageId
from repro.storage.pager import Pager

#: Composite key: (scalar key, object id) -- unique and totally ordered.
Composite = Tuple[float, int]

LOW_SENTINEL: Composite = (-math.inf, -1)
HIGH_SENTINEL: Composite = (math.inf, 1 << 62)

#: Callback fired when leaf entries move pages (splits), mirroring the
#: R-tree's hook so a secondary hash index can stay exact.
MovedCallback = Callable[[List[Tuple[int, PageId]]], None]


class BNode(Page):
    """One B+-tree node (leaf or internal)."""

    __slots__ = (
        "leaf",
        "entries",
        "keys",
        "children",
        "parent",
        "prev_leaf",
        "next_leaf",
        "low",
        "high",
    )

    def __init__(self, leaf: bool) -> None:
        super().__init__()
        self.leaf = leaf
        #: Leaf payload: sorted composites.
        self.entries: List[Composite] = []
        #: Internal payload: separator composites (len == len(children) - 1).
        self.keys: List[Composite] = []
        self.children: List[PageId] = []
        self.parent: PageId = NO_PAGE
        self.prev_leaf: PageId = NO_PAGE
        self.next_leaf: PageId = NO_PAGE
        #: Covered interval (low, high]; metadata mirror of the parent's
        #: separators (sentinels at the edges).
        self.low: Composite = LOW_SENTINEL
        self.high: Composite = HIGH_SENTINEL

    @property
    def is_root(self) -> bool:
        return self.parent == NO_PAGE

    def covers(self, composite: Composite) -> bool:
        return self.low < composite <= self.high

    def find_entry(self, obj_id: int) -> Optional[int]:
        for i, (_key, oid) in enumerate(self.entries):
            if oid == obj_id:
                return i
        return None

    def __repr__(self) -> str:
        kind = "leaf" if self.leaf else "internal"
        size = len(self.entries) if self.leaf else len(self.children)
        return f"BNode(pid={self.pid}, {kind}, size={size})"


class BPlusTree:
    """Disk-based B+-tree mapping scalar keys to object ids.

    Args:
        pager: shared page store.
        max_entries: leaf capacity and internal fan-out (``N_entry``).
        on_entries_moved: see :data:`MovedCallback`.
    """

    def __init__(
        self,
        pager: Pager,
        max_entries: int = 20,
        on_entries_moved: Optional[MovedCallback] = None,
    ) -> None:
        if max_entries < 4:
            raise ValueError("max_entries must be at least 4")
        self._pager = pager
        self.max_entries = max_entries
        self.on_entries_moved = on_entries_moved
        self._size = 0
        root = BNode(leaf=True)
        pager.allocate(root)
        self._root_pid = root.pid

    # -- properties --------------------------------------------------------

    @property
    def pager(self) -> Pager:
        return self._pager

    @property
    def root_pid(self) -> PageId:
        return self._root_pid

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        height = 1
        node = self._inspect(self._root_pid)
        while not node.leaf:
            height += 1
            node = self._inspect(node.children[0])
        return height

    # -- node access ---------------------------------------------------------

    def _read(self, pid: PageId) -> BNode:
        node = self._pager.read(pid)
        assert isinstance(node, BNode)
        return node

    def _inspect(self, pid: PageId) -> BNode:
        node = self._pager.inspect(pid)
        assert isinstance(node, BNode)
        return node

    def _descend(self, composite: Composite) -> List[BNode]:
        """Root-to-leaf path for a composite key (charged reads)."""
        node = self._read(self._root_pid)
        path = [node]
        while not node.leaf:
            index = bisect_left(node.keys, composite)
            node = self._read(node.children[index])
            path.append(node)
        return path

    # -- insertion ---------------------------------------------------------------

    def insert(self, obj_id: int, key: float) -> PageId:
        """Insert (key, obj_id); returns the leaf page id holding it."""
        composite = (float(key), obj_id)
        path = self._descend(composite)
        leaf = path[-1]
        insort(leaf.entries, composite)
        self._size += 1
        if len(leaf.entries) > self.max_entries:
            return self._split(path, obj_id)
        self._pager.write(leaf)
        return leaf.pid

    def _split(self, path: List[BNode], placed_oid: int) -> PageId:
        """Split the overfull tail of the path upward; returns the leaf pid
        that ended up holding ``placed_oid``."""
        placed_pid = NO_PAGE
        while path:
            node = path.pop()
            if node.leaf:
                mid = len(node.entries) // 2
                separator = node.entries[mid - 1]
                right = BNode(leaf=True)
                right.entries = node.entries[mid:]
                node.entries = node.entries[:mid]
                right.low, right.high = separator, node.high
                node.high = separator
                right.next_leaf = node.next_leaf
                right.prev_leaf = node.pid
                self._pager.allocate(right)
                if right.next_leaf != NO_PAGE:
                    old_next = self._read(right.next_leaf)
                    old_next.prev_leaf = right.pid
                    self._pager.write(old_next)
                node.next_leaf = right.pid
                self._pager.write(node)
                moved = [(oid, right.pid) for _k, oid in right.entries]
                if moved and self.on_entries_moved is not None:
                    self.on_entries_moved(moved)
                if placed_pid == NO_PAGE:
                    in_right = any(oid == placed_oid for _k, oid in right.entries)
                    placed_pid = right.pid if in_right else node.pid
            else:
                mid = len(node.children) // 2
                separator = node.keys[mid - 1]
                right = BNode(leaf=False)
                right.keys = node.keys[mid:]
                right.children = node.children[mid:]
                node.keys = node.keys[: mid - 1]
                node.children = node.children[:mid]
                right.low, right.high = separator, node.high
                node.high = separator
                self._pager.allocate(right)
                self._pager.write(node)
                for child_pid in right.children:
                    self._inspect(child_pid).parent = right.pid

            if path:
                parent = path[-1]
                index = parent.children.index(node.pid)
                parent.keys.insert(index, separator)
                parent.children.insert(index + 1, right.pid)
                right.parent = parent.pid
                if len(parent.children) <= self.max_entries:
                    self._pager.write(parent)
                    return placed_pid
                # else: continue the loop and split the parent too
            else:
                new_root = BNode(leaf=False)
                new_root.keys = [separator]
                new_root.children = [node.pid, right.pid]
                self._pager.allocate(new_root)
                node.parent = new_root.pid
                right.parent = new_root.pid
                self._root_pid = new_root.pid
                return placed_pid
        return placed_pid

    # -- deletion --------------------------------------------------------------

    def delete(self, obj_id: int, key: float) -> bool:
        """Remove (key, obj_id) by descending on the key (charged reads)."""
        composite = (float(key), obj_id)
        path = self._descend(composite)
        leaf = path[-1]
        index = bisect_left(leaf.entries, composite)
        if index >= len(leaf.entries) or leaf.entries[index] != composite:
            return False
        self._remove_from_leaf(leaf, index)
        return True

    def delete_at(self, obj_id: int, leaf_pid: PageId) -> Optional[float]:
        """Pointer-based deletion (the secondary-index shortcut); returns the
        removed key or None for a stale pointer."""
        if not self._pager.contains(leaf_pid):
            return None
        leaf = self._read(leaf_pid)
        if not leaf.leaf:
            return None
        index = leaf.find_entry(obj_id)
        if index is None:
            return None
        key = leaf.entries[index][0]
        self._remove_from_leaf(leaf, index)
        return key

    def delete_from_node(self, leaf: BNode, index: int) -> float:
        """Remove entry ``index`` from an already-read (pinned) leaf."""
        key = leaf.entries[index][0]
        self._remove_from_leaf(leaf, index)
        return key

    def _remove_from_leaf(self, leaf: BNode, index: int) -> None:
        leaf.entries.pop(index)
        self._size -= 1
        if leaf.entries or leaf.is_root:
            self._pager.write(leaf)
            return
        self._unlink_empty_leaf(leaf)

    def _unlink_empty_leaf(self, leaf: BNode) -> None:
        """Relaxed underflow: only empty nodes are removed.

        The chain splice only rewires pointers; the vacated key interval is
        redistributed by :meth:`_remove_from_parent` through the separator
        bookkeeping (the absorbing sibling is chosen by the *parent*, which
        is not always the chain neighbour)."""
        if leaf.prev_leaf != NO_PAGE:
            prev = self._read(leaf.prev_leaf)
            prev.next_leaf = leaf.next_leaf
            self._pager.write(prev)
        if leaf.next_leaf != NO_PAGE:
            nxt = self._read(leaf.next_leaf)
            nxt.prev_leaf = leaf.prev_leaf
            self._pager.write(nxt)
        self._remove_from_parent(leaf)

    def _remove_from_parent(self, node: BNode) -> None:
        parent_pid = node.parent
        vacated = (node.low, node.high)
        node_pid = node.pid  # free() resets the page's pid
        self._pager.free(node_pid)
        if parent_pid == NO_PAGE:
            # The tree emptied entirely: re-bootstrap a leaf root.
            root = BNode(leaf=True)
            self._pager.allocate(root)
            self._root_pid = root.pid
            return
        parent = self._read(parent_pid)
        index = parent.children.index(node_pid)
        parent.children.pop(index)
        if parent.keys:
            if index == 0:
                # The vacated low interval flows to the new first child.
                parent.keys.pop(0)
                self._widen_low(parent.children[0], vacated[0])
            else:
                parent.keys.pop(index - 1)
                self._widen_high(parent.children[index - 1], vacated[1])
        if not parent.children:
            self._remove_from_parent(parent)
            return
        self._pager.write(parent)
        self._collapse_root()

    def _widen_low(self, pid: PageId, new_low: Composite) -> None:
        """Push an interval's lower bound down the leftmost spine (metadata)."""
        node = self._inspect(pid)
        node.low = new_low
        if not node.leaf:
            self._widen_low(node.children[0], new_low)

    def _widen_high(self, pid: PageId, new_high: Composite) -> None:
        """Push an interval's upper bound down the rightmost spine (metadata)."""
        node = self._inspect(pid)
        node.high = new_high
        if not node.leaf:
            self._widen_high(node.children[-1], new_high)

    def _collapse_root(self) -> None:
        root = self._inspect(self._root_pid)
        while not root.leaf and len(root.children) == 1:
            child = self._read(root.children[0])
            child.parent = NO_PAGE
            self._pager.free(root.pid)
            self._root_pid = child.pid
            self._pager.write(child)
            # The new root spans everything: push the sentinel bounds down
            # both spines (metadata).
            self._widen_low(child.pid, LOW_SENTINEL)
            self._widen_high(child.pid, HIGH_SENTINEL)
            root = child

    # -- update -------------------------------------------------------------------

    def update(
        self, obj_id: int, old_key: float, new_key: float, now: Optional[float] = None
    ) -> PageId:
        """Traditional update: delete at the old key, re-insert at the new."""
        del now
        if not self.delete(obj_id, old_key):
            raise KeyError(f"object {obj_id} not found at key {old_key}")
        return self.insert(obj_id, new_key)

    # -- queries --------------------------------------------------------------------

    def range_search(self, low: float, high: float) -> List[Tuple[int, float]]:
        """All (obj_id, key) with ``low <= key <= high`` via the leaf chain."""
        if high < low:
            return []
        path = self._descend((float(low), -1))
        leaf = path[-1]
        results: List[Tuple[int, float]] = []
        while True:
            for key, oid in leaf.entries:
                if key > high:
                    return results
                if key >= low:
                    results.append((oid, key))
            if leaf.next_leaf == NO_PAGE:
                return results
            leaf = self._read(leaf.next_leaf)

    def search(self, key: float) -> List[int]:
        return [oid for oid, _k in self.range_search(key, key)]

    # -- uncharged introspection --------------------------------------------------------

    def iter_leaves(self) -> Iterator[BNode]:
        node = self._inspect(self._root_pid)
        while not node.leaf:
            node = self._inspect(node.children[0])
        while True:
            yield node
            if node.next_leaf == NO_PAGE:
                return
            node = self._inspect(node.next_leaf)

    def iter_entries(self) -> Iterator[Tuple[int, float]]:
        for leaf in self.iter_leaves():
            for key, oid in leaf.entries:
                yield oid, key

    def node_count(self) -> int:
        count = 0
        stack = [self._root_pid]
        while stack:
            node = self._inspect(stack.pop())
            count += 1
            if not node.leaf:
                stack.extend(node.children)
        return count

    def validate(self) -> List[str]:
        """Structural invariants; returns violation messages."""
        problems: List[str] = []
        root = self._inspect(self._root_pid)
        if root.parent != NO_PAGE:
            problems.append("root has a parent pointer")
        counted = 0
        stack: List[Tuple[PageId, Composite, Composite]] = [
            (self._root_pid, LOW_SENTINEL, HIGH_SENTINEL)
        ]
        leaves_by_tree: List[PageId] = []
        while stack:
            pid, low, high = stack.pop()
            node = self._inspect(pid)
            if (node.low, node.high) != (low, high):
                problems.append(
                    f"node {pid}: interval mirror {(node.low, node.high)} != {(low, high)}"
                )
            if node.leaf:
                leaves_by_tree.append(pid)
                counted += len(node.entries)
                if node.entries != sorted(node.entries):
                    problems.append(f"leaf {pid}: entries out of order")
                for composite in node.entries:
                    if not low < composite <= high:
                        problems.append(
                            f"leaf {pid}: {composite} outside ({low}, {high}]"
                        )
            else:
                if len(node.children) != len(node.keys) + 1:
                    problems.append(f"node {pid}: keys/children arity mismatch")
                if node.keys != sorted(node.keys):
                    problems.append(f"node {pid}: separators out of order")
                if len(node.children) > self.max_entries:
                    problems.append(f"node {pid}: overfull")
                bounds = [low] + list(node.keys) + [high]
                for i, child_pid in enumerate(node.children):
                    child = self._inspect(child_pid)
                    if child.parent != pid:
                        problems.append(f"node {child_pid}: bad parent pointer")
                    stack.append((child_pid, bounds[i], bounds[i + 1]))
        if counted != self._size:
            problems.append(f"size {self._size} != stored entries {counted}")

        chain = [leaf.pid for leaf in self.iter_leaves()]
        if sorted(chain) != sorted(leaves_by_tree):
            problems.append("leaf chain does not match the tree's leaves")
        previous_last: Optional[Composite] = None
        for leaf in self.iter_leaves():
            if leaf.entries:
                if previous_last is not None and leaf.entries[0] < previous_last:
                    problems.append(f"leaf {leaf.pid}: chain out of key order")
                previous_last = leaf.entries[-1]
        return problems

    def __repr__(self) -> str:
        return f"BPlusTree(size={self._size}, height={self.height})"
