"""Change-tolerant indexing beyond R-trees (paper Section 6, future work).

"We observe that the generic idea of change tolerant indexing can be applied
to other index structures.  Preliminary ideas for extensions to other
structures were outlined.  In future work, we will study change tolerant
versions of these other index structures in more detail."

This package carries that out for the classic one-dimensional case:

* :class:`BPlusTree` -- a paged B+-tree over scalar keys (sensor readings),
  charged through the same pager as everything else; every key change is a
  delete + re-insert;
* :class:`LazyBPlusTree` -- the Figure-1 trick transplanted: a hash index on
  object id makes in-leaf key changes a constant number of I/Os;
* the **CT variant needs no new code**: :class:`repro.core.ctrtree.CTRTree`
  is dimension-agnostic, so a CT index over 1-D values is a CTRTree over
  degenerate one-dimensional rectangles, with Phase 1 mining quasi-static
  *intervals* from value histories.  See
  ``benchmarks/bench_extension_btree.py`` for the three-way comparison.
"""

from repro.btree.bptree import BPlusTree
from repro.btree.lazy import LazyBPlusTree

__all__ = ["BPlusTree", "LazyBPlusTree"]
