"""Paged storage substrate with I/O accounting.

Every index structure in this repository (R-tree, lazy-R-tree, alpha-tree,
CT-R-tree, secondary hash index) is built on the :class:`Pager`, so the
page-I/O counts reported by the experiments are charged identically across
structures -- the methodology of the paper's evaluation (Section 4.1), which
measures "the number of page I/Os for reads and writes of both dynamic
updates and queries".
"""

from repro.storage.iostats import IOCategory, IOCounter, IOStats
from repro.storage.page import Page, PageId
from repro.storage.pager import PageNotAllocatedError, Pager
from repro.storage.buffer_pool import BufferPool

__all__ = [
    "IOCategory",
    "IOCounter",
    "IOStats",
    "Page",
    "PageId",
    "Pager",
    "PageNotAllocatedError",
    "BufferPool",
]

# Snapshot persistence lives in repro.storage.snapshot; imported lazily by
# callers to avoid a circular import (it references the index types).
