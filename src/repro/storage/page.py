"""Base page type for the paged storage substrate.

A :class:`Page` models one fixed-size disk block.  Index structures subclass
it (R-tree nodes, data pages, hash buckets) and store Python objects rather
than serialized bytes: the experiments measure *page access counts*, not byte
layouts, so what matters is that each page respects its entry capacity
(``N_entry`` in the paper's Table 1) and that every access goes through the
:class:`~repro.storage.pager.Pager`.
"""

from __future__ import annotations

from typing import Optional

PageId = int

#: Sentinel for "no page" pointers, e.g. the tail of an overflow chain.
NO_PAGE: PageId = -1


class Page:
    """One disk block.

    Attributes:
        pid: page id, assigned by the pager at allocation time
            (``NO_PAGE`` until then).
    """

    __slots__ = ("pid",)

    def __init__(self) -> None:
        self.pid: PageId = NO_PAGE

    @property
    def is_allocated(self) -> bool:
        return self.pid != NO_PAGE

    def __repr__(self) -> str:
        return f"{type(self).__name__}(pid={self.pid})"


class RawPage(Page):
    """A page holding an arbitrary payload; used by tests and generic code."""

    __slots__ = ("payload",)

    def __init__(self, payload: Optional[object] = None) -> None:
        super().__init__()
        self.payload = payload
