"""Snapshot persistence: save and load indexes without pickle.

The pager and every page type serialize to a explicit, versioned JSON
document -- the moving-object database can be checkpointed and reopened
(e.g. the paper's offline rebuild runs "in background ... once the
rebuilding is completed, the new index is used immediately": building in one
process and shipping a snapshot to another is exactly this).

Format (version 1): one JSON object with

* ``kind``: the registry tag the generic :func:`save_index`/:func:`load_index`
  dispatch on (``rtree``/``lazy``/``alpha``/``ct``/``sharded``);
* ``pager``: page size, next page id, and every live page tagged by type;
* ``index``: structure-specific metadata (root page, counters, parameters,
  hash directory, buffer-tree table ...).

A sharded engine snapshots as **one** versioned document embedding one
sub-document per shard plus the partition geometry and the object->shard
routing table.  Only data is stored -- never code -- so snapshots are safe
to exchange.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable, Dict, Optional, Union

from repro.core.ctrtree import CTNode, CTRTree
from repro.core.geometry import Rect
from repro.core.overflow import DataPage, NodeBuffer, QSEntry
from repro.core.params import CTParams
from repro.hashindex.hashindex import BucketPage, HashIndex
from repro.lsm.run import Run
from repro.lsm.tree import LSMConfig, LSMRTree
from repro.rtree.alpha import AlphaTree
from repro.rtree.lazy import LazyRTree
from repro.rtree.node import Entry, RTreeNode
from repro.rtree.rtree import RTree
from repro.storage.page import Page
from repro.storage.pager import Pager

FORMAT_VERSION = 1


class SnapshotError(ValueError):
    """Raised for malformed or incompatible snapshot documents."""


# -- rectangle / entry encoding ------------------------------------------------


def _enc_rect(rect: Optional[Rect]):
    if rect is None:
        return None
    return [list(rect.lo), list(rect.hi)]


def _dec_rect(data) -> Optional[Rect]:
    if data is None:
        return None
    return Rect(tuple(data[0]), tuple(data[1]))


def _enc_owner(owner):
    return list(owner)


def _dec_owner(data):
    return tuple(data)


# -- page encoding -----------------------------------------------------------


def _encode_page(page: Page) -> Dict:
    if isinstance(page, CTNode):
        return {
            "type": "ct_node",
            "level": page.level,
            "parent": page.parent,
            "mbr": _enc_rect(page.mbr),
            "buffer": {
                "kind": page.buffer.kind,
                "pages": list(page.buffer.pages),
                "fills": list(page.buffer.fills),
            },
            "entries": [
                {
                    "rect": _enc_rect(e.rect),
                    "region_id": e.region_id,
                    "chain": list(e.chain),
                    "fills": list(e.fills),
                    "removals": e.removals,
                    "window_start": e.window_start,
                }
                if isinstance(e, QSEntry)
                else {"rect": _enc_rect(e.rect), "child": e.child}
                for e in page.entries
            ],
        }
    if isinstance(page, RTreeNode):
        # ``iter_packed`` reads the struct-of-arrays columns directly (no
        # per-entry Rect/view allocation).  ``array('d')`` round-trips the
        # exact doubles that built it and ``array('q')`` yields plain ints,
        # so the emitted document is byte-identical to the object layout's.
        return {
            "type": "rtree_node",
            "level": page.level,
            "parent": page.parent,
            "mbr": _enc_rect(page.mbr),
            "tag": page.tag,
            "entries": [
                {"rect": [list(lo), list(hi)], "child": child}
                for lo, hi, child in page.entries.iter_packed()
            ],
        }
    if isinstance(page, DataPage):
        return {
            "type": "data_page",
            "capacity": page.capacity,
            "owner": _enc_owner(page.owner),
            "tolerance": _enc_rect(page.tolerance),
            "records": {str(oid): list(pt) for oid, pt in page.records.items()},
        }
    if isinstance(page, BucketPage):
        return {"type": "bucket_page", "slots": list(page.slots)}
    raise SnapshotError(f"cannot snapshot page type {type(page).__name__}")


def _decode_page(data: Dict) -> Page:
    kind = data.get("type")
    if kind == "ct_node":
        node = CTNode(level=data["level"])
        node.parent = data["parent"]
        node.mbr = _dec_rect(data["mbr"])
        buf = NodeBuffer()
        buf.kind = data["buffer"]["kind"]
        buf.pages = list(data["buffer"]["pages"])
        buf.fills = list(data["buffer"]["fills"])
        node.buffer = buf
        for raw in data["entries"]:
            if "region_id" in raw:
                qs = QSEntry(_dec_rect(raw["rect"]), raw["region_id"], raw["window_start"])
                qs.chain = list(raw["chain"])
                qs.fills = list(raw["fills"])
                qs.removals = raw["removals"]
                node.entries.append(qs)
            else:
                node.entries.append(Entry(_dec_rect(raw["rect"]), raw["child"]))
        return node
    if kind == "rtree_node":
        node = RTreeNode(level=data["level"])
        node.parent = data["parent"]
        node.mbr = _dec_rect(data["mbr"])
        node.tag = data["tag"]
        entries = node.entries
        for raw in data["entries"]:
            # Validate through the Rect constructor (as before), then pack
            # the canonical bounds straight into the entry columns.
            rect = _dec_rect(raw["rect"])
            assert rect is not None
            entries.append_packed(rect.lo, rect.hi, raw["child"])
        return node
    if kind == "data_page":
        page = DataPage(
            data["capacity"], _dec_owner(data["owner"]), _dec_rect(data["tolerance"])
        )
        page.records = {int(oid): tuple(pt) for oid, pt in data["records"].items()}
        return page
    if kind == "bucket_page":
        page = BucketPage(len(data["slots"]))
        page.slots = list(data["slots"])
        return page
    raise SnapshotError(f"unknown page type {kind!r}")


# -- pager --------------------------------------------------------------------


def _encode_pager(pager: Pager) -> Dict:
    return {
        "page_size": pager.page_size,
        "next_pid": pager._next_pid,
        "pages": {str(pid): _encode_page(pager.inspect(pid)) for pid in pager.iter_pids()},
    }


def _decode_pager(data: Dict) -> Pager:
    pager = Pager(page_size=data["page_size"])
    for pid_str, raw in data["pages"].items():
        page = _decode_page(raw)
        page.pid = int(pid_str)
        pager._pages[page.pid] = page
    pager._next_pid = data["next_pid"]
    # Loading is not charged: a restore maps pages in, it does not re-write them.
    pager.stats.reset()
    return pager


def _encode_hash(index: HashIndex) -> Dict:
    return {
        "entries_per_bucket": index.entries_per_bucket,
        "buckets": {str(k): v for k, v in index._buckets.items()},
        "count": len(index),
    }


def _decode_hash(data: Dict, pager: Pager) -> HashIndex:
    index = HashIndex(pager, entries_per_bucket=data["entries_per_bucket"])
    index._buckets = {int(k): v for k, v in data["buckets"].items()}
    index._count = data["count"]
    return index


def _encode_rtree_config(tree: RTree) -> Dict:
    return {
        "root_pid": tree.root_pid,
        "size": len(tree),
        "max_entries": tree.max_entries,
        "min_entries": tree.min_entries,
        "split": tree.split_policy,
        "alpha": tree.alpha,
        "shrink_on_delete": tree.shrink_on_delete,
        "forced_reinsert": tree.forced_reinsert,
    }


def _decode_rtree(data: Dict, pager: Pager) -> RTree:
    tree = RTree(
        pager,
        max_entries=data["max_entries"],
        split=data["split"],
        alpha=data["alpha"],
        shrink_on_delete=data["shrink_on_delete"],
        forced_reinsert=data["forced_reinsert"],
    )
    pager.free(tree.root_pid)  # discard the bootstrap root
    tree._root_pid = data["root_pid"]
    tree._size = data["size"]
    tree.min_entries = data["min_entries"]
    return tree


# -- public API: plain RTree (and the alpha variant's inner tree) -------------


def _rtree_document(tree: RTree) -> Dict:
    return {
        "version": FORMAT_VERSION,
        "structure": "rtree",
        "kind": "rtree",
        "pager": _encode_pager(tree.pager),
        "index": {"tree": _encode_rtree_config(tree)},
    }


def _load_rtree_document(document: Dict) -> RTree:
    pager = _decode_pager(document["pager"])
    tree = _decode_rtree(document["index"]["tree"], pager)
    pager.stats.reset()
    return tree


def save_rtree(tree: RTree, path: Union[str, Path]) -> Path:
    """Snapshot a traditional R-tree (no secondary hash index)."""
    return _write_document(_rtree_document(tree), path)


def load_rtree(path: Union[str, Path]) -> RTree:
    return _load_rtree_document(_read_document(path, expected="rtree"))


# -- public API: LazyRTree ----------------------------------------------------


def _lazy_document(tree: LazyRTree) -> Dict:
    return {
        "version": FORMAT_VERSION,
        "structure": "lazy_rtree",
        # The kind tag distinguishes the alpha-tree (same page layout, but
        # the class re-applies loose-MBR behaviour and must round-trip).
        "kind": "alpha" if isinstance(tree, AlphaTree) else "lazy",
        "pager": _encode_pager(tree.pager),
        "index": {
            "tree": _encode_rtree_config(tree.tree),
            "hash": _encode_hash(tree.hash),
        },
    }


def _load_lazy_document(document: Dict) -> LazyRTree:
    pager = _decode_pager(document["pager"])
    inner = _decode_rtree(document["index"]["tree"], pager)
    hash_index = _decode_hash(document["index"]["hash"], pager)
    cls = AlphaTree if document.get("kind") == "alpha" else LazyRTree
    tree = cls.__new__(cls)
    tree.tree = inner
    tree.hash = hash_index
    tree.lazy_hits = 0
    tree.relocations = 0
    inner.on_entries_moved = tree._entries_moved
    pager.stats.reset()
    return tree


def save_lazy_rtree(tree: LazyRTree, path: Union[str, Path]) -> Path:
    """Snapshot a lazy-R-tree (or alpha-tree) with its hash index."""
    return _write_document(_lazy_document(tree), path)


def load_lazy_rtree(path: Union[str, Path]) -> LazyRTree:
    return _load_lazy_document(_read_document(path, expected="lazy_rtree"))


# -- public API: CTRTree -------------------------------------------------------


def _ctrtree_document(tree: CTRTree) -> Dict:
    params = tree.params
    return {
        "version": FORMAT_VERSION,
        "structure": "ctrtree",
        "kind": "ct",
        "pager": _encode_pager(tree.pager),
        "index": {
            "root_pid": tree.root_pid,
            "domain": _enc_rect(tree.domain),
            "size": len(tree),
            "clock": tree._clock,
            "next_region_id": tree._next_region_id,
            "max_entries": tree.max_entries,
            "min_entries": tree.min_entries,
            "adaptive": tree.adaptive,
            "params": {
                field: getattr(params, field)
                for field in (
                    "t_dist", "t_rate", "t_time", "t_area", "c_query", "c_update",
                    "t_list", "t_buf_num", "t_buf_time", "t_remove", "alpha",
                )
            },
            "hash": _encode_hash(tree.hash),
            "buffer_trees": {
                str(node_pid): _encode_rtree_config(btree)
                for node_pid, btree in tree._buffer_trees.items()
            },
            "buffer_bounds": {
                str(node_pid): _enc_rect(bound)
                for node_pid, bound in tree._buffer_bounds.items()
            },
        },
    }


def save_ctrtree(tree: CTRTree, path: Union[str, Path]) -> Path:
    """Snapshot a CT-R-tree: structural pages, chains, buffers, hash index."""
    return _write_document(_ctrtree_document(tree), path)


def _load_ctrtree_document(document: Dict) -> CTRTree:
    meta = document["index"]
    pager = _decode_pager(document["pager"])

    tree = CTRTree.__new__(CTRTree)
    tree._pager = pager
    tree.domain = _dec_rect(meta["domain"])
    tree.params = CTParams(**meta["params"])
    tree.max_entries = meta["max_entries"]
    tree.min_entries = meta["min_entries"]
    tree.page_capacity = meta["max_entries"]
    from repro.rtree.splits import SPLIT_POLICIES

    tree._split_fn = SPLIT_POLICIES["quadratic"]
    tree.hash = _decode_hash(meta["hash"], pager)
    tree.adaptive = meta["adaptive"]
    tree._buffer_trees = {}
    tree._buffer_bounds = {
        int(k): _dec_rect(v) for k, v in meta["buffer_bounds"].items()
    }
    tree._size = meta["size"]
    tree._clock = meta["clock"]
    tree._next_region_id = meta["next_region_id"]
    tree.lazy_hits = 0
    tree.relocations = 0
    tree._root_pid = meta["root_pid"]

    from repro.core.adaptive import AdaptationManager

    tree.adaptation = AdaptationManager(tree)

    for node_pid_str, config in meta["buffer_trees"].items():
        btree = _decode_rtree(config, pager)
        btree.on_entries_moved = tree.hash.set_many
        tree._buffer_trees[int(node_pid_str)] = btree
    pager.stats.reset()
    return tree


def load_ctrtree(path: Union[str, Path]) -> CTRTree:
    return _load_ctrtree_document(_read_document(path, expected="ctrtree"))


# -- public API: LSM-R-tree ----------------------------------------------------


def _lsm_document(index: LSMRTree) -> Dict:
    """One document for the whole LSM index: shared pager, per-run manifest.

    Every run tree allocates from one pager, so the page table is encoded
    once; each run contributes only its tree configuration plus its sorted
    oid/tombstone side tables (blooms are rebuilt, never serialized).  The
    memtable is serialized in canonical arrival (seq) order and tombstone
    sets are sorted, so save -> load -> save is byte-stable.
    """
    config = index.config
    return {
        "version": FORMAT_VERSION,
        "structure": "lsm",
        "kind": "lsm",
        "pager": _encode_pager(index.pager),
        "index": {
            "config": {
                "max_entries": index.max_entries,
                "split": index.split_policy,
                "memtable_size": config.memtable_size,
                "size_ratio": config.size_ratio,
                "max_runs": config.max_runs,
                "run_fill": config.run_fill,
                "auto_compact": config.auto_compact,
            },
            "live": len(index),
            "next_seq": index._next_seq,
            "memtable": [
                {
                    "oid": pending.oid,
                    "old": (
                        None
                        if pending.old_point is None
                        else list(pending.old_point)
                    ),
                    "point": list(pending.point),
                    "t": pending.t,
                    "seq": pending.seq,
                    "absorbed": pending.absorbed,
                }
                for pending in index.memtable.iter_pending()
            ],
            "mem_dead": sorted(index._mem_dead),
            "runs": [
                {
                    "tree": _encode_rtree_config(run.tree),
                    "oids": list(run.oids),
                    "tombstones": list(run.tombstones),
                    "seq": run.seq,
                }
                for run in index.runs
            ],
        },
    }


def _load_lsm_document(document: Dict) -> LSMRTree:
    from repro.engine.buffer import PendingUpdate

    meta = document["index"]
    pager = _decode_pager(document["pager"])
    cfg = meta["config"]
    index = LSMRTree(
        pager,
        max_entries=cfg["max_entries"],
        split=cfg["split"],
        config=LSMConfig(
            memtable_size=cfg["memtable_size"],
            size_ratio=cfg["size_ratio"],
            max_runs=cfg["max_runs"],
            run_fill=cfg["run_fill"],
            auto_compact=cfg["auto_compact"],
        ),
    )
    for raw in meta["runs"]:
        tree = _decode_rtree(raw["tree"], pager)
        index._runs.append(
            Run(tree, raw["oids"], raw["tombstones"], raw["seq"])
        )
    # Each _decode_rtree allocated (and freed) a bootstrap root, advancing
    # the pid cursor; restore it so save -> load -> save is byte-identical.
    pager._next_pid = document["pager"]["next_pid"]
    max_seq = 0
    for raw in meta["memtable"]:
        pending = PendingUpdate(
            oid=raw["oid"],
            old_point=None if raw["old"] is None else tuple(raw["old"]),
            point=tuple(raw["point"]),
            t=raw["t"],
            seq=raw["seq"],
            absorbed=raw.get("absorbed", 0),
        )
        index.memtable._pending[pending.oid] = pending
        max_seq = max(max_seq, pending.seq)
    index.memtable._seq = max_seq
    index._mem_dead = set(meta["mem_dead"])
    index._live = meta["live"]
    index._next_seq = meta["next_seq"]
    pager.stats.reset()
    return index


def save_lsm(index: LSMRTree, path: Union[str, Path]) -> Path:
    """Snapshot an LSM-R-tree: runs, side tables, memtable, tombstones."""
    return _write_document(_lsm_document(index), path)


def load_lsm(path: Union[str, Path]) -> LSMRTree:
    return _load_lsm_document(_read_document(path, expected="lsm"))


# -- public API: the sharded engine -------------------------------------------


def _sharded_document(index) -> Dict:
    """One versioned document for a whole sharded engine.

    Embeds one per-shard sub-document (built by the inner kind's document
    builder) plus the partition geometry and the object->shard routing
    table, so a restore rebuilds byte-identical shard contents *and* the
    router state.
    """
    inner_kind = index.kind
    if inner_kind not in _DOCUMENT_BUILDERS:
        raise SnapshotError(
            f"sharded engine over kind {inner_kind!r} has no snapshot support"
        )
    build = _DOCUMENT_BUILDERS[inner_kind]
    return {
        "version": FORMAT_VERSION,
        "structure": "sharded",
        "kind": "sharded",
        "inner_kind": inner_kind,
        # Versioned partition document (v2: partitioner tag + boundary
        # list); partition_from_dict reconstructs the exact routing
        # arithmetic, v1 grid documents included.
        "partition": index.partition.to_dict(),
        "owner": {str(oid): sid for oid, sid in index._owner.items()},
        "cross_shard_moves": index.cross_shard_moves,
        "rebalances": getattr(index, "rebalances", 0),
        # The positions ledger (position + last timestamp per object):
        # restoring it keeps a post-load rebalance replay byte-identical
        # to one on the live engine.
        "positions": {
            str(oid): [list(pos), t]
            for oid, (pos, t) in getattr(index, "_positions", {}).items()
        },
        "move_counts": {
            str(oid): n
            for oid, n in getattr(index, "_move_counts", {}).items()
        },
        "shards": [build(shard.index) for shard in index.shards],
    }


def _load_sharded_document(document: Dict):
    from repro.engine.rebalance import partition_from_dict
    from repro.engine.registry import get_spec
    from repro.engine.sharded import (
        Shard,
        ShardedIndex,
        ShardedStore,
        ShardIOStats,
    )
    from repro.storage.iostats import IOStats

    inner_kind = document["inner_kind"]
    loader = _DOCUMENT_LOADERS.get(inner_kind)
    if loader is None:
        raise SnapshotError(f"unknown sharded inner kind {inner_kind!r}")
    try:
        partition = partition_from_dict(document["partition"])
    except (KeyError, ValueError) as exc:
        raise SnapshotError(f"bad partition document: {exc}") from exc
    domain = partition.domain

    index = ShardedIndex.__new__(ShardedIndex)
    index.kind = inner_kind
    index.domain = domain
    index._spec = get_spec(inner_kind)
    index.partition = partition
    shared = IOStats()
    index._stats = shared
    index._owner = {int(oid): int(sid) for oid, sid in document["owner"].items()}
    index.cross_shard_moves = int(document.get("cross_shard_moves", 0))
    index.cross_shard_move_failures = 0
    index.rebalances = int(document.get("rebalances", 0))
    index._move_counts = {
        int(oid): int(n)
        for oid, n in document.get("move_counts", {}).items()
    }
    index._retired_results = []
    index._rebalancer = None
    # Shard-construction inputs a post-load rebalance rebuilds with
    # (histories are not snapshotted; the shard contents already embody
    # their effect).
    index._histories = None
    index._max_entries = 20
    index._ct_params = None
    index._query_rate = 50.0
    index._adaptive = True
    index._split = "quadratic"
    index._pool_frames = 0
    index._page_size = 4096
    index.shards = []
    for sid, sub_document in enumerate(document["shards"]):
        inner = loader(sub_document)
        pager = inner.pager
        # Re-parent the restored pager onto the engine's shared ledger so
        # per-shard and merged accounting resume exactly like a fresh build.
        pager.stats = ShardIOStats(shared)
        index.shards.append(
            Shard(
                sid=sid,
                region=partition.region(sid),
                pager=pager,
                store=pager,
                index=inner,
            )
        )
    if index.shards:
        # Recover the construction knobs from the restored structures, so
        # a post-load rebalance rebuilds shards with the same geometry the
        # saved engine would have (byte-identical cutover replay).
        first = index.shards[0].index
        tree = getattr(first, "tree", first)
        index._max_entries = getattr(tree, "max_entries", index._max_entries)
        index._split = getattr(tree, "split_policy", index._split)
        index._adaptive = getattr(first, "adaptive", index._adaptive)
        index._ct_params = getattr(first, "params", None)
    positions_doc = document.get("positions")
    if positions_doc is not None:
        index._positions = {
            int(oid): (tuple(entry[0]), entry[1])
            for oid, entry in positions_doc.items()
        }
    else:
        # Pre-v6 document: reconstruct the ledger (timestamps unknown)
        # from shard residency so rebalancing still works after a load.
        index._positions = {}
        for shard in index.shards:
            inner = shard.index
            objects = (
                inner.iter_objects()
                if hasattr(inner, "iter_objects")
                else inner.tree.iter_objects()
            )
            for oid, pos in objects:
                index._positions[oid] = (tuple(pos), None)
    index._store = ShardedStore(index, shared)
    index._page_size = index.shards[0].pager.page_size if index.shards else 4096
    return index


def save_sharded(index, path: Union[str, Path]) -> Path:
    """Snapshot a sharded engine as one versioned document."""
    return _write_document(_sharded_document(index), path)


def load_sharded(path: Union[str, Path]):
    return _load_sharded_document(_read_document(path, expected="sharded"))


# -- generic dispatch ----------------------------------------------------------

_DOCUMENT_BUILDERS: Dict[str, Callable] = {
    "rtree": _rtree_document,
    "lazy": _lazy_document,
    "alpha": _lazy_document,
    "ct": _ctrtree_document,
    "lsm": _lsm_document,
    "sharded": _sharded_document,
}

_DOCUMENT_LOADERS: Dict[str, Callable] = {
    "rtree": _load_rtree_document,
    "lazy": _load_lazy_document,
    "alpha": _load_lazy_document,
    "ct": _load_ctrtree_document,
    "lsm": _load_lsm_document,
    "sharded": _load_sharded_document,
}

#: Pre-kind-tag documents carry only a structure string; map it to a kind.
_STRUCTURE_TO_KIND = {
    "rtree": "rtree",
    "lazy_rtree": "lazy",
    "ctrtree": "ct",
    "lsm": "lsm",
    "sharded": "sharded",
}


def index_kind_of(index) -> str:
    """The snapshot kind tag for a live index instance."""
    # Order matters: AlphaTree subclasses LazyRTree.
    if isinstance(index, LSMRTree):
        return "lsm"
    if isinstance(index, CTRTree):
        return "ct"
    if isinstance(index, AlphaTree):
        return "alpha"
    if isinstance(index, LazyRTree):
        return "lazy"
    if isinstance(index, RTree):
        return "rtree"
    if hasattr(index, "shards") and hasattr(index, "partition"):
        return "sharded"
    raise SnapshotError(f"cannot snapshot index type {type(index).__name__}")


def build_document(index, *, kind: Optional[str] = None) -> Dict:
    """The snapshot document for ``index`` as plain data (not yet written).

    The durability layer's checkpoints embed this document inside their own
    envelope (WAL position, ordinal) instead of writing a bare snapshot
    file; both paths share one builder table.
    """
    tag = kind if kind is not None else index_kind_of(index)
    builder = _DOCUMENT_BUILDERS.get(tag)
    if builder is None:
        raise SnapshotError(
            f"no snapshot support for kind {tag!r}; "
            f"known: {sorted(_DOCUMENT_BUILDERS)}"
        )
    return builder(index)


def load_document(document: Dict):
    """Materialize an index from a snapshot document (inverse of
    :func:`build_document`); dispatches on the ``kind`` tag with the same
    pre-tag fallback as :func:`load_index`."""
    if not isinstance(document, dict):
        raise SnapshotError(
            f"snapshot document must be an object, got {type(document).__name__}"
        )
    tag = document.get("kind") or _STRUCTURE_TO_KIND.get(document.get("structure", ""))
    loader = _DOCUMENT_LOADERS.get(tag or "")
    if loader is None:
        raise SnapshotError(
            f"snapshot kind {tag!r} (structure "
            f"{document.get('structure')!r}) is not loadable"
        )
    return loader(document)


def save_index(index, path: Union[str, Path], *, kind: Optional[str] = None) -> Path:
    """Snapshot any supported index; dispatches on its ``kind`` tag."""
    return _write_document(build_document(index, kind=kind), path)


def load_index(path: Union[str, Path]):
    """Load any snapshot; dispatches on the document's ``kind`` tag.

    Documents written before the kind tag existed are dispatched by their
    ``structure`` string, so old snapshots keep loading.
    """
    return load_document(_read_any_document(path))


# -- document I/O --------------------------------------------------------------


def _write_document(document: Dict, path: Union[str, Path]) -> Path:
    """Write atomically: tmp file, flush + fsync, then ``os.replace``.

    A crash at any instant leaves either the previous file intact or the
    new one fully published -- never a truncated snapshot.  A stale
    ``*.tmp`` from an earlier crash is simply overwritten.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(document))
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def _read_any_document(path: Union[str, Path]) -> Dict:
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        # Truncated writes, torn tails and bit rot all surface here; give
        # callers one distinct error to catch instead of raw decode errors.
        raise SnapshotError(f"not a snapshot file: {exc}") from exc
    if not isinstance(document, dict):
        raise SnapshotError(
            f"snapshot document must be an object, got {type(document).__name__}"
        )
    if document.get("version") != FORMAT_VERSION:
        raise SnapshotError(f"unsupported snapshot version {document.get('version')!r}")
    return document


def _read_document(path: Union[str, Path], expected: str) -> Dict:
    document = _read_any_document(path)
    if document.get("structure") != expected:
        raise SnapshotError(
            f"snapshot holds a {document.get('structure')!r}, expected {expected!r}"
        )
    return document
