"""Per-category page-I/O accounting.

The paper's evaluation separates the page I/Os incurred by *queries* from
those incurred by *dynamic updates* (Figures 8-13 all plot one or both).
:class:`IOStats` keeps one :class:`IOCounter` per category and lets callers
scope a block of work to a category with :meth:`IOStats.category`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional


class IOCategory:
    """Well-known accounting categories used by the experiment harness."""

    QUERY = "query"
    UPDATE = "update"
    BUILD = "build"
    OTHER = "other"

    ALL = (QUERY, UPDATE, BUILD, OTHER)


@dataclass
class IOCounter:
    """Read/write page counts for one category."""

    reads: int = 0
    writes: int = 0

    @property
    def total(self) -> int:
        return self.reads + self.writes

    def copy(self) -> "IOCounter":
        return IOCounter(self.reads, self.writes)

    def __add__(self, other: "IOCounter") -> "IOCounter":
        return IOCounter(self.reads + other.reads, self.writes + other.writes)

    def __sub__(self, other: "IOCounter") -> "IOCounter":
        """Counter delta; raises rather than silently going negative.

        Deltas (``after - before``) are how the driver and builder attribute
        I/O to a phase; a negative component means the counters were reset
        between the two snapshots and the attribution is garbage.
        """
        reads = self.reads - other.reads
        writes = self.writes - other.writes
        if reads < 0 or writes < 0:
            raise ValueError(
                f"IOCounter delta went negative ({reads}r/{writes}w): the "
                "counters were reset between snapshots, so this delta is "
                "meaningless"
            )
        return IOCounter(reads, writes)

    def to_dict(self) -> Dict[str, int]:
        return {"reads": self.reads, "writes": self.writes, "total": self.total}


class IOStats:
    """Accumulates page reads and writes, attributed to the active category.

    The active category is managed as a stack so nested scopes compose:

    >>> stats = IOStats()
    >>> with stats.category(IOCategory.UPDATE):
    ...     stats.record_read()
    >>> stats.reads(IOCategory.UPDATE)
    1

    Work performed outside any scope is attributed to ``IOCategory.OTHER``.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, IOCounter] = {}
        self._stack = [IOCategory.OTHER]

    # -- recording -------------------------------------------------------

    def record_read(self, count: int = 1) -> None:
        self._counter(self._stack[-1]).reads += count

    def record_write(self, count: int = 1) -> None:
        self._counter(self._stack[-1]).writes += count

    def charge(self, name: str, reads: int, writes: int) -> None:
        """Credit ``reads``/``writes`` directly to category ``name``.

        Reconciliation hook for parallel execution: shard workers account
        I/O into private ledgers and report deltas back; the coordinator
        charges those deltas here, single-threaded, so the shared ledger
        never sees concurrent mutation.
        """
        if reads < 0 or writes < 0:
            raise ValueError(f"cannot charge negative I/O ({reads}r/{writes}w)")
        counter = self._counter(name)
        counter.reads += reads
        counter.writes += writes

    @contextmanager
    def category(self, name: str) -> Iterator[None]:
        """Attribute all I/O inside the block to ``name``."""
        self._stack.append(name)
        try:
            yield
        finally:
            self._stack.pop()

    @property
    def active_category(self) -> str:
        return self._stack[-1]

    # -- reporting -------------------------------------------------------

    def _counter(self, name: str) -> IOCounter:
        counter = self._counters.get(name)
        if counter is None:
            counter = IOCounter()
            self._counters[name] = counter
        return counter

    def counter(self, name: str) -> IOCounter:
        """A copy of the counter for ``name`` (zero if never touched)."""
        return self._counter(name).copy()

    def live(self, name: str) -> IOCounter:
        """The **mutable** counter for ``name``, updated in place.

        For per-event delta tracking in hot loops: reading ``live(cat).total``
        before and after an operation avoids the copy that :meth:`counter`
        makes.  Callers must not mutate the returned counter.
        """
        return self._counter(name)

    def reads(self, name: Optional[str] = None) -> int:
        if name is not None:
            return self._counter(name).reads
        return sum(c.reads for c in self._counters.values())

    def writes(self, name: Optional[str] = None) -> int:
        if name is not None:
            return self._counter(name).writes
        return sum(c.writes for c in self._counters.values())

    def total(self, name: Optional[str] = None) -> int:
        return self.reads(name) + self.writes(name)

    def snapshot(self) -> Dict[str, IOCounter]:
        """An immutable view of all counters at this instant."""
        return {name: counter.copy() for name, counter in self._counters.items()}

    def to_dict(self) -> Dict[str, Dict[str, int]]:
        """All counters as JSON-ready plain data, sorted by category."""
        return {
            name: counter.to_dict()
            for name, counter in sorted(self._counters.items())
        }

    def reset(self) -> None:
        self._counters.clear()

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}={counter.reads}r/{counter.writes}w"
            for name, counter in sorted(self._counters.items())
        )
        return f"IOStats({parts})"
