"""An LRU buffer pool layered over the pager.

The paper charges every page access as an I/O (no caching), and the main
experiments follow suit.  The buffer pool exists for the *ablation* bench
(``benchmarks/bench_ablation.py``): it shows how much of the CT-R-tree's
advantage survives when the system has a cache, i.e. that the advantage is
structural rather than an artifact of cache-less accounting.

The pool exposes the same interface as :class:`~repro.storage.pager.Pager`,
so any index can be constructed over either.  Charging model:

* ``read`` of a cached page is free; a miss charges one read and may evict
  the least-recently-used frame (charging one write if that frame is dirty);
* ``write`` marks the frame dirty without charge; the write is charged when
  the frame is evicted, flushed, or its page is freed.  Writing a page that
  is **not** resident first charges one read (write-back caches are
  read-modify-write: the frame must be fetched before it can be mutated);
* ``allocate`` charges one write (the new block reaches disk) and caches the
  page clean;
* ``flush`` writes back every dirty frame;
* ``free`` of a dirty frame charges the deferred write-back before the page
  is released -- the cache-less :class:`~repro.storage.pager.Pager` would
  have charged those mutations immediately, so dropping them silently would
  make pooled runs look cheaper than they are.

The pool counts ``hits``/``misses``/``evictions``/``dirty_writebacks`` and
exposes them via :meth:`BufferPool.metrics_dict` for ``--metrics-out`` and
the bench files.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

from repro.storage.iostats import IOStats
from repro.storage.page import Page, PageId
from repro.storage.pager import Pager


class BufferPool:
    """LRU page cache with write-back semantics.

    Args:
        pager: the underlying page store.
        capacity: number of frames (pages) the pool may hold.
    """

    def __init__(self, pager: Pager, capacity: int = 128) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._pager = pager
        self.capacity = capacity
        # pid -> dirty flag; ordered by recency (last = most recent).
        self._frames: "OrderedDict[PageId, bool]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_writebacks = 0

    # -- pager-compatible interface ---------------------------------------

    @property
    def stats(self) -> IOStats:
        return self._pager.stats

    @property
    def page_size(self) -> int:
        return self._pager.page_size

    @property
    def page_count(self) -> int:
        return self._pager.page_count

    def allocate(self, page: Page) -> PageId:
        pid = self._pager.allocate(page)
        self._install(pid, dirty=False)
        return pid

    def free(self, pid: PageId) -> None:
        dirty = self._frames.pop(pid, False)
        if dirty and self._pager.contains(pid):
            # The deferred write the frame was carrying comes due now: the
            # cache-less pager charged it at mutation time, so discarding it
            # here would undercount pooled runs relative to the paper model.
            self._pager.write(self._pager.inspect(pid))
            self.dirty_writebacks += 1
        self._pager.free(pid)

    def read(self, pid: PageId) -> Page:
        if pid in self._frames:
            self.hits += 1
            self._frames.move_to_end(pid)
            return self._pager.inspect(pid)
        self.misses += 1
        page = self._pager.read(pid)
        self._install(pid, dirty=False)
        return page

    def write(self, page: Page) -> None:
        pid = page.pid
        if pid in self._frames:
            self._frames[pid] = True
            self._frames.move_to_end(pid)
        else:
            # Write miss: a write-back cache mutates frames, not disk, so a
            # non-resident page must be fetched (one charged read) before it
            # can be dirtied -- installing it dirty for free would let a
            # pooled run skip reads the pager model charges.
            self.misses += 1
            self._pager.read(pid)
            self._install(pid, dirty=True)

    def inspect(self, pid: PageId) -> Page:
        return self._pager.inspect(pid)

    def contains(self, pid: PageId) -> bool:
        return self._pager.contains(pid)

    def iter_pids(self) -> Iterator[PageId]:
        return self._pager.iter_pids()

    # -- pool management ---------------------------------------------------

    def flush(self) -> int:
        """Write back all dirty frames; returns the number written."""
        flushed = 0
        for pid, dirty in list(self._frames.items()):
            if dirty and self._pager.contains(pid):
                self._pager.write(self._pager.inspect(pid))
                self._frames[pid] = False
                self.dirty_writebacks += 1
                flushed += 1
        return flushed

    def _install(self, pid: PageId, dirty: bool) -> None:
        self._frames[pid] = dirty
        self._frames.move_to_end(pid)
        while len(self._frames) > self.capacity:
            victim, victim_dirty = self._frames.popitem(last=False)
            self.evictions += 1
            if victim_dirty and self._pager.contains(victim):
                self._pager.write(self._pager.inspect(victim))
                self.dirty_writebacks += 1

    @property
    def hit_rate(self) -> float:
        accesses = self.hits + self.misses
        return self.hits / accesses if accesses else 0.0

    def metrics_dict(self) -> dict:
        """Pool telemetry as JSON-ready plain data."""
        return {
            "capacity": self.capacity,
            "frames": len(self._frames),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "dirty_writebacks": self.dirty_writebacks,
        }

    def __repr__(self) -> str:
        return (
            f"BufferPool(capacity={self.capacity}, frames={len(self._frames)}, "
            f"hit_rate={self.hit_rate:.2f})"
        )
