"""The pager: a page store that charges one I/O per page touched.

The paper's performance metric is the number of page I/Os ("We do not
distinguish between sequential page I/Os and random page I/Os -- each page is
treated equally", Section 4.1).  The pager reproduces that accounting model:

* :meth:`Pager.read` fetches a page and charges **one read**;
* :meth:`Pager.write` persists a page and charges **one write**;
* :meth:`Pager.allocate` creates a page and charges **one write** (the block
  must reach disk);
* :meth:`Pager.free` releases a page without charge (a real system would
  merely flip a bit in a free-space map).

Structures that want to inspect pages without perturbing the experiment
(tests, invariant checkers, debug dumps) use :meth:`Pager.inspect`, which is
never charged.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.storage.iostats import IOStats
from repro.storage.page import NO_PAGE, Page, PageId


class PageNotAllocatedError(KeyError):
    """Raised when a page id does not refer to a live page."""


class Pager:
    """An in-memory paged store with I/O accounting.

    Args:
        page_size: block size in bytes (``S_page``); informational -- entry
            capacities are enforced by the structures themselves via
            ``N_entry``-style limits.
        stats: the :class:`IOStats` instance to charge; a fresh one is
            created when omitted.
    """

    def __init__(self, page_size: int = 4096, stats: Optional[IOStats] = None) -> None:
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        self.page_size = page_size
        self.stats = stats if stats is not None else IOStats()
        self._pages: Dict[PageId, Page] = {}
        self._next_pid: PageId = 0
        self._freed = 0

    # -- lifecycle -------------------------------------------------------

    def allocate(self, page: Page) -> PageId:
        """Assign a fresh page id to ``page``, store it, and charge one write."""
        if page.is_allocated:
            raise ValueError(f"page already allocated with pid={page.pid}")
        pid = self._next_pid
        self._next_pid += 1
        page.pid = pid
        self._pages[pid] = page
        self.stats.record_write()
        return pid

    def free(self, pid: PageId) -> None:
        """Release a page.  Not charged (free-space-map bookkeeping)."""
        page = self._pages.pop(pid, None)
        if page is None:
            raise PageNotAllocatedError(pid)
        page.pid = NO_PAGE
        self._freed += 1

    # -- charged access --------------------------------------------------

    def read(self, pid: PageId) -> Page:
        """Fetch a page; charges one read."""
        try:
            page = self._pages[pid]
        except KeyError:
            raise PageNotAllocatedError(pid) from None
        self.stats.record_read()
        return page

    def write(self, page: Page) -> None:
        """Persist a (mutated) page; charges one write."""
        if not page.is_allocated or page.pid not in self._pages:
            raise PageNotAllocatedError(page.pid)
        self.stats.record_write()

    # -- uncharged access ------------------------------------------------

    def inspect(self, pid: PageId) -> Page:
        """Fetch a page without charging I/O (tests and invariant checks)."""
        try:
            return self._pages[pid]
        except KeyError:
            raise PageNotAllocatedError(pid) from None

    def contains(self, pid: PageId) -> bool:
        return pid in self._pages

    def iter_pids(self) -> Iterator[PageId]:
        return iter(tuple(self._pages.keys()))

    @property
    def page_count(self) -> int:
        """Number of live pages."""
        return len(self._pages)

    @property
    def freed_count(self) -> int:
        """Number of pages released over the pager's lifetime."""
        return self._freed

    def metrics_dict(self) -> Dict[str, object]:
        """Store telemetry (page counts + the per-category I/O ledger)."""
        return {
            "page_size": self.page_size,
            "page_count": self.page_count,
            "freed_count": self.freed_count,
            "io": self.stats.to_dict(),
        }

    def __repr__(self) -> str:
        return f"Pager(pages={self.page_count}, page_size={self.page_size})"
