"""repro: a full reproduction of "Change Tolerant Indexing for Constantly
Evolving Data" (Cheng, Xia, Prabhakar, Shah; ICDE 2005 / Purdue TR 04-006).

Public API tour:

* :class:`repro.CTRTree` / :class:`repro.CTRTreeBuilder` -- the paper's
  contribution: a change-tolerant R-tree built around quasi-static regions
  mined from update history.
* :class:`repro.RTree`, :class:`repro.LazyRTree`, :class:`repro.AlphaTree` --
  the evaluation baselines.
* :class:`repro.Pager` / :class:`repro.IOStats` -- the paged storage
  substrate every index runs on; the experiments' metric is its page-I/O
  counts.
* :mod:`repro.citysim` -- the City Simulator 2.0 substitute that generates
  the moving-object workload.
* :mod:`repro.workload` -- query generation and the update/query driver.
* :mod:`repro.experiments` -- one module per paper table/figure.
"""

from repro.core import (
    CTParams,
    CTRTree,
    CTRTreeBuilder,
    Point,
    QSRegion,
    Rect,
    SimulationParams,
    identify_qs_regions,
)
from repro.btree import BPlusTree, LazyBPlusTree
from repro.hashindex import HashIndex
from repro.rtree import AlphaTree, LazyRTree, RTree
from repro.storage import BufferPool, IOCategory, IOStats, Pager

__version__ = "1.0.0"

__all__ = [
    "CTParams",
    "CTRTree",
    "CTRTreeBuilder",
    "Point",
    "QSRegion",
    "Rect",
    "SimulationParams",
    "identify_qs_regions",
    "HashIndex",
    "AlphaTree",
    "LazyRTree",
    "RTree",
    "BPlusTree",
    "LazyBPlusTree",
    "BufferPool",
    "IOCategory",
    "IOStats",
    "Pager",
]
