"""Phase 1: identifying quasi-static regions from object trail histories.

Implements the algorithm of the paper's Figure 3.  A trail is scanned in
time order while an MBR grows to enclose successive samples; the MBR stops
growing -- and is *frozen* as a qs-region if it qualifies -- when both

* its diameter (diagonal) exceeds ``T_dist`` (Equation 1), and
* its diameter growth rate exceeds ``T_rate`` (Equation 2),

signalling that "the object has started moving faster and thus should not be
considered as lying in a qs-region".  The frozen MBR qualifies when the
object dwelled in it longer than ``T_time`` and its area is under ``T_area``;
otherwise it is discarded (singleton rectangles like 'a'-'d' in Figure 2(a),
or sprawling ones whose dead space would hurt queries).

One deliberate deviation, documented here and in DESIGN.md: Figure 3's step
3(B)(a) tests ``A_i(j,k) < T_area`` -- the area *including* the sample that
broke the growth conditions -- although the rectangle actually frozen is
``B_i(j,k-1)``.  We test the area of the frozen rectangle itself, which is
the self-consistent reading (the paper's k-indexed area is, with high
likelihood, a typo).  We also finalize the rectangle still growing when the
trail ends; the paper's pseudo-code simply drops it, losing the (frequent)
final dwell of every object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.geometry import Point, Rect
from repro.core.params import CTParams

#: One trail record: a location and its timestamp (``(x_ik, y_ik, t_ik)``).
TrailSample = Tuple[Point, float]


@dataclass
class QSRegion:
    """A quasi-static region mined from one object's trail (``B_il``).

    Attributes:
        rect: the frozen bounding rectangle.
        dwell_time: total time the object spent inside (``tau_il``).
        object_id: owner of the trail this region came from (None after
            cross-object merging).
        order: position within the owner's qs-region sequence, used to wire
            the Phase-2 chain graph.
    """

    rect: Rect
    dwell_time: float
    object_id: Optional[int] = None
    order: int = 0
    #: Object ids whose trails contributed to this region (grows as regions
    #: merge in Phases 2-3).
    sources: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.dwell_time < 0:
            raise ValueError("dwell_time must be non-negative")
        if not self.sources and self.object_id is not None:
            self.sources = [self.object_id]

    @property
    def area(self) -> float:
        return self.rect.area

    def resident_density(self, epsilon: float = 1e-9) -> float:
        """Dwell time per unit area (the Phase-2 merge criterion).

        Degenerate rectangles (a perfectly still object) get ``epsilon``
        area so their density is large but finite.
        """
        return self.dwell_time / max(self.rect.area, epsilon)


def identify_qs_regions(
    trail: Sequence[TrailSample],
    params: CTParams,
    object_id: Optional[int] = None,
) -> List[QSRegion]:
    """Segment one object's trail into qs-regions (Figure 3).

    Args:
        trail: samples ordered by increasing timestamp.
        params: the thresholds ``t_dist``/``t_rate``/``t_time``/``t_area``.
        object_id: attached to the produced regions for Phase 2.

    Returns:
        The object's qs-regions in time order.
    """
    if len(trail) == 0:
        return []
    _check_ordered(trail)

    regions: List[QSRegion] = []
    order = 0

    # Step 1-2: the first MBR contains only the first sample.
    first_point, first_time = trail[0]
    rect = Rect.from_point(first_point)
    window_start_time = first_time  # t_j: timestamp of the oldest sample inside
    prev_time = first_time

    for point, time in list(trail)[1:]:
        expanded = rect.union_point(point)  # Step 3(A)
        dt = time - prev_time
        growth_rate = (
            (expanded.diagonal - rect.diagonal) / dt if dt > 0 else float("inf")
        )
        if expanded.diagonal > params.t_dist and growth_rate > params.t_rate:
            # Step 3(B): stop growing; freeze or discard B(j, k-1).
            dwell = prev_time - window_start_time
            if dwell > params.t_time and rect.area < params.t_area:
                regions.append(
                    QSRegion(
                        rect=rect,
                        dwell_time=dwell,
                        object_id=object_id,
                        order=order,
                    )
                )
                order += 1
            # Steps (c)-(d): restart from the sample that broke the growth.
            rect = Rect.from_point(point)
            window_start_time = time
        else:
            rect = expanded
        prev_time = time

    # Finalize the rectangle still growing when the history ends.
    dwell = prev_time - window_start_time
    if dwell > params.t_time and rect.area < params.t_area:
        regions.append(
            QSRegion(rect=rect, dwell_time=dwell, object_id=object_id, order=order)
        )

    return regions


def trail_duration(trail: Sequence[TrailSample]) -> float:
    """Duration of a trail (``t_i,|Hi| - t_i,1``); 0 for empty/singleton trails."""
    if len(trail) < 2:
        return 0.0
    return trail[-1][1] - trail[0][1]


def _check_ordered(trail: Sequence[TrailSample]) -> None:
    previous = None
    for _, time in trail:
        if previous is not None and time < previous:
            raise ValueError("trail samples must be ordered by non-decreasing time")
        previous = time
