"""The end-to-end CT-R-tree construction pipeline (Section 3.1).

Glues the four phases together:

1. :func:`~repro.core.qsregion.identify_qs_regions` over every object's trail;
2. :func:`~repro.core.update_graph.build_update_graph` (chain graphs,
   resident-density merging, graph union, edge-weight scaling);
3. :func:`~repro.core.graph_merge.merge_by_traffic` (Equation 6);
4. a :class:`~repro.core.ctrtree.CTRTree` over the surviving qs-regions,
   loaded with the objects' current positions.

All construction I/O is charged to ``IOCategory.BUILD`` -- the paper treats
index construction as an offline process and excludes it from the online
update/query measurements ("the time required to generate the CT-R-tree ...
is usually less than ten minutes.  Also, since this process can be done in an
offline fashion, it does not interrupt the processing of online updates").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.core.ctrtree import CTRTree
from repro.core.geometry import Point, Rect
from repro.core.graph_merge import merge_by_traffic
from repro.core.params import CTParams
from repro.core.qsregion import TrailSample, identify_qs_regions, trail_duration
from repro.core.update_graph import UpdateGraph, build_update_graph
from repro.hashindex import HashIndex
from repro.obs.metrics import get_registry
from repro.storage.iostats import IOCategory
from repro.storage.pager import Pager


@dataclass
class BuildReport:
    """What the pipeline did, for experiment logs and tests."""

    object_count: int
    phase1_regions: int
    phase2_regions: int
    phase3_regions: int
    traffic_merges: int
    t_max: float
    build_reads: int
    build_writes: int
    #: Wall-clock seconds per construction phase (phase1_qs_mining,
    #: phase2_graph, phase3_traffic_merge, phase4_tree_load).
    phase_timings: Dict[str, float] = field(default_factory=dict)

    @property
    def build_ios(self) -> int:
        return self.build_reads + self.build_writes

    def to_dict(self) -> Dict[str, object]:
        return {
            "object_count": self.object_count,
            "phase1_regions": self.phase1_regions,
            "phase2_regions": self.phase2_regions,
            "phase3_regions": self.phase3_regions,
            "traffic_merges": self.traffic_merges,
            "t_max": self.t_max,
            "build_reads": self.build_reads,
            "build_writes": self.build_writes,
            "build_ios": self.build_ios,
            "phase_timings": dict(self.phase_timings),
        }


class CTRTreeBuilder:
    """History -> CT-R-tree, with the paper's thresholds.

    Args:
        ct_params: Phase-1/Equation-6/adaptation thresholds.
        query_rate: the anticipated query arrival rate ``r_q`` (Equation 6).
        max_entries: page fan-out (``N_entry``).
        split: structural split policy.
        exhaustive: candidate generation for Phase-2 merging on the unified
            graph (None = auto by size; see ``merge_by_density``).
        adaptive: enable Appendix-A adaptation on the produced tree.
        workers: run Phase 1 and Phase 2a across this many processes
            (:mod:`repro.parallel.build`); 0 or 1 keeps the serial path.
            The parallel build is bit-identical to the serial one -- only
            wall clock changes.
    """

    def __init__(
        self,
        ct_params: Optional[CTParams] = None,
        *,
        query_rate: float = 50.0,
        max_entries: int = 20,
        split: str = "quadratic",
        exhaustive: Optional[bool] = None,
        adaptive: bool = True,
        workers: int = 0,
    ) -> None:
        self.params = ct_params if ct_params is not None else CTParams()
        self.query_rate = query_rate
        self.max_entries = max_entries
        self.split = split
        self.exhaustive = exhaustive
        self.adaptive = adaptive
        self.workers = workers
        #: Wall-clock seconds per phase of the most recent mine()/build().
        self.last_phase_timings: Dict[str, float] = {}

    # -- phases 1-3 ---------------------------------------------------------

    def mine(
        self,
        histories: Mapping[int, Sequence[TrailSample]],
        domain: Rect,
    ) -> Tuple[UpdateGraph, int, int, float]:
        """Run Phases 1-3; returns (graph, phase1 count, traffic merges, t_max).

        Each phase is a timed span: wall-clock seconds land in
        ``self.last_phase_timings`` and (when enabled) the metrics registry.
        Construction is offline, so the few ``perf_counter`` calls are free
        relative to the work they bracket.
        """
        registry = get_registry()
        timings = self.last_phase_timings = {}
        parallel = self.workers and self.workers > 1
        pool = None
        if parallel:
            # Lazy import: repro.parallel imports repro.core, not the other
            # way around at module load.  One pool serves both parallel
            # phases so fork start-up is paid once.
            from repro.parallel.build import build_pool

            pool = build_pool(self.workers)

        try:
            t0 = perf_counter()
            if parallel:
                from repro.parallel.build import parallel_qs_regions

                per_object = parallel_qs_regions(
                    histories, self.params, self.workers, pool=pool
                )
            else:
                per_object = [
                    identify_qs_regions(trail, self.params, object_id=obj_id)
                    for obj_id, trail in histories.items()
                ]
            phase1_count = sum(len(regions) for regions in per_object)
            t_max = max(
                (trail_duration(t) for t in histories.values()), default=0.0
            )
            timings["phase1_qs_mining"] = perf_counter() - t0

            t0 = perf_counter()
            if parallel:
                from repro.core.update_graph import finish_update_graph
                from repro.parallel.build import parallel_object_graphs

                graphs = parallel_object_graphs(
                    per_object, self.params.t_area, self.workers, pool=pool
                )
                graph = finish_update_graph(
                    graphs, self.params.t_area, t_max, exhaustive=self.exhaustive
                )
            else:
                graph = build_update_graph(
                    per_object,
                    self.params.t_area,
                    t_max,
                    exhaustive=self.exhaustive,
                )
            timings["phase2_graph"] = perf_counter() - t0
        finally:
            if pool is not None:
                pool.shutdown()

        t0 = perf_counter()
        traffic_merges = merge_by_traffic(
            graph, self.query_rate, domain.area, self.params
        )
        timings["phase3_traffic_merge"] = perf_counter() - t0

        for phase, seconds in timings.items():
            registry.record_duration(f"build.{phase}_s", seconds)
        if self.workers:
            # Recorded alongside the timings so BuildReport.phase_timings
            # carries what the per-phase wall clocks were measured at.
            timings["parallel_workers"] = float(self.workers)
        return graph, phase1_count, traffic_merges, t_max

    # -- phase 4 ---------------------------------------------------------------

    def build(
        self,
        pager: Pager,
        domain: Rect,
        histories: Mapping[int, Sequence[TrailSample]],
        current: Optional[Mapping[int, Point]] = None,
        hash_index: Optional[HashIndex] = None,
    ) -> Tuple[CTRTree, BuildReport]:
        """Mine qs-regions from ``histories`` and load ``current`` positions.

        The paper's protocol: "The first N_hist - 1 records are used to
        generate an R-tree composed of qs-regions.  The N_hist-th sample is
        then inserted to the R-tree to produce the CT-R-tree" -- pass the
        first samples as ``histories`` and the last as ``current``.
        """
        stats = pager.stats
        before = stats.counter(IOCategory.BUILD)
        with stats.category(IOCategory.BUILD):
            graph, phase1_count, traffic_merges, t_max = self.mine(histories, domain)
            phase2_count = graph.region_count + traffic_merges  # pre-Phase-3 count
            t0 = perf_counter()
            tree = CTRTree(
                pager,
                domain,
                graph.regions(),
                ct_params=self.params,
                max_entries=self.max_entries,
                split=self.split,
                hash_index=hash_index,
                adaptive=self.adaptive,
            )
            if current:
                for obj_id, point in current.items():
                    tree.insert(obj_id, point)
            self.last_phase_timings["phase4_tree_load"] = perf_counter() - t0
            get_registry().record_duration(
                "build.phase4_tree_load_s",
                self.last_phase_timings["phase4_tree_load"],
            )
        after = stats.counter(IOCategory.BUILD)

        report = BuildReport(
            object_count=len(histories),
            phase1_regions=phase1_count,
            phase2_regions=phase2_count,
            phase3_regions=graph.region_count,
            traffic_merges=traffic_merges,
            t_max=t_max,
            build_reads=after.reads - before.reads,
            build_writes=after.writes - before.writes,
            phase_timings=dict(self.last_phase_timings),
        )
        return tree, report
