"""Points and (minimum bounding) rectangles.

The paper develops the CT-R-tree in two dimensions but notes the algorithms
"are applicable to the general case of any multidimensional data"
(Section 3.1.1).  :class:`Rect` is therefore dimension-agnostic: a pair of
coordinate tuples ``lo``/``hi``.  Rectangles are closed (boundary points are
contained) and immutable; every operation returns a new rectangle.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence, Tuple

#: A point is a tuple of coordinates, e.g. ``(x, y)``.
Point = Tuple[float, ...]


class Rect:
    """An axis-aligned hyper-rectangle ``[lo[i], hi[i]]`` in each dimension.

    Used for MBRs, qs-regions, and range queries alike.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Sequence[float], hi: Sequence[float]) -> None:
        if len(lo) != len(hi):
            raise ValueError(f"dimension mismatch: lo={lo!r} hi={hi!r}")
        if not lo:
            raise ValueError("rectangles must have at least one dimension")
        for low, high in zip(lo, hi):
            if low > high:
                raise ValueError(f"degenerate bounds: lo={lo!r} hi={hi!r}")
        self.lo: Point = tuple(float(c) for c in lo)
        self.hi: Point = tuple(float(c) for c in hi)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_point(cls, point: Sequence[float]) -> "Rect":
        """The degenerate rectangle containing exactly ``point``."""
        return cls(point, point)

    @classmethod
    def from_points(cls, points: Iterable[Sequence[float]]) -> "Rect":
        """The minimum bounding rectangle of a non-empty point set."""
        iterator = iter(points)
        try:
            first = next(iterator)
        except StopIteration:
            raise ValueError("cannot bound an empty point set") from None
        lo = list(first)
        hi = list(first)
        for point in iterator:
            for i, coord in enumerate(point):
                if coord < lo[i]:
                    lo[i] = coord
                elif coord > hi[i]:
                    hi[i] = coord
        return cls(lo, hi)

    @classmethod
    def union_all(cls, rects: Iterable["Rect"]) -> "Rect":
        """The minimum bounding rectangle of a non-empty set of rectangles."""
        iterator = iter(rects)
        try:
            first = next(iterator)
        except StopIteration:
            raise ValueError("cannot bound an empty rectangle set") from None
        lo = list(first.lo)
        hi = list(first.hi)
        for rect in iterator:
            for i in range(len(lo)):
                if rect.lo[i] < lo[i]:
                    lo[i] = rect.lo[i]
                if rect.hi[i] > hi[i]:
                    hi[i] = rect.hi[i]
        return cls(lo, hi)

    # -- scalar measures ----------------------------------------------------

    @property
    def dim(self) -> int:
        return len(self.lo)

    @property
    def sides(self) -> Tuple[float, ...]:
        return tuple(h - l for l, h in zip(self.lo, self.hi))

    @property
    def area(self) -> float:
        """Hyper-volume (area in 2-D); zero for degenerate rectangles."""
        result = 1.0
        for side in self.sides:
            result *= side
        return result

    @property
    def margin(self) -> float:
        """Sum of side lengths (the R*-tree split criterion uses this)."""
        return sum(self.sides)

    @property
    def diagonal(self) -> float:
        """Euclidean diagonal -- the "diameter" ``d_i(j,k)`` of Equation 1."""
        return math.sqrt(sum(side * side for side in self.sides))

    @property
    def center(self) -> Point:
        return tuple((l + h) / 2.0 for l, h in zip(self.lo, self.hi))

    # -- predicates ----------------------------------------------------------

    def contains_point(self, point: Sequence[float]) -> bool:
        return all(l <= c <= h for l, c, h in zip(self.lo, point, self.hi))

    def contains_rect(self, other: "Rect") -> bool:
        return all(
            sl <= ol and oh <= sh
            for sl, ol, oh, sh in zip(self.lo, other.lo, other.hi, self.hi)
        )

    def intersects(self, other: "Rect") -> bool:
        """True when the closed rectangles share at least a boundary point."""
        return all(
            sl <= oh and ol <= sh
            for sl, oh, ol, sh in zip(self.lo, other.hi, other.lo, self.hi)
        )

    # -- combination -----------------------------------------------------------

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """The overlap rectangle, or None when disjoint."""
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        if any(l > h for l, h in zip(lo, hi)):
            return None
        return Rect(lo, hi)

    def overlap_area(self, other: "Rect") -> float:
        overlap = self.intersection(other)
        return overlap.area if overlap is not None else 0.0

    def union(self, other: "Rect") -> "Rect":
        return Rect(
            tuple(min(a, b) for a, b in zip(self.lo, other.lo)),
            tuple(max(a, b) for a, b in zip(self.hi, other.hi)),
        )

    def union_point(self, point: Sequence[float]) -> "Rect":
        """The MBR expanded (if necessary) to include ``point``."""
        if self.contains_point(point):
            return self
        return Rect(
            tuple(min(l, c) for l, c in zip(self.lo, point)),
            tuple(max(h, c) for h, c in zip(self.hi, point)),
        )

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed to cover ``other`` (Guttman's ChooseLeaf)."""
        return self.union(other).area - self.area

    def enlargement_point(self, point: Sequence[float]) -> float:
        return self.union_point(point).area - self.area

    def inflated(self, alpha: float) -> "Rect":
        """Each side scaled by ``1 + alpha`` about the center.

        This is the alpha-tree's "loose MBR" expansion (Section 2.2): when an
        MBR must grow, grow it by a fraction ``alpha`` beyond the minimum so
        boundary objects get leeway to move without leaving it.
        """
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        half = alpha / 2.0
        return Rect(
            tuple(l - (h - l) * half for l, h in zip(self.lo, self.hi)),
            tuple(h + (h - l) * half for l, h in zip(self.lo, self.hi)),
        )

    def min_distance(self, point: Sequence[float]) -> float:
        """Euclidean distance from ``point`` to the nearest point of the
        rectangle (0 when inside).  The lower bound used by best-first
        nearest-neighbour search."""
        total = 0.0
        for low, coord, high in zip(self.lo, point, self.hi):
            if coord < low:
                delta = low - coord
            elif coord > high:
                delta = coord - high
            else:
                continue
            total += delta * delta
        return math.sqrt(total)

    def translated(self, offset: Sequence[float]) -> "Rect":
        return Rect(
            tuple(l + d for l, d in zip(self.lo, offset)),
            tuple(h + d for h, d in zip(self.hi, offset)),
        )

    # -- dunder ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rect):
            return NotImplemented
        return self.lo == other.lo and self.hi == other.hi

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __repr__(self) -> str:
        return f"Rect({list(self.lo)}, {list(self.hi)})"


def square_at(center: Sequence[float], side: float) -> Rect:
    """The axis-aligned square (hyper-cube) of side ``side`` centered at ``center``.

    Range queries in the paper "have the shape of a square, with central point
    chosen randomly within the city area" (Section 4.1).
    """
    if side < 0:
        raise ValueError(f"side must be non-negative, got {side}")
    half = side / 2.0
    return Rect(tuple(c - half for c in center), tuple(c + half for c in center))
