"""Points and (minimum bounding) rectangles.

The paper develops the CT-R-tree in two dimensions but notes the algorithms
"are applicable to the general case of any multidimensional data"
(Section 3.1.1).  :class:`Rect` is therefore dimension-agnostic: a pair of
coordinate tuples ``lo``/``hi``.  Rectangles are closed (boundary points are
contained) and immutable; every operation returns a new rectangle.

This module is the innermost hot path of the whole system: every
choose-subtree descent, split evaluation and query fan-out funnels through
``intersects``/``enlargement``/``union``/``contains_point``.  The methods
therefore carry unrolled 2-D fast paths (the evaluated workloads are 2-D; the
n-D general case falls through to the original loops), ``area`` is computed
once and cached (rectangles are immutable), and the module exposes
**flat-tuple kernels** (:func:`rect_intersects`, :func:`rect_contains_point`,
:func:`rect_enlargement`) operating directly on ``lo``/``hi`` tuples so the
R-tree descent loops skip per-entry method dispatch.  All fast paths perform
the same floating-point operations in the same order as the generic paths,
so results are bit-identical.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence, Tuple

#: A point is a tuple of coordinates, e.g. ``(x, y)``.
Point = Tuple[float, ...]


class Rect:
    """An axis-aligned hyper-rectangle ``[lo[i], hi[i]]`` in each dimension.

    Used for MBRs, qs-regions, and range queries alike.
    """

    __slots__ = ("lo", "hi", "_area")

    def __init__(self, lo: Sequence[float], hi: Sequence[float]) -> None:
        if len(lo) != len(hi):
            raise ValueError(f"dimension mismatch: lo={lo!r} hi={hi!r}")
        if not lo:
            raise ValueError("rectangles must have at least one dimension")
        for low, high in zip(lo, hi):
            if low > high:
                raise ValueError(f"degenerate bounds: lo={lo!r} hi={hi!r}")
        self.lo: Point = tuple(float(c) for c in lo)
        self.hi: Point = tuple(float(c) for c in hi)
        self._area: Optional[float] = None

    @classmethod
    def _make(cls, lo: Point, hi: Point) -> "Rect":
        """Trusted constructor: ``lo``/``hi`` are already canonical float
        tuples with ``lo[i] <= hi[i]`` (coordinates taken from existing
        rectangles).  Skips validation on the combination hot paths."""
        rect = object.__new__(cls)
        rect.lo = lo
        rect.hi = hi
        rect._area = None
        return rect

    def __getstate__(self) -> Tuple[Point, Point]:
        # The cached area is derived state; keep pickles (and the fork-based
        # parallel build's chunk results) minimal and canonical.
        return (self.lo, self.hi)

    def __setstate__(self, state: Tuple[Point, Point]) -> None:
        self.lo, self.hi = state
        self._area = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_point(cls, point: Sequence[float]) -> "Rect":
        """The degenerate rectangle containing exactly ``point``."""
        return cls(point, point)

    @classmethod
    def from_points(cls, points: Iterable[Sequence[float]]) -> "Rect":
        """The minimum bounding rectangle of a non-empty point set."""
        iterator = iter(points)
        try:
            first = next(iterator)
        except StopIteration:
            raise ValueError("cannot bound an empty point set") from None
        lo = list(first)
        hi = list(first)
        for point in iterator:
            for i, coord in enumerate(point):
                if coord < lo[i]:
                    lo[i] = coord
                elif coord > hi[i]:
                    hi[i] = coord
        return cls(lo, hi)

    @classmethod
    def union_all(cls, rects: Iterable["Rect"]) -> "Rect":
        """The minimum bounding rectangle of a non-empty set of rectangles."""
        iterator = iter(rects)
        try:
            first = next(iterator)
        except StopIteration:
            raise ValueError("cannot bound an empty rectangle set") from None
        lo = list(first.lo)
        hi = list(first.hi)
        for rect in iterator:
            for i in range(len(lo)):
                if rect.lo[i] < lo[i]:
                    lo[i] = rect.lo[i]
                if rect.hi[i] > hi[i]:
                    hi[i] = rect.hi[i]
        return cls(lo, hi)

    # -- scalar measures ----------------------------------------------------

    @property
    def dim(self) -> int:
        return len(self.lo)

    @property
    def sides(self) -> Tuple[float, ...]:
        return tuple(h - l for l, h in zip(self.lo, self.hi))

    @property
    def area(self) -> float:
        """Hyper-volume (area in 2-D); zero for degenerate rectangles.

        Computed once and cached -- rectangles are immutable and the R-tree's
        choose-subtree ties on area, so the same rectangle's area is read
        many times per descent.
        """
        result = self._area
        if result is None:
            lo = self.lo
            hi = self.hi
            if len(lo) == 2:
                result = (hi[0] - lo[0]) * (hi[1] - lo[1])
            else:
                result = 1.0
                for low, high in zip(lo, hi):
                    result *= high - low
            self._area = result
        return result

    @property
    def margin(self) -> float:
        """Sum of side lengths (the R*-tree split criterion uses this)."""
        return sum(self.sides)

    @property
    def diagonal(self) -> float:
        """Euclidean diagonal -- the "diameter" ``d_i(j,k)`` of Equation 1."""
        return math.sqrt(sum(side * side for side in self.sides))

    @property
    def center(self) -> Point:
        return tuple((l + h) / 2.0 for l, h in zip(self.lo, self.hi))

    # -- predicates ----------------------------------------------------------

    def contains_point(self, point: Sequence[float]) -> bool:
        lo = self.lo
        hi = self.hi
        if len(lo) == 2 and len(point) == 2:
            return lo[0] <= point[0] <= hi[0] and lo[1] <= point[1] <= hi[1]
        return all(l <= c <= h for l, c, h in zip(lo, point, hi))

    def contains_rect(self, other: "Rect") -> bool:
        slo = self.lo
        shi = self.hi
        olo = other.lo
        ohi = other.hi
        if len(slo) == 2 and len(olo) == 2:
            return (
                slo[0] <= olo[0]
                and ohi[0] <= shi[0]
                and slo[1] <= olo[1]
                and ohi[1] <= shi[1]
            )
        return all(
            sl <= ol and oh <= sh for sl, ol, oh, sh in zip(slo, olo, ohi, shi)
        )

    def intersects(self, other: "Rect") -> bool:
        """True when the closed rectangles share at least a boundary point."""
        slo = self.lo
        shi = self.hi
        olo = other.lo
        ohi = other.hi
        if len(slo) == 2 and len(olo) == 2:
            return (
                slo[0] <= ohi[0]
                and olo[0] <= shi[0]
                and slo[1] <= ohi[1]
                and olo[1] <= shi[1]
            )
        return all(
            sl <= oh and ol <= sh for sl, oh, ol, sh in zip(slo, ohi, olo, shi)
        )

    # -- combination -----------------------------------------------------------

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """The overlap rectangle, or None when disjoint."""
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        if any(l > h for l, h in zip(lo, hi)):
            return None
        return Rect._make(lo, hi)

    def overlap_area(self, other: "Rect") -> float:
        overlap = self.intersection(other)
        return overlap.area if overlap is not None else 0.0

    def union(self, other: "Rect") -> "Rect":
        slo = self.lo
        shi = self.hi
        olo = other.lo
        ohi = other.hi
        if len(slo) == 2 and len(olo) == 2:
            return Rect._make(
                (
                    slo[0] if slo[0] <= olo[0] else olo[0],
                    slo[1] if slo[1] <= olo[1] else olo[1],
                ),
                (
                    shi[0] if shi[0] >= ohi[0] else ohi[0],
                    shi[1] if shi[1] >= ohi[1] else ohi[1],
                ),
            )
        return Rect._make(
            tuple(min(a, b) for a, b in zip(slo, olo)),
            tuple(max(a, b) for a, b in zip(shi, ohi)),
        )

    def union_point(self, point: Sequence[float]) -> "Rect":
        """The MBR expanded (if necessary) to include ``point``."""
        if self.contains_point(point):
            return self
        return Rect(
            tuple(min(l, c) for l, c in zip(self.lo, point)),
            tuple(max(h, c) for h, c in zip(self.hi, point)),
        )

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed to cover ``other`` (Guttman's ChooseLeaf)."""
        slo = self.lo
        shi = self.hi
        olo = other.lo
        ohi = other.hi
        if len(slo) == 2 and len(olo) == 2:
            lo0 = slo[0] if slo[0] <= olo[0] else olo[0]
            lo1 = slo[1] if slo[1] <= olo[1] else olo[1]
            hi0 = shi[0] if shi[0] >= ohi[0] else ohi[0]
            hi1 = shi[1] if shi[1] >= ohi[1] else ohi[1]
            return (hi0 - lo0) * (hi1 - lo1) - self.area
        return self.union(other).area - self.area

    def enlargement_point(self, point: Sequence[float]) -> float:
        return self.union_point(point).area - self.area

    def inflated(self, alpha: float) -> "Rect":
        """Each side scaled by ``1 + alpha`` about the center.

        This is the alpha-tree's "loose MBR" expansion (Section 2.2): when an
        MBR must grow, grow it by a fraction ``alpha`` beyond the minimum so
        boundary objects get leeway to move without leaving it.
        """
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        half = alpha / 2.0
        return Rect(
            tuple(l - (h - l) * half for l, h in zip(self.lo, self.hi)),
            tuple(h + (h - l) * half for l, h in zip(self.lo, self.hi)),
        )

    def min_distance(self, point: Sequence[float]) -> float:
        """Euclidean distance from ``point`` to the nearest point of the
        rectangle (0 when inside).  The lower bound used by best-first
        nearest-neighbour search."""
        total = 0.0
        for low, coord, high in zip(self.lo, point, self.hi):
            if coord < low:
                delta = low - coord
            elif coord > high:
                delta = coord - high
            else:
                continue
            total += delta * delta
        return math.sqrt(total)

    def translated(self, offset: Sequence[float]) -> "Rect":
        return Rect(
            tuple(l + d for l, d in zip(self.lo, offset)),
            tuple(h + d for h, d in zip(self.hi, offset)),
        )

    # -- dunder ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rect):
            return NotImplemented
        return self.lo == other.lo and self.hi == other.hi

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __repr__(self) -> str:
        return f"Rect({list(self.lo)}, {list(self.hi)})"


# -- flat-tuple kernels --------------------------------------------------
#
# The R-tree descent loops (choose-subtree, range search, find-leaf) touch
# every entry of every visited node; going through ``Rect`` methods costs an
# attribute lookup plus a bound-method call per test.  These module-level
# kernels take the ``lo``/``hi`` tuples directly so the descent loops pay one
# global lookup per *node* (hoisted into a local) instead of per entry.  Each
# performs exactly the floating-point operations of the corresponding method,
# so switching a call site never changes results.


def rect_intersects(alo: Point, ahi: Point, blo: Point, bhi: Point) -> bool:
    """``Rect(alo, ahi).intersects(Rect(blo, bhi))`` without the objects."""
    if len(alo) == 2:
        return (
            alo[0] <= bhi[0]
            and blo[0] <= ahi[0]
            and alo[1] <= bhi[1]
            and blo[1] <= ahi[1]
        )
    return all(
        al <= bh and bl <= ah for al, bh, bl, ah in zip(alo, bhi, blo, ahi)
    )


def rect_contains_point(lo: Point, hi: Point, point: Sequence[float]) -> bool:
    """``Rect(lo, hi).contains_point(point)`` without the object."""
    if len(lo) == 2 and len(point) == 2:
        return lo[0] <= point[0] <= hi[0] and lo[1] <= point[1] <= hi[1]
    return all(l <= c <= h for l, c, h in zip(lo, point, hi))


def rect_area(lo: Point, hi: Point) -> float:
    """Hyper-volume of the rectangle ``[lo, hi]``."""
    if len(lo) == 2:
        return (hi[0] - lo[0]) * (hi[1] - lo[1])
    result = 1.0
    for low, high in zip(lo, hi):
        result *= high - low
    return result


def rect_enlargement(
    alo: Point, ahi: Point, blo: Point, bhi: Point, a_area: float
) -> float:
    """Area growth of ``[alo, ahi]`` (own area ``a_area``) to cover
    ``[blo, bhi]`` -- the choose-subtree kernel."""
    if len(alo) == 2:
        lo0 = alo[0] if alo[0] <= blo[0] else blo[0]
        lo1 = alo[1] if alo[1] <= blo[1] else blo[1]
        hi0 = ahi[0] if ahi[0] >= bhi[0] else bhi[0]
        hi1 = ahi[1] if ahi[1] >= bhi[1] else bhi[1]
        return (hi0 - lo0) * (hi1 - lo1) - a_area
    lo = tuple(min(a, b) for a, b in zip(alo, blo))
    hi = tuple(max(a, b) for a, b in zip(ahi, bhi))
    return rect_area(lo, hi) - a_area


def square_at(center: Sequence[float], side: float) -> Rect:
    """The axis-aligned square (hyper-cube) of side ``side`` centered at ``center``.

    Range queries in the paper "have the shape of a square, with central point
    chosen randomly within the city area" (Section 4.1).
    """
    if side < 0:
        raise ValueError(f"side must be non-negative, got {side}")
    half = side / 2.0
    return Rect(tuple(c - half for c in center), tuple(c + half for c in center))
