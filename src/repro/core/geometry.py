"""Points and (minimum bounding) rectangles.

The paper develops the CT-R-tree in two dimensions but notes the algorithms
"are applicable to the general case of any multidimensional data"
(Section 3.1.1).  :class:`Rect` is therefore dimension-agnostic: a pair of
coordinate tuples ``lo``/``hi``.  Rectangles are closed (boundary points are
contained) and immutable; every operation returns a new rectangle.

This module is the innermost hot path of the whole system: every
choose-subtree descent, split evaluation and query fan-out funnels through
``intersects``/``enlargement``/``union``/``contains_point``.  The methods
therefore carry unrolled 2-D fast paths (the evaluated workloads are 2-D; the
n-D general case falls through to the original loops), ``area`` is computed
once and cached (rectangles are immutable), and the module exposes
**flat-tuple kernels** (:func:`rect_intersects`, :func:`rect_contains_point`,
:func:`rect_enlargement`) operating directly on ``lo``/``hi`` tuples so the
R-tree descent loops skip per-entry method dispatch.  All fast paths perform
the same floating-point operations in the same order as the generic paths,
so results are bit-identical.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

try:  # numpy accelerates whole-node scans; everything works without it.
    import numpy as _np
except Exception:  # pragma: no cover - numpy is present in the dev image
    _np = None  # type: ignore[assignment]

#: A point is a tuple of coordinates, e.g. ``(x, y)``.
Point = Tuple[float, ...]


class Rect:
    """An axis-aligned hyper-rectangle ``[lo[i], hi[i]]`` in each dimension.

    Used for MBRs, qs-regions, and range queries alike.
    """

    __slots__ = ("lo", "hi", "_area")

    def __init__(self, lo: Sequence[float], hi: Sequence[float]) -> None:
        if len(lo) != len(hi):
            raise ValueError(f"dimension mismatch: lo={lo!r} hi={hi!r}")
        if not lo:
            raise ValueError("rectangles must have at least one dimension")
        for low, high in zip(lo, hi):
            if low > high:
                raise ValueError(f"degenerate bounds: lo={lo!r} hi={hi!r}")
        self.lo: Point = tuple(float(c) for c in lo)
        self.hi: Point = tuple(float(c) for c in hi)
        self._area: Optional[float] = None

    @classmethod
    def _make(cls, lo: Point, hi: Point) -> "Rect":
        """Trusted constructor: ``lo``/``hi`` are already canonical float
        tuples with ``lo[i] <= hi[i]`` (coordinates taken from existing
        rectangles).  Skips validation on the combination hot paths."""
        rect = object.__new__(cls)
        rect.lo = lo
        rect.hi = hi
        rect._area = None
        return rect

    def __getstate__(self) -> Tuple[Point, Point]:
        # The cached area is derived state; keep pickles (and the fork-based
        # parallel build's chunk results) minimal and canonical.
        return (self.lo, self.hi)

    def __setstate__(self, state: Tuple[Point, Point]) -> None:
        self.lo, self.hi = state
        self._area = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_point(cls, point: Sequence[float]) -> "Rect":
        """The degenerate rectangle containing exactly ``point``."""
        return cls(point, point)

    @classmethod
    def from_points(cls, points: Iterable[Sequence[float]]) -> "Rect":
        """The minimum bounding rectangle of a non-empty point set."""
        iterator = iter(points)
        try:
            first = next(iterator)
        except StopIteration:
            raise ValueError("cannot bound an empty point set") from None
        lo = list(first)
        hi = list(first)
        for point in iterator:
            for i, coord in enumerate(point):
                if coord < lo[i]:
                    lo[i] = coord
                elif coord > hi[i]:
                    hi[i] = coord
        return cls(lo, hi)

    @classmethod
    def union_all(cls, rects: Iterable["Rect"]) -> "Rect":
        """The minimum bounding rectangle of a non-empty set of rectangles."""
        iterator = iter(rects)
        try:
            first = next(iterator)
        except StopIteration:
            raise ValueError("cannot bound an empty rectangle set") from None
        lo = list(first.lo)
        hi = list(first.hi)
        for rect in iterator:
            for i in range(len(lo)):
                if rect.lo[i] < lo[i]:
                    lo[i] = rect.lo[i]
                if rect.hi[i] > hi[i]:
                    hi[i] = rect.hi[i]
        return cls(lo, hi)

    # -- scalar measures ----------------------------------------------------

    @property
    def dim(self) -> int:
        return len(self.lo)

    @property
    def sides(self) -> Tuple[float, ...]:
        return tuple(h - l for l, h in zip(self.lo, self.hi))

    @property
    def area(self) -> float:
        """Hyper-volume (area in 2-D); zero for degenerate rectangles.

        Computed once and cached -- rectangles are immutable and the R-tree's
        choose-subtree ties on area, so the same rectangle's area is read
        many times per descent.
        """
        result = self._area
        if result is None:
            lo = self.lo
            hi = self.hi
            if len(lo) == 2:
                result = (hi[0] - lo[0]) * (hi[1] - lo[1])
            else:
                result = 1.0
                for low, high in zip(lo, hi):
                    result *= high - low
            self._area = result
        return result

    @property
    def margin(self) -> float:
        """Sum of side lengths (the R*-tree split criterion uses this)."""
        return sum(self.sides)

    @property
    def diagonal(self) -> float:
        """Euclidean diagonal -- the "diameter" ``d_i(j,k)`` of Equation 1."""
        return math.sqrt(sum(side * side for side in self.sides))

    @property
    def center(self) -> Point:
        return tuple((l + h) / 2.0 for l, h in zip(self.lo, self.hi))

    # -- predicates ----------------------------------------------------------

    def contains_point(self, point: Sequence[float]) -> bool:
        lo = self.lo
        hi = self.hi
        if len(lo) == 2 and len(point) == 2:
            return lo[0] <= point[0] <= hi[0] and lo[1] <= point[1] <= hi[1]
        return all(l <= c <= h for l, c, h in zip(lo, point, hi))

    def contains_rect(self, other: "Rect") -> bool:
        slo = self.lo
        shi = self.hi
        olo = other.lo
        ohi = other.hi
        if len(slo) == 2 and len(olo) == 2:
            return (
                slo[0] <= olo[0]
                and ohi[0] <= shi[0]
                and slo[1] <= olo[1]
                and ohi[1] <= shi[1]
            )
        return all(
            sl <= ol and oh <= sh for sl, ol, oh, sh in zip(slo, olo, ohi, shi)
        )

    def intersects(self, other: "Rect") -> bool:
        """True when the closed rectangles share at least a boundary point."""
        slo = self.lo
        shi = self.hi
        olo = other.lo
        ohi = other.hi
        if len(slo) == 2 and len(olo) == 2:
            return (
                slo[0] <= ohi[0]
                and olo[0] <= shi[0]
                and slo[1] <= ohi[1]
                and olo[1] <= shi[1]
            )
        return all(
            sl <= oh and ol <= sh for sl, oh, ol, sh in zip(slo, ohi, olo, shi)
        )

    # -- combination -----------------------------------------------------------

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """The overlap rectangle, or None when disjoint."""
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        if any(l > h for l, h in zip(lo, hi)):
            return None
        return Rect._make(lo, hi)

    def overlap_area(self, other: "Rect") -> float:
        overlap = self.intersection(other)
        return overlap.area if overlap is not None else 0.0

    def union(self, other: "Rect") -> "Rect":
        slo = self.lo
        shi = self.hi
        olo = other.lo
        ohi = other.hi
        if len(slo) == 2 and len(olo) == 2:
            return Rect._make(
                (
                    slo[0] if slo[0] <= olo[0] else olo[0],
                    slo[1] if slo[1] <= olo[1] else olo[1],
                ),
                (
                    shi[0] if shi[0] >= ohi[0] else ohi[0],
                    shi[1] if shi[1] >= ohi[1] else ohi[1],
                ),
            )
        return Rect._make(
            tuple(min(a, b) for a, b in zip(slo, olo)),
            tuple(max(a, b) for a, b in zip(shi, ohi)),
        )

    def union_point(self, point: Sequence[float]) -> "Rect":
        """The MBR expanded (if necessary) to include ``point``."""
        if self.contains_point(point):
            return self
        return Rect(
            tuple(min(l, c) for l, c in zip(self.lo, point)),
            tuple(max(h, c) for h, c in zip(self.hi, point)),
        )

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed to cover ``other`` (Guttman's ChooseLeaf)."""
        slo = self.lo
        shi = self.hi
        olo = other.lo
        ohi = other.hi
        if len(slo) == 2 and len(olo) == 2:
            lo0 = slo[0] if slo[0] <= olo[0] else olo[0]
            lo1 = slo[1] if slo[1] <= olo[1] else olo[1]
            hi0 = shi[0] if shi[0] >= ohi[0] else ohi[0]
            hi1 = shi[1] if shi[1] >= ohi[1] else ohi[1]
            return (hi0 - lo0) * (hi1 - lo1) - self.area
        return self.union(other).area - self.area

    def enlargement_point(self, point: Sequence[float]) -> float:
        return self.union_point(point).area - self.area

    def inflated(self, alpha: float) -> "Rect":
        """Each side scaled by ``1 + alpha`` about the center.

        This is the alpha-tree's "loose MBR" expansion (Section 2.2): when an
        MBR must grow, grow it by a fraction ``alpha`` beyond the minimum so
        boundary objects get leeway to move without leaving it.
        """
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        half = alpha / 2.0
        return Rect(
            tuple(l - (h - l) * half for l, h in zip(self.lo, self.hi)),
            tuple(h + (h - l) * half for l, h in zip(self.lo, self.hi)),
        )

    def min_distance(self, point: Sequence[float]) -> float:
        """Euclidean distance from ``point`` to the nearest point of the
        rectangle (0 when inside).  The lower bound used by best-first
        nearest-neighbour search."""
        total = 0.0
        for low, coord, high in zip(self.lo, point, self.hi):
            if coord < low:
                delta = low - coord
            elif coord > high:
                delta = coord - high
            else:
                continue
            total += delta * delta
        return math.sqrt(total)

    def translated(self, offset: Sequence[float]) -> "Rect":
        return Rect(
            tuple(l + d for l, d in zip(self.lo, offset)),
            tuple(h + d for h, d in zip(self.hi, offset)),
        )

    # -- dunder ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rect):
            return NotImplemented
        return self.lo == other.lo and self.hi == other.hi

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __repr__(self) -> str:
        return f"Rect({list(self.lo)}, {list(self.hi)})"


# -- flat-tuple kernels --------------------------------------------------
#
# The R-tree descent loops (choose-subtree, range search, find-leaf) touch
# every entry of every visited node; going through ``Rect`` methods costs an
# attribute lookup plus a bound-method call per test.  These module-level
# kernels take the ``lo``/``hi`` tuples directly so the descent loops pay one
# global lookup per *node* (hoisted into a local) instead of per entry.  Each
# performs exactly the floating-point operations of the corresponding method,
# so switching a call site never changes results.


def rect_intersects(alo: Point, ahi: Point, blo: Point, bhi: Point) -> bool:
    """``Rect(alo, ahi).intersects(Rect(blo, bhi))`` without the objects."""
    if len(alo) == 2:
        return (
            alo[0] <= bhi[0]
            and blo[0] <= ahi[0]
            and alo[1] <= bhi[1]
            and blo[1] <= ahi[1]
        )
    return all(
        al <= bh and bl <= ah for al, bh, bl, ah in zip(alo, bhi, blo, ahi)
    )


def rect_contains_point(lo: Point, hi: Point, point: Sequence[float]) -> bool:
    """``Rect(lo, hi).contains_point(point)`` without the object."""
    if len(lo) == 2 and len(point) == 2:
        return lo[0] <= point[0] <= hi[0] and lo[1] <= point[1] <= hi[1]
    return all(l <= c <= h for l, c, h in zip(lo, point, hi))


def rect_area(lo: Point, hi: Point) -> float:
    """Hyper-volume of the rectangle ``[lo, hi]``."""
    if len(lo) == 2:
        return (hi[0] - lo[0]) * (hi[1] - lo[1])
    result = 1.0
    for low, high in zip(lo, hi):
        result *= high - low
    return result


def rect_enlargement(
    alo: Point, ahi: Point, blo: Point, bhi: Point, a_area: float
) -> float:
    """Area growth of ``[alo, ahi]`` (own area ``a_area``) to cover
    ``[blo, bhi]`` -- the choose-subtree kernel."""
    if len(alo) == 2:
        lo0 = alo[0] if alo[0] <= blo[0] else blo[0]
        lo1 = alo[1] if alo[1] <= blo[1] else blo[1]
        hi0 = ahi[0] if ahi[0] >= bhi[0] else bhi[0]
        hi1 = ahi[1] if ahi[1] >= bhi[1] else bhi[1]
        return (hi0 - lo0) * (hi1 - lo1) - a_area
    lo = tuple(min(a, b) for a, b in zip(alo, blo))
    hi = tuple(max(a, b) for a, b in zip(ahi, bhi))
    return rect_area(lo, hi) - a_area


# -- whole-node buffer kernels -------------------------------------------
#
# PR 7 packs node entries into a struct-of-arrays layout: one ``array('d')``
# column per dimension per bound (``los[d]``, ``his[d]``) plus a parallel
# ``array('q')`` child/object-id column.  The kernels below scan a *whole
# node* per call instead of dispatching per entry.  Two engines back each
# kernel:
#
# * a pure-Python column loop (``zip`` over the 2-D columns runs at C speed
#   for iteration; only the comparisons are interpreted), always available;
# * a numpy path over zero-copy ``frombuffer`` views, used when the node is
#   large enough (``NP_SCAN_MIN``) that vectorization beats the ~µs fixed
#   cost of array setup.  At R-tree fanout (<= 20 entries) the Python loop
#   wins; the numpy path pays off on bulk scans (>= ~64 entries).
#
# Bit-identical contract: every kernel performs the same IEEE-754
# comparisons/arithmetic as the per-entry ``Rect`` methods, in an order that
# yields identical results — including NaN semantics.  The numpy
# choose-subtree path falls back to the scalar loop whenever a NaN reaches
# the tie-breaking reduction, which is also what licenses its use of
# ``np.minimum``/``np.maximum`` for the union bounds: they propagate NaN
# where the scalar ``a if a <= b else b`` select would not, but every input
# NaN that makes them differ also poisons ``enl`` and routes the scan to
# the scalar loop before the divergence is observable.

#: Minimum column length before the numpy scan engine engages.  Below this
#: the pure-Python loop is faster (measured on the dev container: numpy
#: overtakes between 32 and 64 entries for intersect-all scans).
NP_SCAN_MIN = 64

#: Float columns: one ``array('d')`` (or any buffer of doubles) per dimension.
Columns = Sequence[Sequence[float]]


def _np_mask_2d(los: Columns, his: Columns, qlo: Point, qhi: Point):
    """Boolean intersect mask over 2-D columns via zero-copy numpy views."""
    l0 = _np.frombuffer(los[0])  # type: ignore[union-attr]
    l1 = _np.frombuffer(los[1])  # type: ignore[union-attr]
    h0 = _np.frombuffer(his[0])  # type: ignore[union-attr]
    h1 = _np.frombuffer(his[1])  # type: ignore[union-attr]
    mask = l0 <= qhi[0]
    mask &= qlo[0] <= h0
    mask &= l1 <= qhi[1]
    mask &= qlo[1] <= h1
    return mask


def node_intersecting_indices(
    los: Columns, his: Columns, qlo: Point, qhi: Point
) -> List[int]:
    """Indices of entries whose rect intersects ``[qlo, qhi]``.

    Per entry this evaluates exactly :func:`rect_intersects` (node rect
    first, query second), so index sets match a per-entry method loop —
    NaN coordinates fail the comparisons in both paths alike.
    """
    if len(los) == 2:
        n = len(los[0])
        if _np is not None and n >= NP_SCAN_MIN:
            return _np.flatnonzero(_np_mask_2d(los, his, qlo, qhi)).tolist()
        ql0, ql1 = qlo[0], qlo[1]
        qh0, qh1 = qhi[0], qhi[1]
        return [
            i
            for i, (l0, l1, h0, h1) in enumerate(
                zip(los[0], los[1], his[0], his[1])
            )
            if l0 <= qh0 and ql0 <= h0 and l1 <= qh1 and ql1 <= h1
        ]
    dims = range(len(los))
    return [
        i
        for i in range(len(los[0]) if los else 0)
        if all(los[d][i] <= qhi[d] and qlo[d] <= his[d][i] for d in dims)
    ]


def node_intersecting_children(
    children: Sequence[int], los: Columns, his: Columns, qlo: Point, qhi: Point
) -> List[int]:
    """Child ids of entries intersecting ``[qlo, qhi]``, in entry order.

    The branch-descent kernel: equivalent to pushing ``entry.child`` for
    every entry passing :func:`rect_intersects`.
    """
    if len(los) == 2:
        n = len(los[0])
        if _np is not None and n >= NP_SCAN_MIN:
            return [
                children[i]
                for i in _np.flatnonzero(
                    _np_mask_2d(los, his, qlo, qhi)
                ).tolist()
            ]
        ql0, ql1 = qlo[0], qlo[1]
        qh0, qh1 = qhi[0], qhi[1]
        return [
            c
            for c, l0, l1, h0, h1 in zip(
                children, los[0], los[1], his[0], his[1]
            )
            if l0 <= qh0 and ql0 <= h0 and l1 <= qh1 and ql1 <= h1
        ]
    return [
        children[i] for i in node_intersecting_indices(los, his, qlo, qhi)
    ]


def node_containing_point_indices(
    los: Columns, his: Columns, point: Sequence[float]
) -> List[int]:
    """Indices of entries whose rect contains ``point`` (closed bounds).

    Per entry this is exactly :func:`rect_contains_point`.
    """
    if len(los) == 2 and len(point) == 2:
        p0, p1 = point[0], point[1]
        n = len(los[0])
        if _np is not None and n >= NP_SCAN_MIN:
            l0 = _np.frombuffer(los[0])
            l1 = _np.frombuffer(los[1])
            h0 = _np.frombuffer(his[0])
            h1 = _np.frombuffer(his[1])
            mask = l0 <= p0
            mask &= p0 <= h0
            mask &= l1 <= p1
            mask &= p1 <= h1
            return _np.flatnonzero(mask).tolist()
        return [
            i
            for i, (l0, l1, h0, h1) in enumerate(
                zip(los[0], los[1], his[0], his[1])
            )
            if l0 <= p0 <= h0 and l1 <= p1 <= h1
        ]
    dims = range(len(los))
    return [
        i
        for i in range(len(los[0]) if los else 0)
        if all(los[d][i] <= point[d] <= his[d][i] for d in dims)
    ]


def node_points_in(
    children: Sequence[int], los: Columns, qlo: Point, qhi: Point
) -> List[Tuple[int, Point]]:
    """Leaf range-scan: ``(child, point)`` for every point entry inside
    ``[qlo, qhi]``, in entry order.

    Leaf entries are degenerate rects, so only the ``lo`` columns are
    consulted — matching the object path, which tests ``entry.rect.lo``
    against the query via :func:`rect_contains_point`.
    """
    if len(los) == 2:
        ql0, ql1 = qlo[0], qlo[1]
        qh0, qh1 = qhi[0], qhi[1]
        n = len(los[0])
        if _np is not None and n >= NP_SCAN_MIN:
            x = _np.frombuffer(los[0])
            y = _np.frombuffer(los[1])
            mask = ql0 <= x
            mask &= x <= qh0
            mask &= ql1 <= y
            mask &= y <= qh1
            xs, ys = los[0], los[1]
            return [
                (children[i], (xs[i], ys[i]))
                for i in _np.flatnonzero(mask).tolist()
            ]
        return [
            (c, (x, y))
            for c, x, y in zip(children, los[0], los[1])
            if ql0 <= x <= qh0 and ql1 <= y <= qh1
        ]
    dims = range(len(los))
    out: List[Tuple[int, Point]] = []
    for i in range(len(los[0]) if los else 0):
        point = tuple(los[d][i] for d in dims)
        if all(qlo[d] <= point[d] <= qhi[d] for d in dims):
            out.append((children[i], point))
    return out


def node_choose_subtree(
    los: Columns, his: Columns, rlo: Point, rhi: Point
) -> int:
    """Index of the entry needing least enlargement to cover ``[rlo, rhi]``,
    ties broken by smaller area then lower index (Guttman's ChooseLeaf).

    Performs per entry exactly the operations of the object path:
    ``rect_area`` for the entry's own area, :func:`rect_enlargement` for the
    growth, and the ``enl < best or (enl == best and area < best_area)``
    comparison chain.  Returns ``-1`` when no entry wins (empty node, or
    NaN poisoning every comparison) — callers treat that as the historical
    ``best is None`` error case.
    """
    if len(los) != 2:
        return _choose_subtree_nd(los, his, rlo, rhi)
    n = len(los[0])
    if _np is not None and n >= NP_SCAN_MIN:
        l0 = _np.frombuffer(los[0])
        l1 = _np.frombuffer(los[1])
        h0 = _np.frombuffer(his[0])
        h1 = _np.frombuffer(his[1])
        # errstate: python-float arithmetic on the scalar path overflows
        # and NaNs silently; the vectorized twin must not warn where the
        # reference stays quiet.
        with _np.errstate(all="ignore"):
            area = (h0 - l0) * (h1 - l1)
            # minimum/maximum propagate NaN where the scalar conditional
            # select would pick the non-NaN operand — but any NaN that
            # makes them differ also reaches ``enl`` (a NaN coordinate
            # poisons ``area``; a NaN query bound poisons every union
            # extent), so ``best_enl`` goes NaN and the scalar loop takes
            # over before the divergence can be observed.  One ufunc per
            # bound instead of compare+where halves the per-scan call
            # count on these overhead-dominated small arrays.
            u0 = _np.minimum(l0, rlo[0])
            u1 = _np.minimum(l1, rlo[1])
            v0 = _np.maximum(h0, rhi[0])
            v1 = _np.maximum(h1, rhi[1])
            enl = (v0 - u0) * (v1 - u1) - area
            # A NaN anywhere in enl propagates through min(); a NaN in
            # area always poisons enl (x - NaN), so one reduction covers
            # both.
            best_enl = enl.min()
        if best_enl == best_enl:
            cand = _np.flatnonzero(enl == best_enl)
            if len(cand) == 1:
                return int(cand[0])
            # First index achieving the minimal area among minimal
            # enlargement — argmin returns the first occurrence, matching
            # the scalar first-wins update rule.
            return int(cand[int(area[cand].argmin())])
        # NaN reached the tie-break: fall through to the scalar loop, whose
        # comparison-by-comparison behaviour is the contract.
    rl0, rl1 = rlo[0], rlo[1]
    rh0, rh1 = rhi[0], rhi[1]
    best = -1
    best_enl = math.inf
    best_area = math.inf
    for i, (l0, l1, h0, h1) in enumerate(zip(los[0], los[1], his[0], his[1])):
        area = (h0 - l0) * (h1 - l1)
        u0 = l0 if l0 <= rl0 else rl0
        u1 = l1 if l1 <= rl1 else rl1
        v0 = h0 if h0 >= rh0 else rh0
        v1 = h1 if h1 >= rh1 else rh1
        enl = (v0 - u0) * (v1 - u1) - area
        if enl < best_enl or (enl == best_enl and area < best_area):
            best = i
            best_enl = enl
            best_area = area
    return best


def _choose_subtree_nd(
    los: Columns, his: Columns, rlo: Point, rhi: Point
) -> int:
    """Generic-dimension choose-subtree (mirrors the n-D object path)."""
    dims = range(len(los))
    best = -1
    best_enl = math.inf
    best_area = math.inf
    for i in range(len(los[0]) if los else 0):
        lo = tuple(los[d][i] for d in dims)
        hi = tuple(his[d][i] for d in dims)
        area = rect_area(lo, hi)
        enl = rect_enlargement(lo, hi, rlo, rhi, area)
        if enl < best_enl or (enl == best_enl and area < best_area):
            best = i
            best_enl = enl
            best_area = area
    return best


def node_union(los: Columns, his: Columns) -> Optional[Rect]:
    """Tight MBR of all entries, or ``None`` for an empty node.

    ``min``/``max`` over an ``array('d')`` run at C speed and use the same
    keep-first-replace-on-strict-compare rule as :meth:`Rect.union_all`
    (``min`` replaces when ``v < acc``; ``union_all`` replaces when
    ``rect.lo[i] < lo[i]``), so results — including NaN propagation — are
    identical to unioning the per-entry rects.
    """
    if not los or not len(los[0]):
        return None
    return Rect(tuple(min(c) for c in los), tuple(max(c) for c in his))


def square_at(center: Sequence[float], side: float) -> Rect:
    """The axis-aligned square (hyper-cube) of side ``side`` centered at ``center``.

    Range queries in the paper "have the shape of a square, with central point
    chosen randomly within the city area" (Section 4.1).
    """
    if side < 0:
        raise ValueError(f"side must be non-negative, got {side}")
    half = side / 2.0
    return Rect(tuple(c - half for c in center), tuple(c + half for c in center))
