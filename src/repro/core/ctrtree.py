"""The Change Tolerant R-tree (paper Section 3).

Structure (Phase 4, Section 3.1.4):

* a **structural R-tree** whose leaf level holds the qs-regions mined from
  update history; qs-region rectangles are permanent -- never split when
  overfull, never dropped when underfull;
* an unbounded **page chain** under every qs-region holding the objects
  currently inside it (X-tree style overflow);
* an **overflow buffer** on every structural node for objects outside all
  qs-regions: a linked list of pages while short, converted to an
  alpha-R-tree once longer than ``T_list`` pages;
* the **secondary hash index** of Figure 1 mapping object id to the data
  page holding it, enabling constant-I/O in-region updates.

Dynamic operations follow Section 3.2 (`Insert`, `Delete`, `UpdateLoc`,
`Search`, `RangeSearch`); Appendix A's adaptation -- online discovery of new
qs-regions inside overflow alpha-R-trees and retirement of churning
qs-regions -- is delegated to :class:`repro.core.adaptive.AdaptationManager`.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.geometry import (
    Point,
    Rect,
    rect_enlargement,
    rect_intersects,
)
from repro.core.overflow import (
    OWNER_LIST,
    OWNER_QS,
    DataPage,
    NodeBuffer,
    QSEntry,
)
from repro.core.params import CTParams
from repro.core.qsregion import QSRegion
from repro.hashindex import HashIndex
from repro.rtree.node import Entry, RTreeNode
from repro.rtree.rtree import RTree
from repro.rtree.splits import SPLIT_POLICIES
from repro.storage.page import NO_PAGE, PageId
from repro.storage.pager import Pager


def infinite_rect(dim: int) -> Rect:
    """The all-covering rectangle; the root's buffer accepts any location."""
    return Rect((-math.inf,) * dim, (math.inf,) * dim)


class CTNode(RTreeNode):
    """A structural node: R-tree node machinery plus an overflow buffer.

    Leaf-level (``level == 0``) entries are :class:`QSEntry` qs-region slots;
    internal entries are ordinary (rect, child-pid) pairs.

    Entry storage stays a plain python list (``ENTRY_LAYOUT = "list"``):
    QSEntry records carry chains/fill ledgers that have no packed
    struct-of-arrays form, and the structural skeleton is tiny and cold
    next to the data pages and overflow buffer trees (which do pack).
    """

    __slots__ = ("buffer",)

    ENTRY_LAYOUT = "list"

    def __init__(self, level: int = 0) -> None:
        super().__init__(level)
        self.buffer = NodeBuffer()

    def find_qs(self, region_id: int) -> Optional[QSEntry]:
        for entry in self.entries:
            if isinstance(entry, QSEntry) and entry.region_id == region_id:
                return entry
        return None


class CTRTree:
    """The change-tolerant R-tree index over point objects.

    Args:
        pager: shared page store.
        domain: the indexed space (the city bounds); used for adaptation and
            validation, not for pruning.
        regions: the qs-regions (Phases 1-3 output) forming the permanent
            leaf level; rectangles are accepted too.
        ct_params: thresholds (``T_list``, ``alpha``, adaptation knobs).
        max_entries: structural fan-out and data-page capacity (``N_entry``).
        hash_index: shared secondary index; created on demand.
        adaptive: enable Appendix A's online qs-region discovery/retirement.
    """

    def __init__(
        self,
        pager: Pager,
        domain: Rect,
        regions: Sequence[Union[QSRegion, Rect]] = (),
        *,
        ct_params: Optional[CTParams] = None,
        max_entries: int = 20,
        min_fill: float = 0.4,
        split: str = "quadratic",
        hash_index: Optional[HashIndex] = None,
        adaptive: bool = True,
    ) -> None:
        if max_entries < 4:
            raise ValueError("max_entries must be at least 4")
        self._pager = pager
        self.domain = domain
        self.params = ct_params if ct_params is not None else CTParams()
        self.max_entries = max_entries
        self.min_entries = max(2, int(math.ceil(max_entries * min_fill)))
        self.page_capacity = max_entries
        if split not in SPLIT_POLICIES:
            raise ValueError(f"unknown split policy {split!r}")
        self._split_fn = SPLIT_POLICIES[split]
        self.hash = hash_index if hash_index is not None else HashIndex(pager)
        self.adaptive = adaptive

        #: Overflow alpha-R-trees, keyed by owning structural node pid.
        self._buffer_trees: Dict[PageId, RTree] = {}
        #: The owning node's MBR at buffer-conversion time: tree-buffer
        #: residents must stay inside it for queries to find them.
        self._buffer_bounds: Dict[PageId, Rect] = {}

        self._size = 0
        self._clock = 0.0
        self._next_region_id = 0
        self.lazy_hits = 0
        self.relocations = 0

        root = CTNode(level=0)
        pager.allocate(root)
        self._root_pid = root.pid

        # Appendix A machinery (imported late: adaptive.py imports this module).
        from repro.core.adaptive import AdaptationManager

        self.adaptation = AdaptationManager(self)

        for region in regions:
            rect = region.rect if isinstance(region, QSRegion) else region
            self.add_qs_region(rect)

    # -- basic properties --------------------------------------------------

    @property
    def pager(self) -> Pager:
        return self._pager

    @property
    def root_pid(self) -> PageId:
        return self._root_pid

    @property
    def height(self) -> int:
        return self._inspect(self._root_pid).level + 1

    def __len__(self) -> int:
        return self._size

    @property
    def region_count(self) -> int:
        return sum(1 for _ in self.iter_qs_entries())

    def _tick(self, now: Optional[float]) -> float:
        if now is None:
            self._clock += 1.0
        else:
            self._clock = max(self._clock, float(now))
        return self._clock

    # -- node access ---------------------------------------------------------

    def _read(self, pid: PageId) -> CTNode:
        node = self._pager.read(pid)
        assert isinstance(node, CTNode)
        return node

    def _inspect(self, pid: PageId) -> CTNode:
        node = self._pager.inspect(pid)
        assert isinstance(node, CTNode)
        return node

    # -- structural construction ----------------------------------------------

    def add_qs_region(
        self, rect: Rect, created_at: Optional[float] = None
    ) -> Tuple[QSEntry, PageId]:
        """Register a permanent qs-region (repeated-insertion construction).

        Returns the new entry and the pid of the structural leaf holding it.
        """
        if created_at is None:
            created_at = self._clock
        qs = QSEntry(rect, self._next_region_id, created_at=created_at)
        self._next_region_id += 1
        node_pid = self._structural_insert_qs(qs)
        return qs, node_pid

    def _structural_insert_qs(self, qs: QSEntry) -> PageId:
        path = self._choose_path(qs.rect)
        leaf = path[-1]
        leaf.entries.append(qs)
        self._reown_chain(qs, leaf.pid)
        if len(leaf.entries) > self.max_entries:
            return self._split_and_place(path, qs)
        self._pager.write(leaf)
        self._grow_mbrs(path, qs.rect)
        return leaf.pid

    def _choose_path(self, rect: Rect) -> List[CTNode]:
        node = self._read(self._root_pid)
        path = [node]
        rlo = rect.lo
        rhi = rect.hi
        enlargement_of = rect_enlargement
        while not node.is_leaf:
            best: Optional[Entry] = None
            best_enl = float("inf")
            best_area = float("inf")
            for entry in node.entries:
                entry_rect = entry.rect
                area = entry_rect.area
                enl = enlargement_of(entry_rect.lo, entry_rect.hi, rlo, rhi, area)
                if enl < best_enl or (enl == best_enl and area < best_area):
                    best_enl = enl
                    best_area = area
                    best = entry
            assert best is not None, "internal structural node without entries"
            node = self._read(best.child)
            path.append(node)
        return path

    def _grow_mbrs(self, path: List[CTNode], rect: Rect) -> None:
        node = path[-1]
        if node.mbr is None:
            node.mbr = rect
        elif node.mbr.contains_rect(rect):
            return
        else:
            node.mbr = node.mbr.union(rect)
        for parent in reversed(path[:-1]):
            idx = parent.find_entry(node.pid)
            assert idx is not None
            parent.entries[idx].rect = node.mbr
            self._pager.write(parent)
            if parent.mbr is not None and parent.mbr.contains_rect(node.mbr):
                break
            parent.mbr = node.mbr if parent.mbr is None else parent.mbr.union(node.mbr)
            node = parent

    def _split_and_place(self, path: List[CTNode], placed: object) -> PageId:
        """Split the overfull tail of ``path``; qs-region rectangles are never
        split -- only structural *nodes* are, redistributing whole entries."""
        displaced: List[Tuple[int, Point]] = []
        placed_pid = NO_PAGE
        placed_rect = placed.rect  # type: ignore[attr-defined]

        while path:
            node = path.pop()
            group_keep, group_move = self._split_fn(node.entries, self.min_entries)
            displaced.extend(self._drain_buffer(node))
            node.entries = list(group_keep)
            node.mbr = node.tight_mbr()
            sibling = CTNode(level=node.level)
            sibling.entries = list(group_move)
            sibling.mbr = sibling.tight_mbr()
            self._pager.allocate(sibling)
            self._pager.write(node)

            if node.is_leaf:
                for qs in sibling.entries:
                    assert isinstance(qs, QSEntry)
                    self._reown_chain(qs, sibling.pid)
            else:
                for entry in sibling.entries:
                    self._inspect(entry.child).parent = sibling.pid

            if placed_pid == NO_PAGE:
                if any(e is placed for e in sibling.entries):
                    placed_pid = sibling.pid
                elif any(e is placed for e in node.entries):
                    placed_pid = node.pid

            if path:
                parent = path[-1]
                idx = parent.find_entry(node.pid)
                assert idx is not None
                parent.entries[idx].rect = node.mbr
                parent.entries.append(Entry(sibling.mbr, sibling.pid))
                sibling.parent = parent.pid
                if len(parent.entries) <= self.max_entries:
                    self._pager.write(parent)
                    break
            else:
                new_root = CTNode(level=node.level + 1)
                new_root.entries = [
                    Entry(node.mbr, node.pid),
                    Entry(sibling.mbr, sibling.pid),
                ]
                new_root.mbr = node.mbr.union(sibling.mbr)
                self._pager.allocate(new_root)
                node.parent = new_root.pid
                sibling.parent = new_root.pid
                self._root_pid = new_root.pid
                path = []
                break

        if path:
            self._grow_mbrs(path, placed_rect)
        # Buffer residents of split nodes are re-homed once the tree is
        # consistent again (splits outside of adaptation never carry any).
        for obj_id, point in displaced:
            pid = self._place(obj_id, point, self._clock)
            self.hash.set(obj_id, pid)
        return placed_pid

    def _reown_chain(self, qs: QSEntry, node_pid: PageId) -> None:
        """Point a qs-region's data pages at their (new) owning node."""
        for pid in qs.chain:
            page = self._pager.inspect(pid)
            assert isinstance(page, DataPage)
            page.owner = (OWNER_QS, node_pid, qs.region_id)

    def _drain_buffer(self, node: CTNode) -> List[Tuple[int, Point]]:
        """Empty a node's overflow buffer, charging reads, freeing pages."""
        objects: List[Tuple[int, Point]] = []
        buf = node.buffer
        if buf.kind == NodeBuffer.KIND_LIST:
            for pid in buf.pages:
                page = self._pager.read(pid)
                assert isinstance(page, DataPage)
                objects.extend(page.records.items())
                self._pager.free(pid)
        else:
            tree = self._buffer_trees.pop(node.pid)
            self._buffer_bounds.pop(node.pid, None)
            stack = [tree.root_pid]
            while stack:
                tnode = self._pager.read(stack.pop())
                assert isinstance(tnode, RTreeNode)
                if tnode.is_leaf:
                    objects.extend((e.child, e.point) for e in tnode.entries)
                    self.adaptation.forget_leaf(tnode.pid)
                else:
                    stack.extend(e.child for e in tnode.entries)
                self._pager.free(tnode.pid)
        node.buffer = NodeBuffer()
        self._size -= len(objects)
        return objects

    # -- insertion (Section 3.2, Insert(o)) ------------------------------------

    def insert(self, obj_id: int, point: Sequence[float], now: Optional[float] = None) -> PageId:
        """Insert object ``obj_id`` at ``point``; returns its data page id."""
        now = self._tick(now)
        pid = self._place(obj_id, tuple(point), now)
        self.hash.set(obj_id, pid)
        return pid

    def _place(self, obj_id: int, point: Point, now: float) -> PageId:
        """Core placement: min-area containing qs-region, else the lowest
        containing node's overflow buffer."""
        candidates, fallback = self._locate(point)
        self._size += 1
        if candidates:
            node, qs = min(candidates, key=lambda pair: pair[1].rect.area)
            return self._qs_append(node, qs, obj_id, point)
        return self._buffer_insert(fallback, obj_id, point, now)

    def _locate(self, point: Point) -> Tuple[List[Tuple[CTNode, QSEntry]], CTNode]:
        """All containing leaf-level qs-regions, plus the lowest containing
        structural node (the root as last resort)."""
        root = self._read(self._root_pid)
        candidates: List[Tuple[CTNode, QSEntry]] = []
        fallback = root
        fallback_key = (float("inf"), float("inf"))
        stack = [root]
        while stack:
            node = stack.pop()
            if node.mbr is not None and node.mbr.contains_point(point):
                key = (node.level, node.mbr.area)
                if key < fallback_key:
                    fallback_key = key
                    fallback = node
            if node.is_leaf:
                for qs in node.entries:
                    assert isinstance(qs, QSEntry)
                    if qs.rect.contains_point(point):
                        candidates.append((node, qs))
            else:
                for entry in node.entries:
                    if entry.rect.contains_point(point):
                        stack.append(self._read(entry.child))
        return candidates, fallback

    def _qs_append(self, node: CTNode, qs: QSEntry, obj_id: int, point: Point) -> PageId:
        """Add a record to a qs-region's chain: "the object is inserted into
        the first non-full page of this MBR.  If all pages are full, a new
        page is allocated"."""
        index = qs.first_non_full(self.page_capacity)
        if index is not None:
            page = self._pager.read(qs.chain[index])
            assert isinstance(page, DataPage)
            page.add(obj_id, point)
            qs.fills[index] += 1
            self._pager.write(page)
            return page.pid
        page = DataPage(
            self.page_capacity, (OWNER_QS, node.pid, qs.region_id), qs.rect
        )
        page.add(obj_id, point)
        self._pager.allocate(page)
        qs.chain.append(page.pid)
        qs.fills.append(1)
        self._pager.write(node)  # the chain directory grew
        return page.pid

    def _buffer_tolerance(self, node: CTNode) -> Rect:
        """Lazy-update tolerance for a node-buffer resident: the node's MBR;
        the root tolerates anything (it must accept out-of-coverage points)."""
        if node.pid == self._root_pid or node.mbr is None:
            return infinite_rect(self.domain.dim)
        return node.mbr

    def _buffer_insert(self, node: CTNode, obj_id: int, point: Point, now: float) -> PageId:
        buf = node.buffer
        if buf.kind == NodeBuffer.KIND_LIST:
            index = buf.first_non_full(self.page_capacity)
            if index is not None:
                page = self._pager.read(buf.pages[index])
                assert isinstance(page, DataPage)
                page.add(obj_id, point)
                buf.fills[index] += 1
                self._pager.write(page)
                return page.pid
            # The list -> alpha-R-tree conversion is "the first measure to
            # handle movement pattern changes" (Appendix A); a non-adaptive
            # tree keeps plain linked lists no matter how long they grow.
            if len(buf.pages) < self.params.t_list or not self.adaptive:
                # List pages carry no tolerance rectangle: the linked list is
                # unordered staging with no MBR to be "within", so every
                # update of a list resident relocates (Section 3.2's lazy
                # path only exists where an MBR does -- qs-regions and the
                # overflow alpha-R-trees).  This is what makes buffer
                # residents churn out quickly and promotion worthwhile.
                page = DataPage(
                    self.page_capacity,
                    (OWNER_LIST, node.pid),
                    None,
                )
                page.add(obj_id, point)
                self._pager.allocate(page)
                buf.pages.append(page.pid)
                buf.fills.append(1)
                self._pager.write(node)
                return page.pid
            self._convert_buffer(node)
        tree = self._buffer_trees[node.pid]
        pid = tree.insert(obj_id, point)
        if self.adaptive:
            rehomed = self.adaptation.after_buffer_insert(node, tree, pid, now)
            if rehomed is not None:
                # The insertion tipped the leaf into promotion: the object now
                # lives in the new qs-region's chain, not at ``pid``.
                pid = rehomed[obj_id]
        return pid

    def _convert_buffer(self, node: CTNode) -> None:
        """Linked list -> alpha-R-tree conversion (Section 3.2): "If the number
        of pages of the linked list [reaches] T_list ... an alpha-R-tree is
        created, to which all data in the linked list are moved"."""
        buf = node.buffer
        tree = RTree(
            self._pager,
            max_entries=self.max_entries,
            split="quadratic",
            alpha=self.params.alpha,
            shrink_on_delete=False,
        )
        self._inspect_tag(tree.root_pid, node.pid)
        moved: List[Tuple[int, Point]] = []
        for pid in buf.pages:
            page = self._pager.read(pid)
            assert isinstance(page, DataPage)
            moved.extend(page.records.items())
            self._pager.free(pid)
        for obj_id, point in moved:
            tree.insert(obj_id, point)
        # Repoint the hash only once the tree is final, coalescing buckets;
        # from now on splits repoint eagerly via the callback.
        self.hash.set_many(
            (entry.child, leaf.pid)
            for leaf in tree.iter_leaves()
            for entry in leaf.entries
        )
        tree.on_entries_moved = self.hash.set_many
        buf.kind = NodeBuffer.KIND_TREE
        buf.pages = []
        buf.fills = []
        self._pager.write(node)
        self._buffer_trees[node.pid] = tree
        self._buffer_bounds[node.pid] = self._buffer_tolerance(node)

    def _inspect_tag(self, pid: PageId, tag: object) -> None:
        page = self._pager.inspect(pid)
        assert isinstance(page, RTreeNode)
        page.tag = tag

    # -- deletion (Section 3.2, Delete(o)) ---------------------------------------

    def delete(self, obj_id: int, now: Optional[float] = None) -> bool:
        """"Search the hash-index for o.  Delete o from the page and
        deallocate the page if it is empty.  Set the hash-index entry for o
        to null."""
        now = self._tick(now)
        pid = self.hash.get(obj_id)
        if pid is None:
            return False
        page = self._pager.read(pid)
        if isinstance(page, DataPage):
            if page.remove(obj_id) is None:
                return False
            self._after_page_removal(page, now)
        elif isinstance(page, RTreeNode):
            tree = self._buffer_trees.get(page.tag)  # type: ignore[arg-type]
            if tree is None:
                return False
            idx = page.find_entry(obj_id)
            if idx is None:
                return False
            tree.delete_from_node(page, idx)
        else:
            return False
        self._size -= 1
        self.hash.remove(obj_id)
        return True

    def _after_page_removal(self, page: DataPage, now: float) -> None:
        """Post-removal bookkeeping: write or deallocate the page, keep the
        advisory fill directory in step, and feed adaptation statistics."""
        owner = page.owner
        if owner[0] == OWNER_QS:
            _, node_pid, region_id = owner
            node = self._inspect(node_pid)
            qs = node.find_qs(region_id)
            if page.is_empty:
                charged_node = self._read(node_pid)
                assert charged_node is node
                if qs is not None:
                    index = qs.chain.index(page.pid)
                    qs.chain.pop(index)
                    qs.fills.pop(index)
                self._pager.free(page.pid)
                self._pager.write(node)
            else:
                if qs is not None:
                    index = qs.chain.index(page.pid)
                    qs.fills[index] -= 1
                self._pager.write(page)
            if qs is not None:
                qs.removals += 1
                if self.adaptive:
                    self.adaptation.after_region_removal(node, qs, now)
        else:
            _, node_pid = owner
            node = self._inspect(node_pid)
            buf = node.buffer
            if page.is_empty:
                charged_node = self._read(node_pid)
                assert charged_node is node
                if page.pid in buf.pages:
                    index = buf.pages.index(page.pid)
                    buf.pages.pop(index)
                    buf.fills.pop(index)
                self._pager.free(page.pid)
                self._pager.write(node)
            else:
                if page.pid in buf.pages:
                    buf.fills[buf.pages.index(page.pid)] -= 1
                self._pager.write(page)

    # -- update (Section 3.2, UpdateLoc(o)) ---------------------------------------

    def update(
        self,
        obj_id: int,
        old_point: Sequence[float],
        new_point: Sequence[float],
        now: Optional[float] = None,
    ) -> PageId:
        """"Consult the hash index for o. ... If (x2,y2) does not belong to
        the same MBR, perform Delete(o) and Insert(o)."

        The lazy path -- the new location tolerated by the page's rectangle --
        costs one hash-bucket read, one data-page read, one data-page write.
        ``old_point`` is unused (interface parity with the R-tree baselines).
        """
        del old_point
        now = self._tick(now)
        new_point = tuple(new_point)
        pid = self.hash.get(obj_id)
        if pid is None:
            raise KeyError(f"object {obj_id} is not indexed")
        page = self._pager.read(pid)

        if isinstance(page, DataPage):
            if obj_id not in page.records:
                raise KeyError(f"stale hash pointer for object {obj_id}")
            if page.tolerance is not None and page.tolerance.contains_point(new_point):
                page.records[obj_id] = new_point
                self._pager.write(page)
                self.lazy_hits += 1
                return pid
            self.relocations += 1
            page.remove(obj_id)
            self._after_page_removal(page, now)
            self._size -= 1
            new_pid = self._place(obj_id, new_point, now)
            self.hash.set(obj_id, new_pid)
            return new_pid

        assert isinstance(page, RTreeNode)
        tree = self._buffer_trees.get(page.tag)  # type: ignore[arg-type]
        if tree is None:
            raise KeyError(f"stale buffer-tree pointer for object {obj_id}")
        idx = page.find_entry(obj_id)
        if idx is None:
            raise KeyError(f"stale hash pointer for object {obj_id}")
        bound = self._buffer_bounds.get(page.tag, self.domain)  # type: ignore[arg-type]
        if (
            page.mbr is not None
            and page.mbr.contains_point(new_point)
            and bound.contains_point(new_point)
        ):
            page.entries[idx] = Entry.for_point(new_point, obj_id)
            self._pager.write(page)
            self.lazy_hits += 1
            return pid
        self.relocations += 1
        tree.delete_from_node(page, idx)
        self._size -= 1
        new_pid = self._place(obj_id, new_point, now)
        self.hash.set(obj_id, new_pid)
        return new_pid

    # -- queries (Section 3.2, Search / RangeSearch) -----------------------------

    def range_search(self, rect: Rect) -> List[Tuple[int, Point]]:
        """All objects inside the closed rectangle.

        Every visited structural node contributes its overflow buffer:
        "since objects can also be stored in the internal nodes, the search
        visits the set of buffer pages at each internal node"."""
        results: List[Tuple[int, Point]] = []
        qlo = rect.lo
        qhi = rect.hi
        intersects = rect_intersects
        stack = [self._root_pid]
        while stack:
            node = self._read(stack.pop())
            self._search_buffer(node, rect, results)
            if node.is_leaf:
                for qs in node.entries:
                    assert isinstance(qs, QSEntry)
                    if intersects(qs.rect.lo, qs.rect.hi, qlo, qhi):
                        for pid in qs.chain:
                            page = self._pager.read(pid)
                            assert isinstance(page, DataPage)
                            results.extend(page.matches(rect))
            else:
                for entry in node.entries:
                    entry_rect = entry.rect
                    if intersects(entry_rect.lo, entry_rect.hi, qlo, qhi):
                        stack.append(entry.child)
        return results

    def _search_buffer(
        self, node: CTNode, rect: Rect, results: List[Tuple[int, Point]]
    ) -> None:
        buf = node.buffer
        if buf.kind == NodeBuffer.KIND_LIST:
            # "If the overflow buffer is a linked list, the search checks all
            # the pages since the data in the linked list is unordered."
            for pid in buf.pages:
                page = self._pager.read(pid)
                assert isinstance(page, DataPage)
                results.extend(page.matches(rect))
        else:
            # "If it is an alpha-R-tree, an R-tree range search is performed."
            results.extend(self._buffer_trees[node.pid].range_search(rect))

    def search_point(self, point: Sequence[float]) -> List[int]:
        rect = Rect.from_point(tuple(point))
        return [obj_id for obj_id, _ in self.range_search(rect)]

    def nearest(self, point: Sequence[float], k: int = 1) -> List[Tuple[float, int, Point]]:
        """The ``k`` nearest objects to ``point`` as (distance, id, point).

        Best-first search adapted to the CT-R-tree's three storage places:
        structural subtrees and qs-region chains enter the priority queue
        with their rectangle's lower-bound distance; a visited node's
        overflow buffer is scanned immediately (list pages are unordered, so
        there is no better bound than reading them; buffer alpha-R-trees
        recurse through their own node bounds).
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        target = tuple(point)
        counter = 0
        # Heap items: (bound, tiebreak, kind, payload).
        heap: List[Tuple[float, int, str, object]] = []

        def push(bound: float, kind: str, payload: object) -> None:
            nonlocal counter
            heapq.heappush(heap, (bound, counter, kind, payload))
            counter += 1

        def push_data_page(pid: PageId) -> None:
            page = self._pager.read(pid)
            assert isinstance(page, DataPage)
            for obj_id, obj_point in page.records.items():
                push(math.dist(target, obj_point), "object", (obj_id, obj_point))

        def visit_node(pid: PageId) -> None:
            node = self._read(pid)
            buf = node.buffer
            if buf.kind == NodeBuffer.KIND_LIST:
                for page_pid in buf.pages:
                    push_data_page(page_pid)
            else:
                push(0.0, "buffer-tree-node", self._buffer_trees[node.pid].root_pid)
            if node.is_leaf:
                for qs in node.entries:
                    assert isinstance(qs, QSEntry)
                    if qs.chain:
                        push(qs.rect.min_distance(target), "qs", qs)
            else:
                for entry in node.entries:
                    push(entry.rect.min_distance(target), "node", entry.child)

        push(0.0, "node", self._root_pid)
        results: List[Tuple[float, int, Point]] = []
        while heap and len(results) < k:
            _bound, _tie, kind, payload = heapq.heappop(heap)
            if kind == "object":
                obj_id, obj_point = payload  # type: ignore[misc]
                results.append((math.dist(target, obj_point), obj_id, obj_point))
            elif kind == "node":
                visit_node(payload)  # type: ignore[arg-type]
            elif kind == "qs":
                qs = payload
                assert isinstance(qs, QSEntry)
                for pid in qs.chain:
                    push_data_page(pid)
            else:  # buffer-tree-node
                tree_node = self._pager.read(payload)  # type: ignore[arg-type]
                assert isinstance(tree_node, RTreeNode)
                if tree_node.is_leaf:
                    for entry in tree_node.entries:
                        push(
                            math.dist(target, entry.point),
                            "object",
                            (entry.child, entry.point),
                        )
                else:
                    for entry in tree_node.entries:
                        push(
                            entry.rect.min_distance(target),
                            "buffer-tree-node",
                            entry.child,
                        )
        return results

    # -- uncharged introspection -------------------------------------------------

    def iter_nodes(self) -> Iterator[CTNode]:
        stack = [self._root_pid]
        while stack:
            node = self._inspect(stack.pop())
            yield node
            if not node.is_leaf:
                stack.extend(e.child for e in node.entries)

    def iter_qs_entries(self) -> Iterator[Tuple[CTNode, QSEntry]]:
        for node in self.iter_nodes():
            if node.is_leaf:
                for qs in node.entries:
                    assert isinstance(qs, QSEntry)
                    yield node, qs

    def iter_objects(self) -> Iterator[Tuple[int, Point]]:
        for node in self.iter_nodes():
            buf = node.buffer
            if buf.kind == NodeBuffer.KIND_LIST:
                for pid in buf.pages:
                    page = self._pager.inspect(pid)
                    assert isinstance(page, DataPage)
                    yield from page.records.items()
            else:
                yield from self._buffer_trees[node.pid].iter_objects()
            if node.is_leaf:
                for qs in node.entries:
                    assert isinstance(qs, QSEntry)
                    for pid in qs.chain:
                        page = self._pager.inspect(pid)
                        assert isinstance(page, DataPage)
                        yield from page.records.items()

    def buffered_object_count(self) -> int:
        """Objects living in node buffers (outside all qs-regions)."""
        count = 0
        for node in self.iter_nodes():
            buf = node.buffer
            if buf.kind == NodeBuffer.KIND_LIST:
                count += buf.object_count()
            else:
                count += len(self._buffer_trees[node.pid])
        return count

    def validate(self) -> List[str]:
        """Cross-structure invariant check for tests; returns violations."""
        problems: List[str] = []
        seen: Dict[int, PageId] = {}
        root = self._inspect(self._root_pid)
        if root.parent != NO_PAGE:
            problems.append("structural root has a parent pointer")

        stack: List[Tuple[PageId, Optional[Rect]]] = [(self._root_pid, None)]
        while stack:
            pid, covering = stack.pop()
            node = self._inspect(pid)
            if len(node.entries) > self.max_entries:
                problems.append(f"node {pid}: overfull ({len(node.entries)})")
            for entry in node.entries:
                if covering is not None and not covering.contains_rect(entry.rect):
                    problems.append(f"node {pid}: entry escapes parent rect")
                if node.is_leaf:
                    if not isinstance(entry, QSEntry):
                        problems.append(f"node {pid}: leaf entry is not a QSEntry")
                        continue
                    problems.extend(self._validate_qs(node, entry, seen))
                else:
                    child = self._inspect(entry.child)
                    if child.parent != pid:
                        problems.append(f"node {entry.child}: bad parent pointer")
                    stack.append((entry.child, entry.rect))
            problems.extend(self._validate_buffer(node, seen))

        for obj_id, pid in seen.items():
            pointed = self.hash.peek(obj_id)
            if pointed != pid:
                problems.append(
                    f"hash points object {obj_id} at {pointed}, lives in {pid}"
                )
        if len(seen) != self._size:
            problems.append(f"size {self._size} != stored objects {len(seen)}")
        return problems

    def _validate_qs(
        self, node: CTNode, qs: QSEntry, seen: Dict[int, PageId]
    ) -> List[str]:
        problems = []
        if len(qs.chain) != len(qs.fills):
            problems.append(f"region {qs.region_id}: chain/fills length mismatch")
        for pid, fill in zip(qs.chain, qs.fills):
            page = self._pager.inspect(pid)
            if not isinstance(page, DataPage):
                problems.append(f"region {qs.region_id}: chain pid {pid} not a data page")
                continue
            if len(page.records) != fill:
                problems.append(f"region {qs.region_id}: stale fill for page {pid}")
            if page.owner != (OWNER_QS, node.pid, qs.region_id):
                problems.append(f"region {qs.region_id}: page {pid} has wrong owner")
            for obj_id, point in page.records.items():
                if not qs.rect.contains_point(point):
                    problems.append(
                        f"region {qs.region_id}: object {obj_id} outside the region"
                    )
                if obj_id in seen:
                    problems.append(f"object {obj_id} stored twice")
                seen[obj_id] = pid
        return problems

    def _validate_buffer(self, node: CTNode, seen: Dict[int, PageId]) -> List[str]:
        problems = []
        buf = node.buffer
        if buf.kind == NodeBuffer.KIND_LIST:
            for pid, fill in zip(buf.pages, buf.fills):
                page = self._pager.inspect(pid)
                if not isinstance(page, DataPage):
                    problems.append(f"node {node.pid}: buffer pid {pid} not a data page")
                    continue
                if len(page.records) != fill:
                    problems.append(f"node {node.pid}: stale buffer fill for {pid}")
                for obj_id, point in page.records.items():
                    if page.tolerance is not None and not page.tolerance.contains_point(
                        point
                    ):
                        problems.append(
                            f"node {node.pid}: buffered object {obj_id} outside tolerance"
                        )
                    if obj_id in seen:
                        problems.append(f"object {obj_id} stored twice")
                    seen[obj_id] = pid
        else:
            tree = self._buffer_trees.get(node.pid)
            if tree is None:
                problems.append(f"node {node.pid}: tree buffer without a tree")
                return problems
            problems.extend(f"buffer tree of {node.pid}: {p}" for p in tree.validate())
            bound = self._buffer_bounds.get(node.pid)
            for leaf in tree.iter_leaves():
                if leaf.tag != node.pid:
                    problems.append(f"buffer tree of {node.pid}: leaf {leaf.pid} untagged")
                for entry in leaf.entries:
                    if bound is not None and not bound.contains_point(entry.point):
                        problems.append(
                            f"buffer tree of {node.pid}: object {entry.child} out of bound"
                        )
                    if entry.child in seen:
                        problems.append(f"object {entry.child} stored twice")
                    seen[entry.child] = leaf.pid
        return problems

    def __repr__(self) -> str:
        return (
            f"CTRTree(size={self._size}, regions={self.region_count}, "
            f"height={self.height}, lazy_hits={self.lazy_hits}, "
            f"relocations={self.relocations})"
        )
