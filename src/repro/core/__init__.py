"""Core library: geometry, parameters, and the change-tolerant index.

The CT-R-tree pipeline (paper Section 3) lives here:

* :mod:`repro.core.qsregion` -- Phase 1, mining quasi-static regions from
  object trail histories (Figure 3);
* :mod:`repro.core.update_graph` -- Phase 2, per-object chain graphs and
  resident-density merging, unified into the update graph (Figure 4);
* :mod:`repro.core.graph_merge` -- Phase 3, traffic-driven merging
  (Equation 6);
* :mod:`repro.core.ctrtree` -- Phase 4, the structural R-tree over
  qs-regions plus the dynamic operations of Section 3.2;
* :mod:`repro.core.adaptive` -- Appendix A, online adaptation to changing
  traffic patterns;
* :mod:`repro.core.builder` -- the end-to-end history -> CT-R-tree pipeline.
"""

from repro.core.geometry import Point, Rect, square_at
from repro.core.params import CTParams, SimulationParams, format_table1
from repro.core.qsregion import QSRegion, TrailSample, identify_qs_regions, trail_duration
from repro.core.update_graph import UpdateGraph, build_update_graph, merge_by_density
from repro.core.graph_merge import merge_by_traffic
from repro.core.overflow import DataPage, NodeBuffer, QSEntry
from repro.core.ctrtree import CTNode, CTRTree
from repro.core.adaptive import AdaptationManager
from repro.core.builder import BuildReport, CTRTreeBuilder
from repro.core.rebuild import RebuildPolicy, rebuild_ctrtree

__all__ = [
    "Point",
    "Rect",
    "square_at",
    "CTParams",
    "SimulationParams",
    "format_table1",
    "QSRegion",
    "TrailSample",
    "identify_qs_regions",
    "trail_duration",
    "UpdateGraph",
    "build_update_graph",
    "merge_by_density",
    "merge_by_traffic",
    "DataPage",
    "NodeBuffer",
    "QSEntry",
    "CTNode",
    "CTRTree",
    "AdaptationManager",
    "BuildReport",
    "CTRTreeBuilder",
    "RebuildPolicy",
    "rebuild_ctrtree",
]
