"""Appendix A.3: rebuilding a CT-R-tree when the structure drifts too far.

"We still need to rebuild the CT-R-tree if its structure changes too much.
For example, we may start the rebuilding process if the number of qs-regions
being deleted or inserted is too high.  New history records that are not
used for constructing the tree can be used.  The rebuilding process should
be run in background, with no interference to the current index.  Once the
rebuilding is completed, the new index is used immediately."

:class:`RebuildPolicy` decides *when* (region churn relative to the original
region count); :func:`rebuild_ctrtree` performs the rebuild on a **fresh
pager** -- the live index keeps serving, its pages untouched -- and loads the
current objects of the old tree into the new one, so swapping is a pointer
flip for the caller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Tuple

from repro.core.builder import BuildReport, CTRTreeBuilder
from repro.core.ctrtree import CTRTree
from repro.core.params import CTParams
from repro.core.qsregion import TrailSample
from repro.storage.iostats import IOCategory
from repro.storage.pager import Pager


@dataclass
class RebuildPolicy:
    """Decide when accumulated qs-region churn justifies a rebuild.

    Args:
        churn_threshold: rebuild once (promotions + retirements) exceeds this
            fraction of the region count the index was built with.
        min_initial_regions: below this, churn ratios are noise; always allow
            a rebuild request but never *demand* one.
    """

    churn_threshold: float = 0.2
    min_initial_regions: int = 4

    def __post_init__(self) -> None:
        if self.churn_threshold <= 0:
            raise ValueError("churn_threshold must be positive")

    def churn_ratio(self, tree: CTRTree, initial_regions: int) -> float:
        if initial_regions < self.min_initial_regions:
            return 0.0
        churn = tree.adaptation.promotions + tree.adaptation.retirements
        return churn / initial_regions

    def should_rebuild(self, tree: CTRTree, initial_regions: int) -> bool:
        return self.churn_ratio(tree, initial_regions) > self.churn_threshold


def rebuild_ctrtree(
    old_tree: CTRTree,
    histories: Mapping[int, Sequence[TrailSample]],
    *,
    query_rate: float,
    ct_params: Optional[CTParams] = None,
    pager: Optional[Pager] = None,
    adaptive: Optional[bool] = None,
) -> Tuple[CTRTree, BuildReport]:
    """Build a replacement CT-R-tree from fresh history records.

    The new index lives on ``pager`` (a fresh one by default), is mined from
    ``histories`` (records "not used for constructing the [old] tree"), and
    is loaded with the old tree's *current* objects, read uncharged from the
    live index -- the paper's background process would read them from the
    same buffer-cached pages the index is serving from.

    Returns the new tree; the caller switches over by replacing its
    reference ("once the rebuilding is completed, the new index is used
    immediately").
    """
    if pager is None:
        pager = Pager()
    if ct_params is None:
        ct_params = old_tree.params
    if adaptive is None:
        adaptive = old_tree.adaptive

    builder = CTRTreeBuilder(
        ct_params,
        query_rate=query_rate,
        max_entries=old_tree.max_entries,
        adaptive=adaptive,
    )
    new_tree, report = builder.build(pager, old_tree.domain, histories)
    with pager.stats.category(IOCategory.BUILD):
        for obj_id, point in old_tree.iter_objects():
            new_tree.insert(obj_id, point, now=old_tree._clock)
    return new_tree, report
