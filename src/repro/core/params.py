"""Parameters of the simulation model and of the CT-R-tree (paper Table 1).

Two dataclasses mirror the two halves of Table 1:

* :class:`SimulationParams` -- the workload knobs (City Simulator population,
  reporting rate, history/online split, query rate and size, page geometry);
* :class:`CTParams` -- the CT-R-tree construction thresholds (Phase 1
  thresholds ``T_dist``/``T_rate``/``T_time``/``T_area``, Equation 6 scaling
  factors ``C_q``/``C_u``) plus the Appendix-A adaptation thresholds, whose
  concrete values the paper leaves open (documented defaults below).

Defaults are the paper's baseline values.  The experiment harness scales the
population down for laptop-sized runs (see ``repro.experiments.scales``);
everything else is used verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict


@dataclass
class SimulationParams:
    """Simulation-model parameters (upper half of Table 1)."""

    #: Location update rate over the whole population, per second (lambda_u).
    update_rate: float = 5000.0
    #: Warm-up start threshold (T_start): fraction of the population that
    #: must be at ground level before recording may begin.
    t_start: float = 0.15
    #: Fill threshold (T_fill): lower bound on the ground-level fraction.
    t_fill: float = 0.09
    #: Empty threshold (T_empty): upper bound on the ground-level fraction.
    t_empty: float = 0.5
    #: Number of moving objects (N_obj).
    n_objects: int = 100_000
    #: Maximum samples skipped (per object) before recording starts (N_rmax).
    n_warmup_max: int = 2000
    #: Historic samples per object used to build the CT-R-tree (N_hist).
    n_history: int = 110
    #: Online updates per object replayed against the built indexes (N_update).
    n_updates: int = 20
    #: Query arrival rate, per second (lambda_q).
    query_rate: float = 50.0
    #: Query size as a *percentage* of the city area (f_q); the paper's
    #: default is 0.1 (i.e. each square query covers 0.1% of the city).
    query_size_pct: float = 0.1
    #: Page size in bytes (S_page).
    page_size: int = 4096
    #: Entries per page (N_entry) -- the fan-out of every paged structure.
    entries_per_page: int = 20
    #: Size of the secondary hash index in megabytes (S_hash).
    hash_index_mb: float = 8.0

    def __post_init__(self) -> None:
        if self.n_objects <= 0:
            raise ValueError("n_objects must be positive")
        if self.n_history < 2:
            raise ValueError("n_history must be at least 2 (a trail needs >= 2 samples)")
        if self.n_updates < 0:
            raise ValueError("n_updates must be non-negative")
        if self.entries_per_page < 4:
            raise ValueError("entries_per_page must be at least 4 for valid R-tree fan-out")
        if not 0 < self.t_fill <= self.t_empty <= 1:
            raise ValueError("thresholds must satisfy 0 < t_fill <= t_empty <= 1")
        if self.query_size_pct <= 0 or self.query_size_pct > 100:
            raise ValueError("query_size_pct must be in (0, 100]")
        if self.update_rate <= 0 or self.query_rate <= 0:
            raise ValueError("rates must be positive")

    @property
    def query_size_fraction(self) -> float:
        """Query area as a fraction (0.1% -> 0.001)."""
        return self.query_size_pct / 100.0

    @property
    def report_interval(self) -> float:
        """Mean seconds between two location reports of one object.

        With ``update_rate`` updates/second spread over ``n_objects``
        objects, each object reports every ``n_objects / update_rate``
        seconds on average (20 s at the paper's baseline).
        """
        return self.n_objects / self.update_rate

    @property
    def update_query_ratio(self) -> float:
        return self.update_rate / self.query_rate


@dataclass
class CTParams:
    """CT-R-tree construction and adaptation parameters (lower half of Table 1)."""

    #: Distance threshold in Equation 1, metres (T_dist): a growing MBR whose
    #: diagonal exceeds this becomes a candidate for freezing.
    t_dist: float = 30.0
    #: Maximum growth rate of a qs-region, metres/second (T_rate, Equation 2).
    t_rate: float = 1.0
    #: Minimum time an object must dwell in a qs-region, seconds (T_time).
    t_time: float = 300.0
    #: Maximum area of a qs-region, square metres (T_area).
    t_area: float = 22_500.0
    #: Query scaling factor in Equation 6 (C_q).
    c_query: float = 1.0
    #: Update scaling factor in Equation 6 (C_u).
    c_update: float = 1.0

    # -- Appendix A adaptation thresholds --------------------------------
    # The paper introduces these symbolically without baseline values; the
    # defaults below are chosen so that, at the paper's page geometry, the
    # linked list converts after holding ~4 pages of strays and promotion
    # demands a page-sized cohort dwelling for the Phase-1 dwell time.

    #: Maximum length (in pages) of an internal node's linked-list overflow
    #: buffer before it is converted to an alpha-R-tree (T_list).
    t_list: int = 4
    #: Minimum number of objects in an overflow alpha-R-tree leaf for it to be
    #: considered a candidate qs-region (T_buf_num).
    t_buf_num: int = 10
    #: Minimum time (seconds) the candidate conditions must hold before the
    #: leaf is promoted to a real qs-region (T_buf_time).
    t_buf_time: float = 300.0
    #: Maximum tolerated removal rate (removals/second) from a qs-region
    #: before it is retired (T_remove).
    t_remove: float = 1.0
    #: Loose-MBR expansion factor used by overflow alpha-R-trees (and by the
    #: standalone alpha-tree baseline); the paper uses alpha = 0.1.
    alpha: float = 0.1

    def __post_init__(self) -> None:
        for name in ("t_dist", "t_rate", "t_time", "t_area"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.c_query < 0 or self.c_update < 0:
            raise ValueError("scaling factors must be non-negative")
        if self.t_list < 1:
            raise ValueError("t_list must be at least 1 page")
        if self.t_buf_num < 1:
            raise ValueError("t_buf_num must be at least 1 object")
        if self.t_buf_time < 0 or self.t_remove < 0:
            raise ValueError("adaptation thresholds must be non-negative")
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")


#: Human-readable labels matching Table 1, used by the Table-1 experiment.
TABLE1_LABELS: Dict[str, str] = {
    "update_rate": "lambda_u  Location update rate (sec^-1)",
    "t_start": "T_start   Start threshold",
    "t_fill": "T_fill    Fill threshold",
    "t_empty": "T_empty   Empty threshold",
    "n_objects": "N_obj     # of moving objects",
    "n_warmup_max": "N_rmax    Max samples skipped before recording",
    "n_history": "N_hist    # of historic samples (per object)",
    "n_updates": "N_update  # of online updates (per object)",
    "query_rate": "lambda_q  Query arrival rate (sec^-1)",
    "query_size_pct": "f_q       Query size (% of the city area)",
    "page_size": "S_page    Size of a page (bytes)",
    "entries_per_page": "N_entry   # of entries (per page)",
    "hash_index_mb": "S_hash    Size of secondary index (Mbytes)",
    "t_dist": "T_dist    Distance threshold in Eqn 1 (m)",
    "t_rate": "T_rate    Max growth rate of qs-region (m/sec)",
    "t_time": "T_time    Min time objects in qs-region (sec)",
    "t_area": "T_area    Max area of qs-region (m^2)",
    "c_query": "C_q       Query scaling factor (Eqn 6)",
    "c_update": "C_u       Update scaling factor (Eqn 6)",
}


def format_table1(sim: SimulationParams, ct: CTParams) -> str:
    """Render both parameter sets as the paper's Table 1."""
    lines = ["Parameter                                        | Value", "-" * 60]
    lines.append("Simulation parameters")
    for f in fields(sim):
        label = TABLE1_LABELS.get(f.name, f.name)
        lines.append(f"  {label:<46} | {getattr(sim, f.name)}")
    lines.append("CT-R-tree parameters")
    for f in fields(ct):
        label = TABLE1_LABELS.get(f.name)
        if label is None:
            continue  # Appendix-A knobs are not part of Table 1
        lines.append(f"  {label:<46} | {getattr(ct, f.name)}")
    return "\n".join(lines)
