"""Data pages and overflow buffers for the CT-R-tree (Section 3.1.4).

Objects in a CT-R-tree live in :class:`DataPage` records, in one of two
places:

* the **page chain** of a qs-region ("there is a possibly unlimited overflow
  buffer (which can span multiple pages) attached to these MBRs, as in the
  X-tree"), or
* the **overflow buffer of a structural node** for objects that fall outside
  every qs-region ("it is stored in the lowest internal node whose MBR
  contains the new location").  A node buffer starts as an unordered linked
  list of pages and is converted to an alpha-R-tree once it exceeds
  ``T_list`` pages (Section 3.2 / Appendix A).

Each data page carries two pieces of uncharged header metadata: its *owner*
(which structural node / qs-region the page belongs to) and its *tolerance
rectangle* -- the region within which an object on this page may be updated
in place.  For qs-chain pages the tolerance is the qs-region rectangle
itself.  List-buffer pages have **no** tolerance (``None``): the linked list
is unordered staging with no MBR of its own, so every update of a list
resident relocates the object -- which is what lets settled objects migrate
into (or be promoted to) qs-regions instead of lingering in buffers.
Overflow alpha-R-trees get lazy updates through their own leaf MBRs,
intersected with the owning node's MBR at conversion time so residents stay
findable; structural MBRs only ever grow, keeping that bound valid.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.geometry import Point, Rect
from repro.storage.page import Page, PageId

#: Owner tag for a page in a qs-region's chain: ("qs", node_pid, region_id).
OWNER_QS = "qs"
#: Owner tag for a page in a node's linked-list buffer: ("list", node_pid).
OWNER_LIST = "list"

Owner = Tuple


class DataPage(Page):
    """A page of object records (capacity ``N_entry``)."""

    __slots__ = ("records", "capacity", "owner", "tolerance")

    def __init__(self, capacity: int, owner: Owner, tolerance: Optional[Rect]) -> None:
        super().__init__()
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.records: Dict[int, Point] = {}
        self.owner = owner
        self.tolerance = tolerance

    @property
    def is_full(self) -> bool:
        return len(self.records) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self.records

    def add(self, obj_id: int, point: Point) -> None:
        if self.is_full:
            raise ValueError(f"page {self.pid} is full")
        self.records[obj_id] = point

    def remove(self, obj_id: int) -> Optional[Point]:
        return self.records.pop(obj_id, None)

    def matches(self, rect: Rect) -> List[Tuple[int, Point]]:
        """Records whose point falls inside the closed rectangle."""
        return [(oid, pt) for oid, pt in self.records.items() if rect.contains_point(pt)]

    def __len__(self) -> int:
        return len(self.records)


class QSEntry:
    """A qs-region slot in a structural leaf node.

    The rectangle is permanent: "they are never removed from the index
    (i.e. they are allowed to be underfull ...) and they are not split when
    overfull" -- except by Appendix A's explicit retirement.

    ``chain`` and ``fills`` form the page directory.  ``fills`` mirrors each
    page's record count; like parent pointers it is advisory in-memory
    metadata (DESIGN.md section 5): finding "the first non-full page" does
    not charge extra reads, but touching the chosen page still costs its
    read and write.

    ``removals`` / ``window_start`` drive Appendix A's retirement test
    (removal rate vs ``T_remove``).
    """

    __slots__ = ("rect", "region_id", "chain", "fills", "removals", "window_start")

    def __init__(self, rect: Rect, region_id: int, created_at: float = 0.0) -> None:
        self.rect = rect
        self.region_id = region_id
        self.chain: List[PageId] = []
        self.fills: List[int] = []
        self.removals = 0
        self.window_start = created_at

    def first_non_full(self, capacity: int) -> Optional[int]:
        """Chain index of the first page with free space, else None."""
        for i, fill in enumerate(self.fills):
            if fill < capacity:
                return i
        return None

    def object_count(self) -> int:
        return sum(self.fills)

    def __repr__(self) -> str:
        return (
            f"QSEntry(region={self.region_id}, pages={len(self.chain)}, "
            f"objects={self.object_count()})"
        )


class NodeBuffer:
    """A structural node's overflow buffer directory.

    ``kind`` is ``"list"`` (page chain) or ``"tree"`` (alpha-R-tree; the tree
    object itself is owned by the CT-R-tree, keyed by node pid, since Python
    object graphs do not live inside pages).
    """

    KIND_LIST = "list"
    KIND_TREE = "tree"

    __slots__ = ("kind", "pages", "fills")

    def __init__(self) -> None:
        self.kind = NodeBuffer.KIND_LIST
        self.pages: List[PageId] = []
        self.fills: List[int] = []

    def first_non_full(self, capacity: int) -> Optional[int]:
        for i, fill in enumerate(self.fills):
            if fill < capacity:
                return i
        return None

    def object_count(self) -> int:
        """List-mode record count (tree mode is tracked by the tree itself)."""
        return sum(self.fills)

    def __repr__(self) -> str:
        return f"NodeBuffer(kind={self.kind}, pages={len(self.pages)})"
