"""Phase 3: merging qs-regions via update-graph traffic (Equation 6).

Phase 2 only merges rectangles with enough overlap.  Two disjoint regions
with heavy traffic between them (think: office building and the parking
garage across the street) still cause an expensive index update on every
crossing.  Phase 3 weighs that update saving against the query cost of the
dead space a merge would create:

* merging adds ``M`` units of dead area; with queries arriving at rate
  ``r_q`` uniformly over a domain of area ``A``, about ``r_q * M / A``
  queries per unit time will hit the dead space -- the loss;
* not merging costs ``w`` updates per unit time (the edge weight) -- the
  saving.

With scaling factors ``C_q``/``C_u``, the pair is merged iff

    C_u * w  >=  C_q * r_q * M / A                        (Equation 6)

Edges are processed heaviest-first and the graph re-examined after every
merge, since merging changes both rectangles and link weights.
"""

from __future__ import annotations

from typing import Optional

from repro.core.params import CTParams
from repro.core.update_graph import UpdateGraph


def dead_space_increase(graph: UpdateGraph, a: int, b: int) -> float:
    """``M``: area the union adds beyond what the two rectangles cover.

    Overlap is counted once, so adjacent/overlapping pairs contribute only
    genuinely new dead space.
    """
    rect_a = graph.region(a).rect
    rect_b = graph.region(b).rect
    union = rect_a.union(rect_b)
    covered = rect_a.area + rect_b.area - rect_a.overlap_area(rect_b)
    return max(0.0, union.area - covered)


def should_merge(
    graph: UpdateGraph,
    a: int,
    b: int,
    query_rate: float,
    domain_area: float,
    params: CTParams,
) -> bool:
    """Evaluate Equation 6 for the edge (a, b)."""
    weight = graph.edge_weight(a, b)
    if weight <= 0:
        return False
    if domain_area <= 0:
        raise ValueError("domain_area must be positive")
    m = dead_space_increase(graph, a, b)
    return params.c_update * weight >= params.c_query * query_rate * m / domain_area


def merge_by_traffic(
    graph: UpdateGraph,
    query_rate: float,
    domain_area: float,
    params: CTParams,
    max_merges: Optional[int] = None,
) -> int:
    """Apply Equation 6 greedily, heaviest edge first; returns merges done.

    ``max_merges`` bounds the loop for ablation studies; None means run to
    fixpoint.
    """
    merges = 0
    while max_merges is None or merges < max_merges:
        best_edge = None
        best_weight = 0.0
        for a, b, weight in graph.edges():
            if weight > best_weight and should_merge(
                graph, a, b, query_rate, domain_area, params
            ):
                best_edge = (a, b)
                best_weight = weight
        if best_edge is None:
            break
        graph.merge(*best_edge)
        merges += 1
    return merges
