"""Phase 2: chain graphs, resident-density merging, and the update graph.

Per object (Figure 4): the object's qs-regions form a *chain graph* --
vertices are the rectangles, links join consecutive rectangles in time order,
each link initially of weight 1.  Overlapping rectangles are then merged
whenever the union's **resident density** (total dwell time / area) exceeds
the density of both constituents and the union stays under ``T_area``
(conditions 3-5); common links are collapsed with summed weights.

The per-object graphs are unioned and the same merging procedure is applied
to the whole, yielding the global *update graph*: vertices are qs-regions
shared by all objects, the time value of each is the total time objects spent
in it, and an edge's weight counts the updates (transitions) between its two
regions.  Finally all edge weights are scaled down by ``t_max``, the longest
trail duration, so weights read as updates per unit time.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.qsregion import QSRegion

#: Floor for rectangle areas when computing densities, so degenerate
#: (zero-area) regions stay mergeable instead of having infinite density.
AREA_EPSILON = 1e-9


class UpdateGraph:
    """A weighted undirected graph over :class:`QSRegion` vertices."""

    def __init__(self) -> None:
        self._regions: Dict[int, QSRegion] = {}
        self._adj: Dict[int, Dict[int, float]] = {}
        self._next_id = 0

    # -- construction ------------------------------------------------------

    def add_region(self, region: QSRegion) -> int:
        rid = self._next_id
        self._next_id += 1
        self._regions[rid] = region
        self._adj[rid] = {}
        return rid

    def add_edge(self, a: int, b: int, weight: float = 1.0) -> None:
        """Accumulate ``weight`` onto the (a, b) link; self-links are ignored."""
        if a == b:
            return
        for rid in (a, b):
            if rid not in self._regions:
                raise KeyError(f"unknown region id {rid}")
        self._adj[a][b] = self._adj[a].get(b, 0.0) + weight
        self._adj[b][a] = self._adj[b].get(a, 0.0) + weight

    # -- access -------------------------------------------------------------

    def region(self, rid: int) -> QSRegion:
        return self._regions[rid]

    @property
    def region_ids(self) -> List[int]:
        return list(self._regions.keys())

    @property
    def region_count(self) -> int:
        return len(self._regions)

    def regions(self) -> List[QSRegion]:
        return list(self._regions.values())

    def neighbors(self, rid: int) -> Dict[int, float]:
        return dict(self._adj[rid])

    def edge_weight(self, a: int, b: int) -> float:
        return self._adj.get(a, {}).get(b, 0.0)

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Each undirected edge once, as (smaller id, larger id, weight)."""
        for a, nbrs in self._adj.items():
            for b, weight in nbrs.items():
                if a < b:
                    yield a, b, weight

    def edge_count(self) -> int:
        return sum(1 for _ in self.edges())

    # -- mutation ------------------------------------------------------------

    def merge(self, keep: int, absorb: int) -> int:
        """Merge region ``absorb`` into ``keep`` (Figure 4 steps (a)-(c)).

        The kept region's rectangle expands to the union, dwell times add,
        and links that led to the same third region collapse into one link of
        summed weight.  The link between the pair disappears (those
        transitions are now intra-region).
        """
        if keep == absorb:
            raise ValueError("cannot merge a region with itself")
        region_keep = self._regions[keep]
        region_gone = self._regions.pop(absorb)

        region_keep.rect = region_keep.rect.union(region_gone.rect)
        region_keep.dwell_time += region_gone.dwell_time
        region_keep.sources = sorted(set(region_keep.sources) | set(region_gone.sources))
        if region_keep.object_id != region_gone.object_id:
            region_keep.object_id = None

        for nbr, weight in self._adj.pop(absorb).items():
            self._adj[nbr].pop(absorb, None)
            if nbr != keep:
                self.add_edge(keep, nbr, weight)
        self._adj[keep].pop(absorb, None)
        return keep

    def scale_edges(self, factor: float) -> None:
        """Multiply every edge weight by ``factor`` (the 1/t_max scaling)."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        for nbrs in self._adj.values():
            for nbr in nbrs:
                nbrs[nbr] *= factor

    def total_dwell_time(self) -> float:
        return sum(r.dwell_time for r in self._regions.values())

    def __repr__(self) -> str:
        return f"UpdateGraph(regions={self.region_count}, edges={self.edge_count()})"


def chain_graph(regions: Sequence[QSRegion]) -> UpdateGraph:
    """The per-object chain graph: a path through the regions in time order."""
    graph = UpdateGraph()
    rids = [graph.add_region(region) for region in regions]
    for a, b in zip(rids, rids[1:]):
        graph.add_edge(a, b, 1.0)
    return graph


def union_graphs(graphs: Iterable[UpdateGraph]) -> UpdateGraph:
    """Disjoint union of per-object graphs into one unified graph."""
    unified = UpdateGraph()
    for graph in graphs:
        relabel = {rid: unified.add_region(graph.region(rid)) for rid in graph.region_ids}
        for a, b, weight in graph.edges():
            unified.add_edge(relabel[a], relabel[b], weight)
    return unified


def _mergeable(a: QSRegion, b: QSRegion, t_area: float) -> bool:
    """Conditions (3)-(5): the union must beat both resident densities and
    stay under the area cap."""
    union = a.rect.union(b.rect)
    union_area = union.area
    if union_area >= t_area:
        return False
    combined_density = (a.dwell_time + b.dwell_time) / max(union_area, AREA_EPSILON)
    return (
        a.resident_density(AREA_EPSILON) < combined_density
        and b.resident_density(AREA_EPSILON) < combined_density
    )


class _Grid:
    """Uniform-grid candidate index for the density-merge fixpoint loop.

    Cell side is ``sqrt(T_area)``: a merge product must fit in ``T_area``, so
    partners of near-square candidates lie in the 3x3 cell neighbourhood.
    (The exhaustive path below exists for small inputs and for tests that
    check the pruning loses nothing on realistic data.)
    """

    def __init__(self, cell: float) -> None:
        self.cell = max(cell, AREA_EPSILON)
        self._cells: Dict[Tuple[int, int], Set[int]] = {}
        self._where: Dict[int, List[Tuple[int, int]]] = {}

    def _cover(self, region: QSRegion) -> List[Tuple[int, int]]:
        x0 = math.floor(region.rect.lo[0] / self.cell)
        x1 = math.floor(region.rect.hi[0] / self.cell)
        y0 = math.floor(region.rect.lo[1] / self.cell) if region.rect.dim > 1 else 0
        y1 = math.floor(region.rect.hi[1] / self.cell) if region.rect.dim > 1 else 0
        return [(cx, cy) for cx in range(x0, x1 + 1) for cy in range(y0, y1 + 1)]

    def add(self, rid: int, region: QSRegion) -> None:
        cells = self._cover(region)
        self._where[rid] = cells
        for cell in cells:
            self._cells.setdefault(cell, set()).add(rid)

    def remove(self, rid: int) -> None:
        for cell in self._where.pop(rid, []):
            bucket = self._cells.get(cell)
            if bucket is not None:
                bucket.discard(rid)

    def candidates(self, rid: int) -> Set[int]:
        found: Set[int] = set()
        for cx, cy in self._where.get(rid, []):
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    found |= self._cells.get((cx + dx, cy + dy), set())
        found.discard(rid)
        return found


def merge_by_density(
    graph: UpdateGraph,
    t_area: float,
    exhaustive: Optional[bool] = None,
) -> int:
    """Run Figure 4's merging loop to fixpoint; returns the number of merges.

    ``exhaustive`` selects candidate generation: all pairs (exact, O(n^2) per
    pass) versus grid-pruned.  Defaults to exhaustive for graphs of at most
    256 regions, grid-pruned above.
    """
    if exhaustive is None:
        exhaustive = graph.region_count <= 256

    merges = 0
    if exhaustive:
        changed = True
        while changed:
            changed = False
            rids = graph.region_ids
            for i, a in enumerate(rids):
                if a not in graph._regions:
                    continue
                for b in rids[i + 1 :]:
                    if b not in graph._regions or a not in graph._regions:
                        continue
                    if _mergeable(graph.region(a), graph.region(b), t_area):
                        graph.merge(a, b)
                        merges += 1
                        changed = True
        return merges

    grid = _Grid(math.sqrt(t_area))
    for rid in graph.region_ids:
        grid.add(rid, graph.region(rid))
    worklist = list(graph.region_ids)
    while worklist:
        a = worklist.pop()
        if a not in graph._regions:
            continue
        merged_any = True
        while merged_any:
            merged_any = False
            for b in grid.candidates(a):
                if b not in graph._regions:
                    grid.remove(b)
                    continue
                if _mergeable(graph.region(a), graph.region(b), t_area):
                    graph.merge(a, b)
                    grid.remove(b)
                    grid.remove(a)
                    grid.add(a, graph.region(a))
                    merges += 1
                    merged_any = True
                    break
    return merges


def per_object_graphs(
    per_object_regions: Sequence[Sequence[QSRegion]], t_area: float
) -> List[UpdateGraph]:
    """Phase 2a: one density-merged chain graph per object.

    Each object's graph depends on nothing but its own regions, which is
    what makes this half of the phase embarrassingly parallel -- the
    parallel build (:mod:`repro.parallel.build`) runs exactly this function
    over contiguous chunks and concatenates, so its output is bit-identical.
    """
    graphs = []
    for regions in per_object_regions:
        graph = chain_graph(regions)
        merge_by_density(graph, t_area, exhaustive=True)
        graphs.append(graph)
    return graphs


def finish_update_graph(
    graphs: Sequence[UpdateGraph],
    t_area: float,
    t_max: float,
    exhaustive: Optional[bool] = None,
) -> UpdateGraph:
    """Phase 2b: union the per-object graphs, merge globally, rescale.

    Inherently order-sensitive (region ids are assigned by union order), so
    it always runs serially -- both the serial and parallel builds feed it
    graphs in stable object order.
    """
    unified = union_graphs(graphs)
    merge_by_density(unified, t_area, exhaustive=exhaustive)

    if t_max > 0:
        unified.scale_edges(1.0 / t_max)
    return unified


def build_update_graph(
    per_object_regions: Sequence[Sequence[QSRegion]],
    t_area: float,
    t_max: float,
    exhaustive: Optional[bool] = None,
) -> UpdateGraph:
    """The full Phase 2: per-object chains, density merges, union, rescale.

    Args:
        per_object_regions: Phase-1 output, one region sequence per object.
        t_area: the ``T_area`` threshold.
        t_max: the longest trail duration (``max |H_i|`` in time), used to
            scale edge weights to updates per unit time.
    """
    return finish_update_graph(
        per_object_graphs(per_object_regions, t_area),
        t_area,
        t_max,
        exhaustive=exhaustive,
    )
