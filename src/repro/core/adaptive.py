"""Appendix A: adapting the CT-R-tree to changing traffic patterns.

The CT-R-tree's skeleton is mined from history, so a change in movement
patterns (buildings demolished, new gathering spots) strands objects in the
overflow buffers.  Two online mechanisms, both implemented here, keep the
index useful between offline rebuilds:

* **Discovery** (A.1): a leaf of an overflow alpha-R-tree whose MBR behaves
  like a qs-region -- more than ``T_buf_num`` objects, area under ``T_area``,
  conditions holding for longer than ``T_buf_time`` -- is *promoted*: its MBR
  is re-inserted into the structural R-tree as a new (approximate) qs-region
  and its objects move into the region's page chain.
* **Retirement** (A.2): "every time an object is removed from a qs-region,
  the object has violated the supposed stability of the qs-region.  When the
  removal rate is greater than ``T_remove`` ... the qs-region is not
  qualified for holding objects".  The region is removed and its residents
  re-inserted.

Bookkeeping (per-leaf candidate timestamps ``t_i``, per-region removal
counters) lives in node/page metadata plus this manager's in-memory maps,
mirroring the ``(t_i, n_i)`` fields the paper stores in the node.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.core.geometry import Point
from repro.core.overflow import DataPage, QSEntry
from repro.rtree.node import RTreeNode
from repro.rtree.rtree import RTree
from repro.storage.page import PageId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.ctrtree import CTNode, CTRTree


class AdaptationManager:
    """Implements Appendix A's discovery and retirement for one CT-R-tree."""

    def __init__(self, tree: "CTRTree") -> None:
        self.tree = tree
        #: t_i of Appendix A: when a buffer-tree leaf started looking like a
        #: qs-region ("initially, t_i is infinity" -- here: absent).
        self._candidate_since: Dict[PageId, float] = {}
        self.promotions = 0
        self.retirements = 0

    # -- discovery (A.1) -----------------------------------------------------

    def forget_leaf(self, pid: PageId) -> None:
        """Drop candidate state for a leaf that was freed or drained."""
        self._candidate_since.pop(pid, None)

    def after_buffer_insert(
        self, node: "CTNode", buffer_tree: RTree, leaf_pid: PageId, now: float
    ) -> Optional[Dict[int, PageId]]:
        """Check conditions (1)-(3) after an insertion into a buffer-tree leaf.

        Returns the re-homing map when the leaf was promoted (the caller's
        page id for the just-inserted object is stale in that case), else
        None.
        """
        params = self.tree.params
        leaf = self.tree.pager.inspect(leaf_pid)
        if not isinstance(leaf, RTreeNode) or not leaf.is_leaf:
            return None
        rect = leaf.mbr if leaf.mbr is not None else leaf.tight_mbr()
        if rect is None:
            return None
        qualifies = len(leaf.entries) > params.t_buf_num and rect.area < params.t_area
        if not qualifies:
            # "If any of them are not satisfied, then t_i is reset to
            # infinity, indicating that the node does not behave like a
            # qs-region."
            self._candidate_since.pop(leaf_pid, None)
            return None
        since = self._candidate_since.get(leaf_pid)
        if since is None:
            self._candidate_since[leaf_pid] = now
        elif now - since > params.t_buf_time:
            return self._promote(buffer_tree, leaf, now)
        return None

    def _promote(
        self, buffer_tree: RTree, leaf: RTreeNode, now: float
    ) -> Dict[int, PageId]:
        """Move a stable buffer-tree leaf into the structural tree as a new
        (approximate) qs-region: "X_j (and its associated objects) is removed
        from the alpha-R-tree and re-inserted to the structural R-tree as a
        new qs-region"."""
        tree = self.tree
        self._candidate_since.pop(leaf.pid, None)
        # The promotion copies the leaf out: one charged read.
        charged = tree.pager.read(leaf.pid)
        assert charged is leaf
        rect = leaf.mbr if leaf.mbr is not None else leaf.tight_mbr()
        assert rect is not None  # the caller verified the leaf is non-empty
        objects: List[Tuple[int, Point]] = [(e.child, e.point) for e in leaf.entries]

        # Detach the leaf from the overflow tree.
        leaf.entries = []
        buffer_tree._size -= len(objects)
        buffer_tree._unlink_empty(leaf)

        # Insert the new qs-region and re-home the objects into its chain.
        qs, node_pid = tree.add_qs_region(rect, created_at=now)
        owner = tree._inspect(node_pid)
        rehomed: Dict[int, PageId] = {}
        for obj_id, point in objects:
            pid = tree._qs_append(owner, qs, obj_id, point)
            tree.hash.set(obj_id, pid)
            rehomed[obj_id] = pid
        self.promotions += 1
        return rehomed

    # -- retirement (A.2) -------------------------------------------------------

    def after_region_removal(self, node: "CTNode", qs: QSEntry, now: float) -> None:
        """Re-evaluate a region's removal rate after an object left it."""
        params = self.tree.params
        elapsed = now - qs.window_start
        if elapsed <= max(params.t_time, 1e-9):
            return  # too early for a meaningful rate
        if qs.removals / elapsed > params.t_remove:
            self._retire(node, qs, now)

    def _retire(self, node: "CTNode", qs: QSEntry, now: float) -> None:
        """Remove a churning qs-region; "all items in the qs-region are
        re-inserted to the CT-R-tree"."""
        tree = self.tree
        charged = tree.pager.read(node.pid)
        assert charged is node
        node.entries.remove(qs)
        # The node MBR is deliberately not tightened: recorded tolerances of
        # buffered objects must stay subsets of live MBRs.
        tree.pager.write(node)

        objects: List[Tuple[int, Point]] = []
        for pid in qs.chain:
            page = tree.pager.read(pid)
            assert isinstance(page, DataPage)
            objects.extend(page.records.items())
            tree.pager.free(pid)
        qs.chain = []
        qs.fills = []

        tree._size -= len(objects)
        for obj_id, point in objects:
            pid = tree._place(obj_id, point, now)
            tree.hash.set(obj_id, pid)
        self.retirements += 1

    # -- reporting -------------------------------------------------------------

    @property
    def candidate_count(self) -> int:
        return len(self._candidate_since)

    def __repr__(self) -> str:
        return (
            f"AdaptationManager(promotions={self.promotions}, "
            f"retirements={self.retirements}, candidates={self.candidate_count})"
        )
