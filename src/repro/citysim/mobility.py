"""Object mobility: dwell indoors / in the park, travel along roads.

This is the movement model Section 2 of the paper motivates: "for most of
the time a large fraction of these people are inside a building.  They may
change their locations but these variations are not big ...  Then,
sometimes, when they are on the road, the changes in their locations are
rapid.  However, this happens for relatively shorter periods of time."

States:

* ``INDOORS`` -- confined Gaussian jitter inside the building footprint,
  occasional floor changes (floor matters only for the warm-up thresholds);
* ``IN_PARK`` -- the same, with wider wandering, always at ground level;
* ``TRAVELING`` -- piecewise-linear motion along road-network waypoints at a
  per-trip speed.

Dwell times are exponential with mean ``dwell_mean`` (well above the paper's
``T_time`` = 300 s, so dwells register as qs-regions); trips last seconds to
a couple of minutes.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.citysim.city import Building, City
from repro.core.geometry import Point


class ObjectState:
    INDOORS = "indoors"
    IN_PARK = "in_park"
    TRAVELING = "traveling"


@dataclass
class MovingObject:
    """Mutable state of one simulated person."""

    oid: int
    state: str
    position: Point
    floor: int = 0
    building: Optional[Building] = None
    dwell_until: float = 0.0
    waypoints: List[Point] = field(default_factory=list)
    leg: int = 0
    speed: float = 1.5

    @property
    def at_ground_level(self) -> bool:
        """Ground-level test for the warm-up thresholds: outdoors or floor 0."""
        return self.state != ObjectState.INDOORS or self.floor == 0


class MobilityModel:
    """Advances :class:`MovingObject` state; one instance per simulation.

    Args:
        city: the map (buildings as dwell targets, roads for travel).
        rng: the simulation's random source.
        dwell_mean: mean indoor/park dwell, seconds.
        indoor_sigma: per-report jitter std-dev while dwelling, metres.
        speed_range: min/max travel speed, metres/second (walk .. drive).
        park_prob: probability a trip targets the park instead of a building.
        floor_change_prob: chance a dwelling person switches floors per step.
    """

    def __init__(
        self,
        city: City,
        rng: random.Random,
        dwell_mean: float = 900.0,
        indoor_sigma: float = 2.0,
        speed_range: tuple = (1.5, 15.0),
        park_prob: float = 0.1,
        floor_change_prob: float = 0.05,
    ) -> None:
        if not city.buildings:
            raise ValueError("the city has no buildings to dwell in")
        self.city = city
        self.rng = rng
        self.dwell_mean = dwell_mean
        self.indoor_sigma = indoor_sigma
        self.speed_range = speed_range
        self.park_prob = park_prob
        self.floor_change_prob = floor_change_prob
        #: Ground-level steering set by the simulator's occupancy controller:
        #: +1 pushes floor changes toward the ground, -1 away from it.
        self.ground_bias = 0

    # -- lifecycle -----------------------------------------------------------

    def spawn(self, oid: int, now: float) -> MovingObject:
        """A fresh object dwelling in a random building."""
        building = self.rng.choice(self.city.buildings)
        obj = MovingObject(
            oid=oid,
            state=ObjectState.INDOORS,
            position=building.random_point(self.rng),
            floor=self.rng.randrange(building.floors),
            building=building,
            dwell_until=now + self.rng.expovariate(1.0 / self.dwell_mean),
        )
        return obj

    # -- stepping ------------------------------------------------------------

    def step(self, obj: MovingObject, now: float, dt: float) -> None:
        """Advance ``obj`` by ``dt`` seconds ending at time ``now``."""
        if dt < 0:
            raise ValueError("dt must be non-negative")
        if obj.state == ObjectState.TRAVELING:
            self._travel(obj, now, dt)
        else:
            self._dwell(obj, now)

    def _dwell(self, obj: MovingObject, now: float) -> None:
        if now >= obj.dwell_until:
            self._start_trip(obj, now)
            return
        if obj.state == ObjectState.INDOORS:
            assert obj.building is not None
            rect = obj.building.rect
            sigma = self.indoor_sigma
            self._maybe_change_floor(obj)
        else:  # IN_PARK: wider wandering, ground level by definition
            rect = self.city.park
            sigma = self.indoor_sigma * 3.0
        x = min(max(obj.position[0] + self.rng.gauss(0.0, sigma), rect.lo[0]), rect.hi[0])
        y = min(max(obj.position[1] + self.rng.gauss(0.0, sigma), rect.lo[1]), rect.hi[1])
        obj.position = (x, y)

    def _maybe_change_floor(self, obj: MovingObject) -> None:
        assert obj.building is not None
        if obj.building.floors <= 1:
            obj.floor = 0
            return
        if self.rng.random() >= self.floor_change_prob:
            return
        if self.ground_bias > 0:
            obj.floor = 0
        elif self.ground_bias < 0:
            obj.floor = self.rng.randrange(1, obj.building.floors)
        else:
            obj.floor = self.rng.randrange(obj.building.floors)

    def _start_trip(self, obj: MovingObject, now: float) -> None:
        if self.rng.random() < self.park_prob:
            destination = (
                self.rng.uniform(self.city.park.lo[0], self.city.park.hi[0]),
                self.rng.uniform(self.city.park.lo[1], self.city.park.hi[1]),
            )
            target_building = None
        else:
            target_building = self.rng.choice(self.city.buildings)
            destination = target_building.random_point(self.rng)
        obj.waypoints = self.city.route(obj.position, destination)
        obj.leg = 0
        obj.speed = self.rng.uniform(*self.speed_range)
        obj.state = ObjectState.TRAVELING
        obj.building = target_building
        obj.floor = 0

    def _travel(self, obj: MovingObject, now: float, dt: float) -> None:
        budget = obj.speed * dt
        position = obj.position
        while budget > 0 and obj.leg < len(obj.waypoints) - 1:
            target = obj.waypoints[obj.leg + 1]
            dist = math.dist(position, target)
            if dist <= budget:
                position = target
                obj.leg += 1
                budget -= dist
            else:
                frac = budget / dist
                position = (
                    position[0] + (target[0] - position[0]) * frac,
                    position[1] + (target[1] - position[1]) * frac,
                )
                budget = 0.0
        obj.position = position
        if obj.leg >= len(obj.waypoints) - 1:
            self._arrive(obj, now)

    def _arrive(self, obj: MovingObject, now: float) -> None:
        obj.waypoints = []
        obj.leg = 0
        obj.dwell_until = now + self.rng.expovariate(1.0 / self.dwell_mean)
        if obj.building is None:
            obj.state = ObjectState.IN_PARK
            obj.floor = 0
        else:
            obj.state = ObjectState.INDOORS
            self._maybe_change_floor(obj)
