"""Alternative mobility models: stress-testing the dwell/travel premise.

The paper's claim is conditional: change tolerance pays when data "changes
slowly but constantly ... for most periods of time, followed by short
periods of major variation" (Section 2).  The city model produces exactly
that shape.  These two classics from the mobility literature bracket it:

* :class:`WaypointModel` -- random waypoint *with pause times*: objects walk
  to a uniformly random point, pause (jittering slightly), and repeat.
  Dwells exist but are scattered anywhere, not at shared buildings -- per
  -object qs-regions appear, cross-object merging has little to merge.
* :class:`GaussianMarkovModel` -- velocity-correlated wandering with **no
  dwells at all**: the adversarial case where Phase 1 should mine few or no
  qs-regions and the CT-R-tree should degrade gracefully toward lazy-R-tree
  behaviour rather than fall off a cliff.

Both expose the :class:`~repro.citysim.mobility.MobilityModel` surface the
simulator drives (``spawn`` / ``step`` / ``ground_bias``), so they drop into
:class:`~repro.citysim.simulator.CitySimulator` unchanged.
"""

from __future__ import annotations

import math
import random

from repro.citysim.city import City
from repro.citysim.mobility import MovingObject, ObjectState
from repro.core.geometry import Rect


class WaypointModel:
    """Random waypoint with pause times over the city bounds."""

    def __init__(
        self,
        city: City,
        rng: random.Random,
        pause_mean: float = 900.0,
        pause_sigma: float = 1.0,
        speed_range: tuple = (1.5, 15.0),
    ) -> None:
        self.city = city
        self.rng = rng
        self.pause_mean = pause_mean
        self.pause_sigma = pause_sigma
        self.speed_range = speed_range
        self.ground_bias = 0  # occupancy control is a no-op: always outdoors

    def _random_point(self):
        bounds: Rect = self.city.bounds
        return (
            self.rng.uniform(bounds.lo[0], bounds.hi[0]),
            self.rng.uniform(bounds.lo[1], bounds.hi[1]),
        )

    def spawn(self, oid: int, now: float) -> MovingObject:
        return MovingObject(
            oid=oid,
            state=ObjectState.IN_PARK,  # "paused" state; always ground level
            position=self._random_point(),
            floor=0,
            building=None,
            dwell_until=now + self.rng.expovariate(1.0 / self.pause_mean),
        )

    def step(self, obj: MovingObject, now: float, dt: float) -> None:
        if dt < 0:
            raise ValueError("dt must be non-negative")
        if obj.state == ObjectState.TRAVELING:
            self._travel(obj, now, dt)
            return
        if now >= obj.dwell_until:
            obj.waypoints = [obj.position, self._random_point()]
            obj.leg = 0
            obj.speed = self.rng.uniform(*self.speed_range)
            obj.state = ObjectState.TRAVELING
            return
        bounds = self.city.bounds
        obj.position = (
            min(max(obj.position[0] + self.rng.gauss(0, self.pause_sigma), bounds.lo[0]), bounds.hi[0]),
            min(max(obj.position[1] + self.rng.gauss(0, self.pause_sigma), bounds.lo[1]), bounds.hi[1]),
        )

    def _travel(self, obj: MovingObject, now: float, dt: float) -> None:
        target = obj.waypoints[-1]
        dist = math.dist(obj.position, target)
        budget = obj.speed * dt
        if dist <= budget:
            obj.position = target
            obj.state = ObjectState.IN_PARK
            obj.waypoints = []
            obj.dwell_until = now + self.rng.expovariate(1.0 / self.pause_mean)
            return
        frac = budget / dist
        obj.position = (
            obj.position[0] + (target[0] - obj.position[0]) * frac,
            obj.position[1] + (target[1] - obj.position[1]) * frac,
        )


class GaussianMarkovModel:
    """Velocity-correlated wandering: no dwells, the CT-adversarial case.

    Velocity evolves as an AR(1) process::

        v <- memory * v + (1 - memory) * mean_v + noise

    reflected at the city bounds.  Objects never settle, so Phase 1 mines
    few/no qs-regions and everything lands in overflow buffers.
    """

    def __init__(
        self,
        city: City,
        rng: random.Random,
        memory: float = 0.85,
        mean_speed: float = 3.0,
        noise_sigma: float = 1.0,
    ) -> None:
        if not 0.0 <= memory < 1.0:
            raise ValueError("memory must be in [0, 1)")
        self.city = city
        self.rng = rng
        self.memory = memory
        self.mean_speed = mean_speed
        self.noise_sigma = noise_sigma
        self.ground_bias = 0
        self._velocities = {}

    def spawn(self, oid: int, now: float) -> MovingObject:
        bounds = self.city.bounds
        angle = self.rng.uniform(0, 2 * math.pi)
        self._velocities[oid] = (
            self.mean_speed * math.cos(angle),
            self.mean_speed * math.sin(angle),
        )
        return MovingObject(
            oid=oid,
            state=ObjectState.TRAVELING,
            position=(
                self.rng.uniform(bounds.lo[0], bounds.hi[0]),
                self.rng.uniform(bounds.lo[1], bounds.hi[1]),
            ),
            floor=0,
            building=None,
            dwell_until=math.inf,  # never pauses
        )

    def step(self, obj: MovingObject, now: float, dt: float) -> None:
        if dt < 0:
            raise ValueError("dt must be non-negative")
        vx, vy = self._velocities.get(obj.oid, (self.mean_speed, 0.0))
        m = self.memory
        root = math.sqrt(max(1.0 - m * m, 0.0))
        vx = m * vx + (1 - m) * self.mean_speed + root * self.rng.gauss(0, self.noise_sigma)
        vy = m * vy + (1 - m) * 0.0 + root * self.rng.gauss(0, self.noise_sigma)
        x = obj.position[0] + vx * dt
        y = obj.position[1] + vy * dt
        bounds = self.city.bounds
        x, vx = _reflect(x, vx, bounds.lo[0], bounds.hi[0])
        y, vy = _reflect(y, vy, bounds.lo[1], bounds.hi[1])
        obj.position = (x, y)
        self._velocities[obj.oid] = (vx, vy)


def _reflect(coord: float, velocity: float, low: float, high: float):
    """Bounce off a boundary, flipping the velocity component."""
    if coord < low:
        return low + (low - coord), -velocity
    if coord > high:
        return high - (coord - high), -velocity
    return coord, velocity


def make_model(name: str, city: City, rng: random.Random, **kwargs):
    """Factory for the ablation harness: ``city`` (default), ``waypoint``,
    or ``gauss_markov``."""
    from repro.citysim.mobility import MobilityModel

    if name == "city":
        return MobilityModel(city, rng, **kwargs)
    if name == "waypoint":
        return WaypointModel(city, rng, **kwargs)
    if name == "gauss_markov":
        return GaussianMarkovModel(city, rng, **kwargs)
    raise ValueError(f"unknown mobility model {name!r}")
