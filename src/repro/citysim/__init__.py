"""City simulator: the reproduction's substitute for IBM City Simulator 2.0.

The paper's workload comes from "the City Simulator 2.0 developed
independently at IBM ... a map of a city ... 71 buildings, 48 roads, six road
intersections and one park.  Each building is three-dimensional and contains
a number of floors.  The simulator models the movement of objects within the
building and on the roads and park" (Section 4.1).  That tool is
closed-source and no longer distributed, so this package re-implements the
behaviour that matters to the index:

* a generated city map with the same composition (buildings with floors,
  a road network with intersections, one park);
* objects that **dwell** inside buildings with small confined jitter --
  exactly the quasi-static behaviour Section 2 motivates -- and then
  **travel** along the road network to another destination;
* a warm-up phase governed by the ``T_start``/``T_fill``/``T_empty``
  ground-level occupancy thresholds of Table 1;
* a trace of ``(object, location, timestamp)`` records at the population
  reporting rate ``lambda_u``, split into history and online-update phases
  downstream.

The city map is used only to generate movement, never by the index -- same
as the paper ("the city map is used only by the City Simulator to generate
realistic movement of objects -- it is not used for the generation of the
CT-R-tree index structure").
"""

from repro.citysim.city import Building, City, Road
from repro.citysim.mobility import MobilityModel, MovingObject, ObjectState
from repro.citysim.trace import Trace, TraceRecord
from repro.citysim.simulator import CitySimulator

__all__ = [
    "Building",
    "City",
    "Road",
    "MobilityModel",
    "MovingObject",
    "ObjectState",
    "Trace",
    "TraceRecord",
    "CitySimulator",
]
