"""The simulation loop: warm-up, occupancy control, trace recording.

Reproduces Section 4.1's protocol:

* objects report their locations at an average population rate ``lambda_u``
  (each object therefore reports every ``N_obj / lambda_u`` seconds on
  average -- 20 s at the paper's baseline);
* "the simulator keeps track of two conditions based on parameters T_fill
  and T_empty: the simulator ensures that the fraction of people at the
  ground level lies between T_fill and T_empty" -- an occupancy controller
  biases floor changes toward/away from the ground when the fraction drifts
  out of band;
* "before recording the simulation results, the simulator enters a warm-up
  phase, where at most N_rmax samples for each object are generated, or at
  least T_start of the population are in the ground level of buildings";
* after warm-up, each object's reports are recorded into a :class:`Trace`.

Time advances in ticks of the mean report interval; each object reports once
per tick at a jittered timestamp, which matches the aggregate rate while
keeping per-object trails strictly time-ordered.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.citysim.city import City
from repro.citysim.mobility import MobilityModel, MovingObject
from repro.citysim.trace import Trace
from repro.core.params import SimulationParams


class CitySimulator:
    """Drives a population of :class:`MovingObject` over a :class:`City`."""

    def __init__(
        self,
        city: City,
        params: Optional[SimulationParams] = None,
        n_objects: Optional[int] = None,
        seed: int = 0,
        dwell_mean: float = 900.0,
        report_interval: Optional[float] = None,
        model: Optional[object] = None,
    ) -> None:
        self.city = city
        self.params = params if params is not None else SimulationParams()
        self.n_objects = n_objects if n_objects is not None else self.params.n_objects
        if self.n_objects <= 0:
            raise ValueError("n_objects must be positive")
        self.rng = random.Random(seed)
        #: The mobility model; defaults to the paper-shaped dwell/travel
        #: model, overridable with the alternatives in
        #: :mod:`repro.citysim.models` for robustness studies.
        self.model = (
            model if model is not None else MobilityModel(city, self.rng, dwell_mean=dwell_mean)
        )
        #: Mean seconds between reports of one object.  Experiments that scale
        #: the population down keep the paper's 20 s by passing it explicitly.
        self.report_interval = (
            report_interval
            if report_interval is not None
            else self.params.report_interval
        )
        self.clock = 0.0
        self.objects: List[MovingObject] = [
            self.model.spawn(oid, self.clock) for oid in range(self.n_objects)
        ]
        self.warmup_ticks = 0

    # -- occupancy control ----------------------------------------------------

    def ground_fraction(self) -> float:
        at_ground = sum(1 for obj in self.objects if obj.at_ground_level)
        return at_ground / len(self.objects)

    def _steer_occupancy(self) -> None:
        fraction = self.ground_fraction()
        if fraction < self.params.t_fill:
            self.model.ground_bias = 1
        elif fraction > self.params.t_empty:
            self.model.ground_bias = -1
        else:
            self.model.ground_bias = 0

    # -- stepping ---------------------------------------------------------------

    def _tick(self, trace: Optional[Trace]) -> None:
        """Advance every object by one report interval; record if asked."""
        dt = self.report_interval
        self.clock += dt
        self._steer_occupancy()
        for obj in self.objects:
            self.model.step(obj, self.clock, dt)
            if trace is not None:
                jitter = self.rng.uniform(0.0, dt)
                trace.add(obj.oid, obj.position, self.clock + jitter - dt)

    def warm_up(self) -> int:
        """Run unrecorded ticks until the ground-level population reaches
        ``T_start`` or ``N_rmax`` samples have been skipped; returns ticks run."""
        ticks = 0
        while ticks < self.params.n_warmup_max:
            if ticks > 0 and self.ground_fraction() >= self.params.t_start:
                break
            self._tick(trace=None)
            ticks += 1
        self.warmup_ticks = ticks
        return ticks

    def run(
        self,
        n_samples: Optional[int] = None,
        warm_up: bool = True,
    ) -> Trace:
        """Simulate and record ``n_samples`` reports per object.

        Defaults to ``N_hist + N_update`` samples, the paper's trace length.
        """
        if n_samples is None:
            n_samples = self.params.n_history + self.params.n_updates
        if n_samples < 0:
            raise ValueError("n_samples must be non-negative")
        if warm_up:
            self.warm_up()
        trace = Trace()
        for _ in range(n_samples):
            self._tick(trace)
        return trace

    def continue_in(self, city: City) -> None:
        """Switch the simulation to a changed city plan (Figure 13).

        Objects keep their positions; dwellers whose building was demolished
        are sent on a trip immediately, and all future destinations come from
        the new plan.
        """
        self.city = city
        self.model.city = city
        if not hasattr(self.model, "_start_trip"):
            return  # building-agnostic models need no evictions
        surviving = {b.rect for b in city.buildings}
        for obj in self.objects:
            if obj.building is not None and obj.building.rect not in surviving:
                # Evicted (or en route to a demolished building): pick a new
                # destination in the new plan right away.
                self.model._start_trip(obj, self.clock)

    def __repr__(self) -> str:
        return (
            f"CitySimulator(objects={self.n_objects}, clock={self.clock:.0f}s, "
            f"ground={self.ground_fraction():.2f})"
        )
