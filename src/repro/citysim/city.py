"""City map generation: buildings, roads, intersections, a park.

The default composition mirrors the sample map shipped with City Simulator
2.0 ("a city containing 71 buildings, 48 roads, six road intersections and
one park").  Intersections form a grid; arterial roads join adjacent
intersections; every building gets an access road from its entrance to the
nearest intersection.  Routing runs over that road graph with Dijkstra
(networkx), so object trails between buildings follow plausible street
paths rather than straight lines.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import networkx as nx

from repro.core.geometry import Point, Rect


@dataclass
class Building:
    """A building footprint with a floor count and a street entrance."""

    id: int
    rect: Rect
    floors: int
    entrance: Point

    def random_point(self, rng: random.Random) -> Point:
        return (
            rng.uniform(self.rect.lo[0], self.rect.hi[0]),
            rng.uniform(self.rect.lo[1], self.rect.hi[1]),
        )


@dataclass
class Road:
    """One road segment between two waypoints."""

    id: int
    a: Point
    b: Point

    @property
    def length(self) -> float:
        return math.dist(self.a, self.b)


@dataclass
class City:
    """A generated city map plus its routing graph."""

    bounds: Rect
    buildings: List[Building]
    roads: List[Road]
    intersections: List[Point]
    park: Rect
    seed: int = 0
    _graph: Optional[nx.Graph] = field(default=None, repr=False, compare=False)

    # -- generation ----------------------------------------------------------

    @classmethod
    def generate(
        cls,
        seed: int = 0,
        n_buildings: int = 71,
        n_intersections: int = 6,
        size: float = 1000.0,
        building_side: Tuple[float, float] = (30.0, 60.0),
        max_floors: int = 8,
        park_side: float = 150.0,
    ) -> "City":
        """Generate a city with the paper's default composition.

        Buildings are rejection-sampled so footprints do not overlap each
        other, the park, or the arterial grid.
        """
        rng = random.Random(seed)
        bounds = Rect((0.0, 0.0), (size, size))

        intersections = cls._grid_intersections(n_intersections, size)
        park = cls._place_park(rng, size, park_side)

        buildings: List[Building] = []
        attempts = 0
        while len(buildings) < n_buildings and attempts < n_buildings * 300:
            attempts += 1
            side_x = rng.uniform(*building_side)
            side_y = rng.uniform(*building_side)
            x0 = rng.uniform(0.0, size - side_x)
            y0 = rng.uniform(0.0, size - side_y)
            rect = Rect((x0, y0), (x0 + side_x, y0 + side_y))
            inflated = rect.inflated(0.3)  # keep a margin between footprints
            if inflated.intersects(park):
                continue
            if any(inflated.intersects(b.rect) for b in buildings):
                continue
            entrance = cls._entrance_for(rect, intersections)
            buildings.append(
                Building(
                    id=len(buildings),
                    rect=rect,
                    floors=rng.randint(1, max_floors),
                    entrance=entrance,
                )
            )

        roads = cls._build_roads(intersections, buildings)
        return cls(
            bounds=bounds,
            buildings=buildings,
            roads=roads,
            intersections=intersections,
            park=park,
            seed=seed,
        )

    @staticmethod
    def _grid_intersections(n: int, size: float) -> List[Point]:
        """Lay ``n`` intersections on the most square grid that fits them."""
        cols = max(1, int(math.ceil(math.sqrt(n))))
        rows = max(1, int(math.ceil(n / cols)))
        points: List[Point] = []
        for r in range(rows):
            for c in range(cols):
                if len(points) >= n:
                    break
                points.append(
                    (size * (c + 1) / (cols + 1), size * (r + 1) / (rows + 1))
                )
        return points

    @staticmethod
    def _place_park(rng: random.Random, size: float, park_side: float) -> Rect:
        x0 = rng.uniform(0.0, size - park_side)
        y0 = rng.uniform(0.0, size - park_side)
        return Rect((x0, y0), (x0 + park_side, y0 + park_side))

    @staticmethod
    def _entrance_for(rect: Rect, intersections: Sequence[Point]) -> Point:
        """Entrance: midpoint of the facade facing the nearest intersection."""
        center = rect.center
        nearest = min(intersections, key=lambda p: math.dist(p, center))
        dx = nearest[0] - center[0]
        dy = nearest[1] - center[1]
        if abs(dx) >= abs(dy):
            x = rect.hi[0] if dx > 0 else rect.lo[0]
            return (x, center[1])
        y = rect.hi[1] if dy > 0 else rect.lo[1]
        return (center[0], y)

    @staticmethod
    def _build_roads(
        intersections: Sequence[Point], buildings: Sequence[Building]
    ) -> List[Road]:
        """Arterials between grid-adjacent intersections + one access road
        from each building entrance to its nearest intersection."""
        roads: List[Road] = []

        def add(a: Point, b: Point) -> None:
            roads.append(Road(id=len(roads), a=a, b=b))

        # Arterials: connect each intersection to its nearest neighbours on
        # the same row/column of the grid.
        for i, p in enumerate(intersections):
            for q in intersections[i + 1 :]:
                same_row = abs(p[1] - q[1]) < 1e-6
                same_col = abs(p[0] - q[0]) < 1e-6
                if not (same_row or same_col):
                    continue
                # Only adjacent pairs: no third intersection strictly between.
                blocked = any(
                    r not in (p, q)
                    and (
                        (same_row and abs(r[1] - p[1]) < 1e-6
                         and min(p[0], q[0]) < r[0] < max(p[0], q[0]))
                        or (same_col and abs(r[0] - p[0]) < 1e-6
                            and min(p[1], q[1]) < r[1] < max(p[1], q[1]))
                    )
                    for r in intersections
                )
                if not blocked:
                    add(p, q)

        for building in buildings:
            nearest = min(
                intersections, key=lambda p: math.dist(p, building.entrance)
            )
            add(building.entrance, nearest)
        return roads

    # -- routing ------------------------------------------------------------

    @property
    def graph(self) -> nx.Graph:
        if self._graph is None:
            graph = nx.Graph()
            for road in self.roads:
                graph.add_edge(road.a, road.b, weight=road.length)
            self._graph = graph
        return self._graph

    def route(self, src: Point, dst: Point) -> List[Point]:
        """Waypoints from ``src`` to ``dst`` via the road network.

        Endpoints hop onto the graph at their nearest road node; if the graph
        is disconnected between them, fall back to the direct segment.
        """
        nodes = list(self.graph.nodes)
        if not nodes:
            return [src, dst]
        enter = min(nodes, key=lambda p: math.dist(p, src))
        leave = min(nodes, key=lambda p: math.dist(p, dst))
        try:
            via = nx.shortest_path(self.graph, enter, leave, weight="weight")
        except nx.NetworkXNoPath:
            via = [enter, leave]
        waypoints: List[Point] = [src]
        waypoints.extend(p for p in via if p != src)
        if waypoints[-1] != dst:
            waypoints.append(dst)
        return waypoints

    # -- changing traffic patterns (Figure 13) ---------------------------------

    def with_changes(self, remove: int = 5, add: int = 5, seed: int = 1) -> "City":
        """A new city plan "with five buildings removed and five buildings
        created" (Appendix A.4): objects can no longer enter the demolished
        footprints but gain brand-new destinations, invalidating some
        qs-regions and creating others."""
        rng = random.Random(seed)
        survivors = list(self.buildings)
        rng.shuffle(survivors)
        survivors = survivors[: max(0, len(survivors) - remove)]

        size = self.bounds.hi[0]
        new_buildings = list(survivors)
        attempts = 0
        target = len(survivors) + add
        while len(new_buildings) < target and attempts < add * 500:
            attempts += 1
            side_x = rng.uniform(30.0, 60.0)
            side_y = rng.uniform(30.0, 60.0)
            x0 = rng.uniform(0.0, size - side_x)
            y0 = rng.uniform(0.0, size - side_y)
            rect = Rect((x0, y0), (x0 + side_x, y0 + side_y))
            inflated = rect.inflated(0.3)
            if inflated.intersects(self.park):
                continue
            if any(inflated.intersects(b.rect) for b in new_buildings):
                continue
            new_buildings.append(
                Building(
                    id=len(new_buildings),
                    rect=rect,
                    floors=rng.randint(1, 8),
                    entrance=self._entrance_for(rect, self.intersections),
                )
            )
        renumbered = [
            Building(id=i, rect=b.rect, floors=b.floors, entrance=b.entrance)
            for i, b in enumerate(new_buildings)
        ]
        return City(
            bounds=self.bounds,
            buildings=renumbered,
            roads=self._build_roads(self.intersections, renumbered),
            intersections=self.intersections,
            park=self.park,
            seed=seed,
        )

    def __repr__(self) -> str:
        return (
            f"City(buildings={len(self.buildings)}, roads={len(self.roads)}, "
            f"intersections={len(self.intersections)}, size={self.bounds.hi[0]:g})"
        )
