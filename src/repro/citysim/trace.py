"""Trace files: the simulator's output and the experiments' input.

"The simulator records the location updates of each object in a trace file,
which contains the timestamp of the update and the spatial coordinates of
the object at that time.  The trace file serves as the data source for our
experiments.  It captures, for each object, a total of N_hist + N_update
location updates.  We use the first N_hist updates as the history profile."
(Section 4.1.)

:class:`Trace` keeps per-object sample lists, slices them into
history/current/online-update phases, and supports the sample-skipping used
by Figure 8 ("to generate a slower update rate, some location samples are
skipped").
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Sequence, Tuple, Union

from repro.core.geometry import Point
from repro.core.qsregion import TrailSample


@dataclass(frozen=True)
class TraceRecord:
    """One location update: object ``oid`` was at ``point`` at time ``t``."""

    oid: int
    point: Point
    t: float


class Trace:
    """Per-object location histories, ordered by time."""

    def __init__(self) -> None:
        self._trails: Dict[int, List[TrailSample]] = {}

    # -- construction ------------------------------------------------------

    def add(self, oid: int, point: Point, t: float) -> None:
        trail = self._trails.setdefault(oid, [])
        if trail and t < trail[-1][1]:
            raise ValueError(
                f"object {oid}: sample at t={t} older than last t={trail[-1][1]}"
            )
        trail.append((tuple(point), float(t)))

    # -- access -------------------------------------------------------------

    @property
    def object_ids(self) -> List[int]:
        return sorted(self._trails.keys())

    def trail(self, oid: int) -> List[TrailSample]:
        return list(self._trails[oid])

    def sample_count(self, oid: int) -> int:
        return len(self._trails[oid])

    def min_samples(self) -> int:
        return min((len(t) for t in self._trails.values()), default=0)

    def __len__(self) -> int:
        return sum(len(t) for t in self._trails.values())

    def duration(self) -> float:
        start = min((t[0][1] for t in self._trails.values() if t), default=0.0)
        end = max((t[-1][1] for t in self._trails.values() if t), default=0.0)
        return end - start

    # -- experiment phases -----------------------------------------------------

    def histories(self, n_history: int) -> Dict[int, List[TrailSample]]:
        """The first ``n_history - 1`` samples per object: the mining input."""
        return {
            oid: trail[: max(0, n_history - 1)] for oid, trail in self._trails.items()
        }

    def current_positions(self, n_history: int) -> Dict[int, Point]:
        """The ``n_history``-th sample per object: the initial index load."""
        positions: Dict[int, Point] = {}
        for oid, trail in self._trails.items():
            index = min(n_history, len(trail)) - 1
            if index >= 0:
                positions[oid] = trail[index][0]
        return positions

    def load_time(self, n_history: int) -> float:
        """Timestamp of the initial index load: the latest ``n_history``-th
        sample across objects (the moment the current-position snapshot is
        complete).  0.0 for an empty trace."""
        latest = 0.0
        for trail in self._trails.values():
            index = min(n_history, len(trail)) - 1
            if index >= 0:
                latest = max(latest, trail[index][1])
        return latest

    def online_updates(self, n_history: int) -> Iterator[TraceRecord]:
        """Samples after the ``n_history``-th, merged across objects by time."""
        streams = []
        for oid, trail in self._trails.items():
            tail = trail[n_history:]
            if tail:
                # A list (not a generator) so ``oid`` is bound eagerly.
                streams.append([(t, oid, point) for point, t in tail])
        for t, oid, point in heapq.merge(*streams):
            yield TraceRecord(oid=oid, point=point, t=t)

    def online_span(self, n_history: int) -> Tuple[float, float]:
        """(first, last) timestamp of the online phase across all objects."""
        start = None
        end = None
        for trail in self._trails.values():
            tail = trail[n_history:]
            if not tail:
                continue
            if start is None or tail[0][1] < start:
                start = tail[0][1]
            if end is None or tail[-1][1] > end:
                end = tail[-1][1]
        if start is None or end is None:
            return (0.0, 0.0)
        return (start, end)

    def subsample(self, keep_every: int) -> "Trace":
        """Keep every ``keep_every``-th sample per object (Figure 8's rate knob)."""
        if keep_every < 1:
            raise ValueError("keep_every must be at least 1")
        thinned = Trace()
        for oid, trail in self._trails.items():
            for point, t in trail[::keep_every]:
                thinned.add(oid, point, t)
        return thinned

    def restricted_to(self, oids: Sequence[int]) -> "Trace":
        """A trace containing only the given objects (scalability sweeps)."""
        subset = Trace()
        wanted = set(oids)
        for oid, trail in self._trails.items():
            if oid in wanted:
                for point, t in trail:
                    subset.add(oid, point, t)
        return subset

    # -- persistence (the paper's "trace file") ------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Write as CSV lines ``oid,x,y,t`` ordered by object then time.

        The write goes through a sibling temp file + ``os.replace`` so an
        interrupted run (SIGINT mid-write, disk full) never leaves a torn
        half-trace behind at ``path``.
        """
        target = Path(path)
        tmp = target.with_name(target.name + ".tmp")
        try:
            with open(tmp, "w", encoding="ascii") as handle:
                handle.write("oid,x,y,t\n")
                for oid in self.object_ids:
                    for point, t in self._trails[oid]:
                        handle.write(f"{oid},{point[0]!r},{point[1]!r},{t!r}\n")
            os.replace(tmp, target)
        finally:
            tmp.unlink(missing_ok=True)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Trace":
        trace = cls()
        with open(path, "r", encoding="ascii") as handle:
            header = handle.readline()
            if header.strip() != "oid,x,y,t":
                raise ValueError(f"not a trace file: unexpected header {header!r}")
            for line in handle:
                oid_s, x_s, y_s, t_s = line.rstrip("\n").split(",")
                trace.add(int(oid_s), (float(x_s), float(y_s)), float(t_s))
        return trace

    def __repr__(self) -> str:
        return f"Trace(objects={len(self._trails)}, samples={len(self)})"
