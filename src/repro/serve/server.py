"""The asyncio serving daemon: bounded writer queue, admission, replicas.

Concurrency architecture (queue-based load leveling):

* The **event loop** owns all bookkeeping: it decodes frames, runs
  admission control, appends to the WAL, advances the acked-positions
  ledger, and enqueues write ops on a *bounded* ``asyncio.Queue``.  A full
  queue is an immediate ``RETRY_AFTER`` -- the queue bound, not client
  count, caps how much unapplied work the daemon ever holds.
* The **writer task** drains the queue in batches onto a single-thread
  executor; only that thread ever touches the primary index.  This is the
  same one-actor-per-structure ownership model the worker pool uses, so no
  index needs internal locking.
* **Replica reads** run on a separate reader pool against snapshot
  replicas (:mod:`repro.serve.replica`); they never wait on the writer, so
  a slow write burst cannot block reads beyond the queue bound.  ``fresh``
  reads opt into read-your-writes by quiescing the queue first and running
  on the writer executor.
* **Checkpoints** happen only at provable quiescent points: write intake
  is paused first (the ``checkpoint`` op sheds with ``RETRY_AFTER``, the
  drain with ``SHUTTING_DOWN``), the queue is joined until
  ``acked == applied`` holds, and the call then runs on the event loop
  with no ``await`` in between, so no handler can log a WAL record the
  checkpoint would falsely cover.

Crash model: an exception escaping the WAL-append/apply path (e.g. an
injected fault) aborts the daemon *without* drain or final checkpoint --
exactly a crash.  Recovery then replays the acked prefix, which is the
guarantee the log-before-ack ordering pays for.
"""

from __future__ import annotations

import asyncio
import signal
import threading
import time
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Dict, Optional, Set, Tuple

from concurrent.futures import ThreadPoolExecutor

from repro.obs import get_registry
from repro.obs.metrics import MetricsRegistry
from repro.serve.admission import AdmissionController
from repro.serve.protocol import (
    ERR_BAD_REQUEST,
    ERR_INTERNAL,
    ERR_RETRY_AFTER,
    ERR_SHUTTING_DOWN,
    ERR_UNSUPPORTED,
    ProtocolError,
    error_response,
    ok_response,
    read_frame,
    write_message,
)
from repro.serve.replica import ReplicaSet
from repro.serve.service import EngineService

#: Ops the protocol understands; anything else is ERR_UNSUPPORTED and its
#: latency is bucketed under ``serve.op.unknown`` so client-supplied op
#: strings cannot grow the metrics registry without bound.
KNOWN_OPS = frozenset(
    {"update", "batch_update", "range", "knn", "stats", "checkpoint", "shutdown"}
)


@dataclass
class ServeConfig:
    """Knobs of one daemon instance (see the CLI ``serve`` command)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port from ``address``
    queue_depth: int = 1024
    write_batch: int = 64
    rate: float = 0.0  # per-client admitted ops/s; 0 disables admission
    burst: float = 0.0  # bucket size; 0 = one second's worth
    replicas: int = 1
    refresh_interval: float = 0.25

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.write_batch < 1:
            raise ValueError("write_batch must be >= 1")
        if self.refresh_interval <= 0:
            raise ValueError("refresh_interval must be > 0")


class ServeServer:
    """One daemon instance around an :class:`EngineService`."""

    def __init__(
        self,
        service: EngineService,
        config: Optional[ServeConfig] = None,
        *,
        clock=time.monotonic,
    ) -> None:
        self.service = service
        self.config = config or ServeConfig()
        self._clock = clock
        self.admission = AdmissionController(
            self.config.rate, self.config.burst, clock=clock
        )
        self.replicas = ReplicaSet(
            self.config.replicas, service.domain, clock=clock
        )
        #: Always-on local metrics (latency summaries, counters) served by
        #: the ``stats`` op; mirrored into the global registry when the
        #: process enabled it (``--metrics-out`` style runs).
        self.metrics = MetricsRegistry(enabled=True)
        self.error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queue: Optional[asyncio.Queue] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._writer_task: Optional[asyncio.Task] = None
        self._replica_task: Optional[asyncio.Task] = None
        self._clients: Set[asyncio.StreamWriter] = set()
        self._client_seq = 0
        self._accepting = False
        self._checkpointing = False
        self._stopping = False
        self._stopped: Optional[asyncio.Future] = None
        self._started_at = 0.0

    # -- metrics helpers -------------------------------------------------

    def _count(self, name: str, value: int = 1) -> None:
        self.metrics.inc(name, value)
        registry = get_registry()
        if registry.enabled:
            registry.inc(name, value)

    def _observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)
        registry = get_registry()
        if registry.enabled:
            registry.observe(name, value)

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._queue = asyncio.Queue(maxsize=self.config.queue_depth)
        self._stopped = loop.create_future()
        self._writer_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-writer"
        )
        self._reader_pool = ThreadPoolExecutor(
            max_workers=max(2, self.config.replicas),
            thread_name_prefix="serve-reader",
        )
        if self.replicas.enabled:
            seq, doc, at = await loop.run_in_executor(
                self._writer_pool, self._fork
            )
            await loop.run_in_executor(
                self._reader_pool, self.replicas.install, doc, seq, at
            )
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        self._accepting = True
        self._started_at = self._clock()
        self._writer_task = loop.create_task(
            self._writer_loop(), name="serve-writer-loop"
        )
        if self.replicas.enabled:
            self._replica_task = loop.create_task(
                self._replica_loop(), name="serve-replica-loop"
            )

    @property
    def address(self) -> Tuple[str, int]:
        assert self._server is not None and self._server.sockets
        name = self._server.sockets[0].getsockname()
        return name[0], name[1]

    def install_signal_handlers(self) -> None:
        """SIGINT/SIGTERM -> graceful drain (daemon mode)."""
        assert self._loop is not None
        for signum in (signal.SIGINT, signal.SIGTERM):
            self._loop.add_signal_handler(signum, self.request_shutdown)

    def request_shutdown(self) -> None:
        """Begin a graceful drain; safe to call from loop callbacks."""
        assert self._loop is not None
        self._loop.create_task(self.shutdown())

    def request_shutdown_threadsafe(self) -> None:
        assert self._loop is not None
        self._loop.call_soon_threadsafe(self.request_shutdown)

    async def wait_stopped(self) -> None:
        assert self._stopped is not None
        await self._stopped

    async def shutdown(self) -> None:
        """Graceful drain: stop intake, drain the queue, checkpoint, stop.

        The final checkpoint runs on the event loop after ``queue.join()``
        with no intervening ``await``: the writer is idle, no handler can
        run, so the checkpoint's covered WAL seq equals the acked seq --
        nothing acked is left outside it.
        """
        if self._stopping:
            return
        self._stopping = True
        self._accepting = False
        assert self._queue is not None
        await self._queue.join()
        if self.error is None:
            try:
                self.service.checkpoint()
            except Exception as exc:  # crash during final checkpoint
                self.error = exc
            try:
                self.service.close_durability()
            except Exception:
                pass
        await self._stop()

    def _fatal(self, exc: BaseException) -> None:
        """Abort like a crash: no drain, no checkpoint, connections cut."""
        if self.error is not None:
            return
        self.error = exc
        self._accepting = False
        self._stopping = True
        self._count("serve.fatal")
        # Mark whatever is still queued as done so anything blocked on
        # queue.join() (a graceful drain racing this crash, a fresh read)
        # unblocks instead of hanging on ops that will never be applied.
        if self._queue is not None:
            while True:
                try:
                    self._queue.get_nowait()
                    self._queue.task_done()
                except asyncio.QueueEmpty:
                    break
        assert self._loop is not None
        self._loop.create_task(self._stop())

    async def _stop(self) -> None:
        if self._server is not None:
            self._server.close()
            try:
                await self._server.wait_closed()
            except Exception:
                pass
        for task in (self._writer_task, self._replica_task):
            if task is not None and not task.done():
                task.cancel()
        for writer in list(self._clients):
            try:
                writer.close()
            except Exception:
                pass
        self._writer_pool.shutdown(wait=True)
        self._reader_pool.shutdown(wait=True)
        if self._stopped is not None and not self._stopped.done():
            self._stopped.set_result(None)

    # -- background tasks ------------------------------------------------

    async def _writer_loop(self) -> None:
        assert self._queue is not None and self._loop is not None
        queue = self._queue
        while True:
            op = await queue.get()
            batch = [op]
            while len(batch) < self.config.write_batch:
                try:
                    batch.append(queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            t0 = perf_counter()
            try:
                # task_done for the claimed batch runs in the finally so a
                # crash-path cancellation mid-apply still releases anyone
                # blocked in queue.join() (graceful drains, fresh reads).
                try:
                    await self._loop.run_in_executor(
                        self._writer_pool, self.service.apply, batch
                    )
                except Exception as exc:
                    self._fatal(exc)
                    return
            finally:
                for _ in batch:
                    queue.task_done()
            self._observe("serve.writer.batch", float(len(batch)))
            self._observe("serve.writer.apply_s", perf_counter() - t0)
            if queue.empty():
                # Quiescent: queue drained and the writer thread idle.  No
                # await between the check and the checkpoint, so no handler
                # can interleave a WAL append the checkpoint would cover
                # without its op being applied.
                try:
                    self.service.maybe_checkpoint()
                except Exception as exc:
                    self._fatal(exc)
                    return

    def _fork(self) -> Tuple[int, Dict, float]:
        seq, doc = self.service.fork_document()
        return seq, doc, self._clock()

    async def _replica_loop(self) -> None:
        assert self._loop is not None
        while True:
            await asyncio.sleep(self.config.refresh_interval)
            if self.replicas.seq >= self.service.applied:
                continue  # nothing new applied since the last fork
            try:
                seq, doc, at = await self._loop.run_in_executor(
                    self._writer_pool, self._fork
                )
                await self._loop.run_in_executor(
                    self._reader_pool, self.replicas.install, doc, seq, at
                )
                self._count("serve.replica.refresh")
                self._observe(
                    "serve.replica.lag_ops",
                    float(max(0, self.service.applied - seq)),
                )
            except Exception as exc:
                self._fatal(exc)
                return

    # -- connection handling ---------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._client_seq += 1
        client_id = f"c{self._client_seq}"
        self._clients.add(writer)
        self._count("serve.conn.open")
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except ProtocolError:
                    # A partial frame (client died mid-send) or garbage:
                    # nothing was acked for it, drop the connection only.
                    self._count("serve.conn.broken")
                    return
                if frame is None:
                    return  # clean disconnect
                message, tag = frame
                op = message.get("op")
                rid = message.get("id")
                t0 = perf_counter()
                try:
                    response = await self._dispatch_op(op, message, client_id)
                except asyncio.CancelledError:
                    raise
                except Exception as exc:
                    # The write path (WAL append, ledger, apply) must not
                    # half-fail: treat any escape as a daemon crash so
                    # recovery semantics stay exact.
                    self._fatal(exc)
                    return
                op_name = op if op in KNOWN_OPS else "unknown"
                self._observe(
                    f"serve.op.{op_name}.latency_s", perf_counter() - t0
                )
                try:
                    await write_message(writer, self._with_id(response, rid), tag)
                except (ConnectionError, OSError):
                    self._count("serve.conn.broken")
                    return
                if op == "shutdown":
                    # Response flushed; now begin the drain.
                    self.request_shutdown()
        finally:
            self._clients.discard(writer)
            self.admission.forget(client_id)
            self._count("serve.conn.close")
            try:
                writer.close()
            except Exception:
                pass

    @staticmethod
    def _with_id(response: Dict[str, Any], rid: Any) -> Dict[str, Any]:
        if rid is not None:
            response["id"] = rid
        return response

    # -- op dispatch -----------------------------------------------------

    async def _dispatch_op(
        self, op: Any, message: Dict[str, Any], client_id: str
    ) -> Dict[str, Any]:
        if op == "update":
            return await self._op_update(message, client_id)
        if op == "batch_update":
            return await self._op_batch_update(message, client_id)
        if op == "range":
            return await self._op_range(message)
        if op == "knn":
            return await self._op_knn(message)
        if op == "stats":
            return ok_response(None, stats=self.stats_dict())
        if op == "checkpoint":
            return await self._op_checkpoint()
        if op == "shutdown":
            return ok_response(
                None, acked=self.service.acked, applied=self.service.applied
            )
        self._count("serve.op.unknown")
        return error_response(
            None, ERR_UNSUPPORTED, f"unknown op {op!r}"
        )

    @staticmethod
    def _parse_update(entry: Any) -> Tuple[int, Tuple[float, float], float]:
        oid, x, y, t = entry
        return int(oid), (float(x), float(y)), float(t)

    @staticmethod
    def _parse_stamp(message: Dict[str, Any]) -> Optional[Tuple[str, int]]:
        """The optional ``(client, rid)`` idempotency stamp, validated.

        Both fields or neither; the client name is the *client-chosen*
        identity (stable across reconnects -- the per-connection admission
        id is not), the rid a positive int.  Raises ``ValueError`` on a
        half-stamped or malformed request.
        """
        client, rid = message.get("client"), message.get("rid")
        if client is None and rid is None:
            return None
        if not isinstance(client, str) or not client or len(client) > 128:
            raise ValueError("idempotency stamp needs a client string (<=128)")
        if not isinstance(rid, int) or isinstance(rid, bool) or rid < 1:
            raise ValueError("idempotency stamp needs a positive integer rid")
        return client, rid

    def _dedup_response(self, hit) -> Dict[str, Any]:
        """Ack a replayed write with its original result, applying nothing."""
        self._count("serve.dedup.hit")
        fields: Dict[str, Any] = {"deduped": True, "accepted": hit.accepted}
        if hit.seq is not None:
            fields["seq"] = hit.seq
        return ok_response(None, **fields)

    def _admit_writes(
        self, client_id: str, cost: int
    ) -> Optional[Dict[str, Any]]:
        """Admission + queue-capacity gates; an error response, or None."""
        if not self._accepting:
            return error_response(
                None, ERR_SHUTTING_DOWN, "daemon is draining"
            )
        if cost > self.config.queue_depth:
            # Could never fit even an empty queue; RETRY_AFTER would be a
            # permanent livelock for a compliant client, so reject outright.
            self._count("serve.rejected.oversize")
            return error_response(
                None,
                ERR_BAD_REQUEST,
                f"batch of {cost} exceeds queue bound "
                f"{self.config.queue_depth}; split it",
            )
        if self._checkpointing:
            # Intake is paused so the checkpoint can reach a stable
            # acked == applied point; transient, so shed with RETRY_AFTER.
            self._count("serve.rejected.checkpoint")
            return error_response(
                None,
                ERR_RETRY_AFTER,
                "checkpoint in progress",
                retry_after=0.05,
            )
        admitted, wait = self.admission.admit(client_id, float(cost))
        if not admitted:
            self._count("serve.rejected.admission")
            return error_response(
                None,
                ERR_RETRY_AFTER,
                "admission rate exceeded",
                retry_after=wait,
            )
        assert self._queue is not None
        if self._queue.qsize() + cost > self.config.queue_depth:
            self._count("serve.rejected.queue_full")
            # Hint: one writer batch's worth of breathing room.
            return error_response(
                None,
                ERR_RETRY_AFTER,
                "writer queue is full",
                retry_after=0.05,
            )
        return None

    async def _op_update(
        self, message: Dict[str, Any], client_id: str
    ) -> Dict[str, Any]:
        try:
            oid, pos, t = self._parse_update(
                (message["oid"], *message["point"], message["t"])
            )
            stamp = self._parse_stamp(message)
        except (KeyError, TypeError, ValueError) as exc:
            return error_response(None, ERR_BAD_REQUEST, f"bad update: {exc}")
        if stamp is not None:
            # Replays dedup *before* every other gate: a retry of an
            # already-applied write must be acked, never shed or charged
            # against admission a second time.
            hit = self.service.dedup.check(*stamp)
            if hit is not None:
                return self._dedup_response(hit)
        rejection = self._admit_writes(client_id, 1)
        if rejection is not None:
            return rejection
        assert self._queue is not None
        # ack_update logs the WAL record; put_nowait cannot raise QueueFull
        # because capacity was checked above and nothing awaited since.
        if stamp is not None:
            op = self.service.ack_update(
                oid, pos, t, client=stamp[0], rid=stamp[1]
            )
            self.service.dedup.record(stamp[0], stamp[1], op[4])
        else:
            op = self.service.ack_update(oid, pos, t)
        self._queue.put_nowait(op)
        self._count("serve.accepted")
        self._observe("serve.queue.depth", float(self._queue.qsize()))
        return ok_response(None, seq=op[4], queued=self._queue.qsize())

    async def _op_batch_update(
        self, message: Dict[str, Any], client_id: str
    ) -> Dict[str, Any]:
        raw = message.get("updates")
        if not isinstance(raw, (list, tuple)) or not raw:
            return error_response(
                None, ERR_BAD_REQUEST, "batch_update needs a non-empty list"
            )
        try:
            updates = [self._parse_update(entry) for entry in raw]
            stamp = self._parse_stamp(message)
        except (TypeError, ValueError) as exc:
            return error_response(None, ERR_BAD_REQUEST, f"bad update: {exc}")
        if stamp is not None:
            # One stamp covers the whole batch (it was acked all-or-
            # nothing); the replay acks the original batch result.
            hit = self.service.dedup.check(*stamp)
            if hit is not None:
                return self._dedup_response(hit)
        rejection = self._admit_writes(client_id, len(updates))
        if rejection is not None:
            return rejection
        assert self._queue is not None
        client, rid = stamp if stamp is not None else (None, None)
        last_seq = 0
        for oid, pos, t in updates:
            op = self.service.ack_update(oid, pos, t, client=client, rid=rid)
            self._queue.put_nowait(op)
            last_seq = op[4]
        if stamp is not None:
            self.service.dedup.record(client, rid, last_seq, len(updates))
        self._count("serve.accepted", len(updates))
        self._observe("serve.queue.depth", float(self._queue.qsize()))
        return ok_response(
            None,
            accepted=len(updates),
            seq=last_seq,
            queued=self._queue.qsize(),
        )

    async def _quiesce(self) -> None:
        """Wait until every currently queued write has been applied."""
        assert self._queue is not None
        await self._queue.join()

    @staticmethod
    def _parse_rect(message: Dict[str, Any]):
        rect = message["rect"]
        (lx, ly), (hx, hy) = rect
        lo = (float(lx), float(ly))
        hi = (float(hx), float(hy))
        if lo[0] > hi[0] or lo[1] > hi[1]:
            raise ValueError("rect lo must not exceed hi")
        return lo, hi

    async def _op_range(self, message: Dict[str, Any]) -> Dict[str, Any]:
        try:
            lo, hi = self._parse_rect(message)
        except (KeyError, TypeError, ValueError) as exc:
            return error_response(None, ERR_BAD_REQUEST, f"bad range: {exc}")
        fresh = bool(message.get("fresh"))
        assert self._loop is not None
        try:
            if fresh or not self.replicas.ready:
                await self._quiesce()
                matches = await self._loop.run_in_executor(
                    self._writer_pool, self.service.query_range, lo, hi
                )
                staleness = None
            else:
                matches, staleness = await self._loop.run_in_executor(
                    self._reader_pool,
                    self.replicas.query_range,
                    lo,
                    hi,
                    self.service.applied,
                )
        except Exception as exc:
            self._count("serve.op.range.error")
            return error_response(None, ERR_INTERNAL, f"range failed: {exc}")
        return ok_response(
            None,
            matches=[[oid, list(pos)] for oid, pos in matches],
            staleness=staleness,
        )

    async def _op_knn(self, message: Dict[str, Any]) -> Dict[str, Any]:
        try:
            x, y = message["point"]
            point = (float(x), float(y))
            k = int(message.get("k", 1))
            if k < 1:
                raise ValueError("k must be >= 1")
        except (KeyError, TypeError, ValueError) as exc:
            return error_response(None, ERR_BAD_REQUEST, f"bad knn: {exc}")
        fresh = bool(message.get("fresh"))
        assert self._loop is not None
        try:
            if fresh or not self.replicas.ready:
                await self._quiesce()
                neighbors = await self._loop.run_in_executor(
                    self._writer_pool, self.service.query_knn, point, k
                )
                staleness = None
            else:
                neighbors, staleness = await self._loop.run_in_executor(
                    self._reader_pool,
                    self.replicas.query_knn,
                    point,
                    k,
                    self.service.applied,
                )
        except Exception as exc:
            self._count("serve.op.knn.error")
            return error_response(None, ERR_INTERNAL, f"knn failed: {exc}")
        return ok_response(
            None,
            neighbors=[
                [dist, oid, list(pos)] for dist, oid, pos in neighbors
            ],
            staleness=staleness,
        )

    async def _op_checkpoint(self) -> Dict[str, Any]:
        if self.service.durability is None:
            return error_response(
                None, ERR_UNSUPPORTED, "daemon runs without --wal-dir"
            )
        # Pause write intake first: queue.join() returning only means the
        # counter hit zero at some point -- other handler coroutines in the
        # ready queue can run ack_update (WAL append + enqueue) before this
        # coroutine is rescheduled, and a checkpoint taken then would cover
        # an acked-but-unapplied record.  With intake paused, re-join until
        # acked == applied holds on the loop with no await before the
        # checkpoint call; that state can no longer change under us.
        self._checkpointing = True
        try:
            await self._quiesce()
            while self.service.acked != self.service.applied:
                if self.error is not None or self._stopping:
                    # A fatal drain releases join() without applying, so
                    # acked == applied may never hold again.
                    return error_response(
                        None, ERR_SHUTTING_DOWN, "daemon is stopping"
                    )
                await self._quiesce()
            ordinal = self.service.checkpoint()
        finally:
            self._checkpointing = False
        self._count("serve.checkpoint")
        return ok_response(
            None, checkpoint=ordinal, covered_acked=self.service.acked
        )

    # -- introspection ---------------------------------------------------

    def stats_dict(self) -> Dict[str, Any]:
        assert self._queue is not None
        return {
            "server": {
                "accepting": self._accepting,
                "uptime_s": max(0.0, self._clock() - self._started_at),
                "clients": len(self._clients),
                "queue_depth": self._queue.qsize(),
                "queue_bound": self.config.queue_depth,
                "write_batch": self.config.write_batch,
            },
            "admission": self.admission.to_dict(),
            "replicas": self.replicas.to_dict(self.service.applied),
            "service": self.service.stats_dict(),
            "metrics": self.metrics.to_dict(),
        }


class ServerThread:
    """Run a :class:`ServeServer` on a background thread's event loop.

    The in-process harness for benches and tests: ``start()`` returns the
    bound address, ``shutdown()`` requests the graceful drain and joins.
    The daemon CLI does *not* use this -- it runs the loop on the main
    thread with real signal handlers.
    """

    def __init__(
        self, service: EngineService, config: Optional[ServeConfig] = None
    ) -> None:
        self._service = service
        self._config = config or ServeConfig()
        self.server: Optional[ServeServer] = None
        self._ready = threading.Event()
        self._start_error: Optional[BaseException] = None
        self._address: Optional[Tuple[str, int]] = None
        self._thread = threading.Thread(
            target=self._run, name="serve-daemon", daemon=True
        )

    def _run(self) -> None:
        asyncio.run(self._amain())

    async def _amain(self) -> None:
        server = ServeServer(self._service, self._config)
        self.server = server
        try:
            await server.start()
        except Exception as exc:
            self._start_error = exc
            self._ready.set()
            return
        self._address = server.address
        self._ready.set()
        await server.wait_stopped()

    def start(self, timeout: float = 30.0) -> Tuple[str, int]:
        self._thread.start()
        if not self._ready.wait(timeout):
            raise TimeoutError("daemon failed to start in time")
        if self._start_error is not None:
            raise RuntimeError("daemon failed to start") from self._start_error
        assert self._address is not None
        return self._address

    @property
    def error(self) -> Optional[BaseException]:
        if self._start_error is not None:
            return self._start_error
        return self.server.error if self.server is not None else None

    def alive(self) -> bool:
        return self._thread.is_alive()

    def shutdown(self, timeout: float = 30.0) -> None:
        if self._thread.is_alive() and self.server is not None:
            try:
                self.server.request_shutdown_threadsafe()
            except RuntimeError:
                pass  # loop already gone
        self.join(timeout)

    def join(self, timeout: float = 30.0) -> None:
        self._thread.join(timeout)
