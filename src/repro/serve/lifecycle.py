"""Unified graceful shutdown for the daemon *and* the batch CLI path.

The daemon drains on SIGTERM (``ServeServer.install_signal_handlers``);
before this module the batch commands simply died on the default handler,
leaking whatever was in flight: worker processes and their ``/dev/shm``
mailbox segments (``--parallel process``), a WAL tail past the last
checkpoint (``--wal-dir``), and any updates coalescing in the
``UpdateBuffer``.  :func:`handle_signals` converts SIGINT/SIGTERM into a
:class:`ShutdownRequested` exception raised at the next bytecode boundary
of the main thread, and :func:`teardown_run` performs the same drain the
daemon does -- flush the buffer, final checkpoint, close durability, close
the worker pool -- on both the success and the interrupted path.
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from typing import Iterator, List, Optional, Tuple


class ShutdownRequested(Exception):
    """SIGINT/SIGTERM arrived; unwind through the teardown path."""

    def __init__(self, signum: int) -> None:
        super().__init__(signal.Signals(signum).name)
        self.signum = signum


@contextmanager
def handle_signals(
    signums: Tuple[int, ...] = (signal.SIGINT, signal.SIGTERM),
) -> Iterator[None]:
    """Raise :class:`ShutdownRequested` in the main thread on delivery.

    Previous handlers are restored on exit, so nesting (and pytest's own
    SIGINT handling) keep working.  Off the main thread -- where
    ``signal.signal`` is illegal -- this is a no-op context.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _raise(signum: int, _frame) -> None:
        raise ShutdownRequested(signum)

    previous = {}
    try:
        for signum in signums:
            previous[signum] = signal.signal(signum, _raise)
        yield
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)


def teardown_run(
    *,
    index=None,
    buffer=None,
    durability=None,
    closer=None,
    checkpoint: bool = True,
) -> List[str]:
    """Drain + checkpoint + close; safe on both clean and interrupted exits.

    Every step is individually guarded (a teardown must never mask the
    original exception) and the performed steps are returned for the
    caller's messaging:

    * pending ``UpdateBuffer`` entries -- already WAL-logged and acked --
      are flushed into the index so the final checkpoint covers them;
    * an attached :class:`~repro.durability.DurabilityManager` takes a
      final checkpoint (the WAL tail past it is then empty, not torn) and
      closes its segment files;
    * ``closer.close()`` tears down worker processes/threads and unlinks
      their ``/dev/shm`` mailbox segments.
    """
    actions: List[str] = []
    flushed = True
    if buffer is not None and index is not None and len(buffer):
        try:
            buffer.flush(index, reason="final")
            actions.append("flushed buffer")
        except Exception:
            # The buffered records are WAL-logged and acked but did not
            # reach the index; a checkpoint now would cover (and truncate)
            # their WAL records while the snapshot lacks them.  Leave the
            # WAL tail intact so recovery replays them instead.
            flushed = False
            actions.append("buffer flush failed (wal tail kept)")
    if durability is not None and durability.attached:
        if checkpoint and flushed:
            try:
                durability.checkpoint()
                actions.append("checkpointed")
            except Exception:
                pass
        try:
            durability.close()
            actions.append("closed wal")
        except Exception:
            pass
    if closer is not None:
        try:
            closer.close()
            actions.append("closed workers")
        except Exception:
            pass
    return actions


def describe_teardown(actions: List[str], signame: Optional[str]) -> str:
    done = ", ".join(actions) if actions else "nothing pending"
    prefix = f"interrupted ({signame}): " if signame else ""
    return f"{prefix}clean shutdown -- {done}"
