"""Wire protocol for the ``repro.serve`` daemon.

Frames are length-prefixed: a 5-byte header -- ``!I`` payload length plus a
1-byte codec tag -- followed by the payload.  Two codecs speak the same
message shapes:

* ``json`` (tag ``J``) -- always available, the default.
* ``msgpack`` (tag ``M``) -- used only when the optional ``msgpack``
  package is importable; the daemon never requires it (the container may
  not ship it), it just decodes whichever tag a client sent and answers in
  kind.

Messages are flat dicts.  A request carries ``op`` plus op-specific fields
and an optional client-chosen ``id`` that the response echoes; a response
carries ``ok`` and either result fields or ``error``/``code``.  The one
load-bearing error code is ``RETRY_AFTER``: the daemon sheds load (token
bucket empty, or writer queue at its bound) by answering immediately with
``retry_after`` seconds instead of buffering without bound -- the client
backs off and retries (see :mod:`repro.serve.loadgen`).

Ops: ``update``, ``batch_update``, ``range``, ``knn``, ``stats``,
``checkpoint``, ``shutdown``.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

try:  # optional accelerator codec -- never required
    import msgpack as _msgpack  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover - exercised when msgpack is absent
    _msgpack = None

#: ``!I`` payload length + 1-byte codec tag.
_PREFIX = struct.Struct("!IB")
PREFIX_SIZE = _PREFIX.size

CODEC_JSON = ord("J")
CODEC_MSGPACK = ord("M")

#: Refuse frames past this size instead of trusting a 4-GiB length word
#: from a confused or hostile peer.
MAX_FRAME = 8 << 20

#: Error codes a response's ``code`` field may carry.
ERR_BAD_REQUEST = "BAD_REQUEST"
ERR_RETRY_AFTER = "RETRY_AFTER"
ERR_UNSUPPORTED = "UNSUPPORTED"
ERR_SHUTTING_DOWN = "SHUTTING_DOWN"
ERR_INTERNAL = "INTERNAL"

#: The request ops the daemon understands.
OPS = (
    "update",
    "batch_update",
    "range",
    "knn",
    "stats",
    "checkpoint",
    "shutdown",
)


class ProtocolError(ValueError):
    """A frame or message violated the wire contract."""


def codecs_available() -> Tuple[str, ...]:
    """The codec names this process can encode/decode."""
    return ("json", "msgpack") if _msgpack is not None else ("json",)


def codec_tag(codec: str) -> int:
    if codec == "json":
        return CODEC_JSON
    if codec == "msgpack":
        if _msgpack is None:
            raise ProtocolError(
                "msgpack codec requested but the msgpack package is not "
                "installed; use codec='json'"
            )
        return CODEC_MSGPACK
    raise ProtocolError(f"unknown codec {codec!r}; choose json or msgpack")


def encode_payload(message: Dict[str, Any], tag: int) -> bytes:
    if tag == CODEC_JSON:
        return json.dumps(message, separators=(",", ":")).encode("utf-8")
    if tag == CODEC_MSGPACK:
        if _msgpack is None:
            raise ProtocolError("msgpack codec unavailable")
        return _msgpack.packb(message, use_bin_type=True)
    raise ProtocolError(f"unknown codec tag {tag!r}")


def decode_payload(payload: bytes, tag: int) -> Dict[str, Any]:
    try:
        if tag == CODEC_JSON:
            message = json.loads(payload.decode("utf-8"))
        elif tag == CODEC_MSGPACK:
            if _msgpack is None:
                raise ProtocolError(
                    "peer sent a msgpack frame but the msgpack package is "
                    "not installed here"
                )
            message = _msgpack.unpackb(payload, raw=False)
        else:
            raise ProtocolError(f"unknown codec tag {tag!r}")
    except ProtocolError:
        raise
    except Exception as exc:
        raise ProtocolError(f"undecodable payload: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("message must be a mapping")
    return message


def pack_frame(message: Dict[str, Any], codec: str = "json") -> bytes:
    tag = codec_tag(codec)
    payload = encode_payload(message, tag)
    if len(payload) > MAX_FRAME:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds MAX_FRAME")
    return _PREFIX.pack(len(payload), tag) + payload


def unpack_prefix(prefix: bytes) -> Tuple[int, int]:
    """-> (payload length, codec tag); validates the length bound."""
    length, tag = _PREFIX.unpack(prefix)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame of {length} bytes exceeds MAX_FRAME")
    return length, tag


# -- asyncio side (daemon) ----------------------------------------------------


async def read_frame(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[Dict[str, Any], int]]:
    """Read one frame -> (message, codec tag); ``None`` on clean EOF.

    EOF *inside* a frame (a client that died mid-send) raises
    :class:`ProtocolError` so the handler can count it as a broken
    connection rather than a clean close.
    """
    try:
        prefix = await reader.readexactly(PREFIX_SIZE)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between frames
        raise ProtocolError("connection closed mid-prefix") from None
    length, tag = unpack_prefix(prefix)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-frame") from None
    return decode_payload(payload, tag), tag


async def write_message(
    writer: asyncio.StreamWriter, message: Dict[str, Any], tag: int
) -> None:
    payload = encode_payload(message, tag)
    writer.write(_PREFIX.pack(len(payload), tag) + payload)
    await writer.drain()


def ok_response(rid: Optional[int], **fields: Any) -> Dict[str, Any]:
    response: Dict[str, Any] = {"ok": True, **fields}
    if rid is not None:
        response["id"] = rid
    return response


def error_response(
    rid: Optional[int], code: str, message: str, **fields: Any
) -> Dict[str, Any]:
    response: Dict[str, Any] = {
        "ok": False,
        "code": code,
        "error": message,
        **fields,
    }
    if rid is not None:
        response["id"] = rid
    return response


# -- blocking client (loadgen, CLI, tests) ------------------------------------


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    chunks: List[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("server closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class ServeError(RuntimeError):
    """A non-``ok`` response the client chose not to tolerate."""

    def __init__(self, response: Dict[str, Any]) -> None:
        super().__init__(
            f"{response.get('code', 'ERROR')}: {response.get('error', '?')}"
        )
        self.response = response
        self.code = response.get("code")


class ServeClient:
    """Blocking request/response client for one daemon connection."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        codec: str = "json",
        timeout: float = 30.0,
    ) -> None:
        self.codec = codec
        codec_tag(codec)  # fail fast on an unavailable codec
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._next_id = 0

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # Raw frame I/O: exposed so tests can send malformed/partial frames.

    def send_raw(self, data: bytes) -> None:
        self._sock.sendall(data)

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request and correlate its response by ``id``.

        Any failure that can leave the stream desynchronized -- a timeout
        or reset mid-frame (the next read would start inside a stale
        payload), or a response whose ``id`` is not the one just sent (a
        late reply to an earlier, abandoned request) -- closes the socket
        before raising: this connection must not be reused.
        """
        self._next_id += 1
        rid = self._next_id
        message = {"op": op, "id": rid, **fields}
        try:
            self._sock.sendall(pack_frame(message, self.codec))
            prefix = _recv_exactly(self._sock, PREFIX_SIZE)
            length, tag = unpack_prefix(prefix)
            response = decode_payload(_recv_exactly(self._sock, length), tag)
        except (OSError, ProtocolError):
            # OSError covers ConnectionError and socket timeouts; either
            # way the frame boundary is lost.
            self.close()
            raise
        got = response.get("id")
        if got != rid:
            self.close()
            raise ProtocolError(
                f"response id {got!r} does not match request id {rid}; "
                "closing the desynced connection"
            )
        return response

    def _checked(self, response: Dict[str, Any]) -> Dict[str, Any]:
        if not response.get("ok"):
            raise ServeError(response)
        return response

    # Convenience wrappers -- one per protocol op.

    def update(self, oid: int, point: Sequence[float], t: float) -> Dict[str, Any]:
        return self.request("update", oid=oid, point=list(point), t=t)

    def batch_update(
        self, updates: Iterable[Sequence[float]]
    ) -> Dict[str, Any]:
        return self.request(
            "batch_update", updates=[list(u) for u in updates]
        )

    def range(
        self,
        lo: Sequence[float],
        hi: Sequence[float],
        *,
        fresh: bool = False,
    ) -> Dict[str, Any]:
        return self._checked(
            self.request("range", rect=[list(lo), list(hi)], fresh=fresh)
        )

    def knn(
        self, point: Sequence[float], k: int = 1, *, fresh: bool = False
    ) -> Dict[str, Any]:
        return self._checked(
            self.request("knn", point=list(point), k=k, fresh=fresh)
        )

    def stats(self) -> Dict[str, Any]:
        return self._checked(self.request("stats"))["stats"]

    def checkpoint(self) -> Dict[str, Any]:
        return self._checked(self.request("checkpoint"))

    def shutdown(self) -> Dict[str, Any]:
        return self._checked(self.request("shutdown"))
