"""Per-client token-bucket admission control.

The daemon's writer queue is bounded (queue-based load leveling); admission
control keeps one aggressive client from consuming the whole bound.  Each
client connection gets a token bucket refilled at ``rate`` tokens/second up
to ``burst``; a write op costs one token per update.  An empty bucket does
*not* queue the request -- the daemon answers ``RETRY_AFTER`` with the
seconds until the bucket can cover the cost, and the client backs off.
Rejecting explicitly is the point: the alternative (buffering without
bound) turns overload into unbounded latency and an eventual OOM, invisible
to the client until it is too late to shed anything.

``rate <= 0`` disables admission control (every op admitted), which is the
default for trusted single-tenant use and for the parity benches.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Tuple


class TokenBucket:
    """A standard token bucket: refill continuously, spend on admit."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated = now

    def try_acquire(self, cost: float, now: float) -> float:
        """Spend ``cost`` tokens -> 0.0, or the seconds until it could."""
        if now > self.updated:
            self.tokens = min(
                self.burst, self.tokens + (now - self.updated) * self.rate
            )
            self.updated = now
        if self.tokens >= cost:
            self.tokens -= cost
            return 0.0
        return (cost - self.tokens) / self.rate


class AdmissionController:
    """One token bucket per client id, plus shed/admit accounting."""

    def __init__(
        self,
        rate: float = 0.0,
        burst: float = 0.0,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = rate
        #: A zero/negative burst defaults to one second's worth of tokens
        #: (never below 1, or a single op could never be admitted).
        self.burst = burst if burst > 0 else max(rate, 1.0)
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self.admitted = 0
        self.rejected = 0

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def admit(self, client_id: str, cost: float = 1.0) -> Tuple[bool, float]:
        """-> (admitted, retry_after_seconds)."""
        if not self.enabled:
            self.admitted += 1
            return True, 0.0
        now = self._clock()
        bucket = self._buckets.get(client_id)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, now)
            self._buckets[client_id] = bucket
        wait = bucket.try_acquire(cost, now)
        if wait <= 0.0:
            self.admitted += 1
            return True, 0.0
        self.rejected += 1
        return False, wait

    def forget(self, client_id: str) -> None:
        """Drop a disconnected client's bucket."""
        self._buckets.pop(client_id, None)

    def to_dict(self) -> Dict[str, object]:
        return {
            "enabled": self.enabled,
            "rate": self.rate,
            "burst": self.burst,
            "clients": len(self._buckets),
            "admitted": self.admitted,
            "rejected": self.rejected,
        }
