"""Snapshot read replicas: read scaling with bounded, *reported* staleness.

The daemon's primary index is owned by a single writer thread; serving
every read through it would serialize reads behind writes.  Instead the
replica loop periodically forks the primary -- ``build_document`` at a
quiescent point on the writer executor (the same in-memory document the
generic ``save_index``/``load_index`` snapshots write to disk), then
``load_document`` once per replica off the writer path -- and swaps the
fresh read-only copies in atomically.  Readers that already picked an old
replica finish on it; nothing blocks on the swap.

Staleness is bounded by the refresh interval and *reported*, never hidden:
every replica-served response carries ``{"seq", "lag_ops", "age_s"}`` so a
client can tell exactly how far behind the answer may be, and can ask for
``fresh: true`` (a primary read serialized after the queued writes) when
it needs read-your-writes.

Each replica guards its index with a lock: reads are not structurally pure
here (the lazy R-tree family purges lazy-deleted entries *during* a range
search), so two executor threads must not walk the same replica
concurrently.  Scaling reads means more replicas, not more threads per
replica.
"""

from __future__ import annotations

import itertools
import math
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.geometry import Point, Rect
from repro.storage.snapshot import load_document

#: kNN result entry: (distance, object id, position) -- the same shape
#: ``RTree.nearest`` returns.
Neighbor = Tuple[float, int, Point]


def knn_search(index, point: Sequence[float], k: int, domain: Rect) -> List[Neighbor]:
    """k nearest objects as (distance, id, point), nearest first.

    Uses the index's own best-first ``nearest`` when it has one (R-tree,
    CT-R-tree); otherwise falls back to an expanding-window search over
    ``range_search``, which every index kind and both shard routers
    support.  The window doubles until it either holds ``k`` objects whose
    true distance fits inside it (circle-in-square: those are guaranteed
    complete) or covers the whole domain (then all objects are candidates).
    Fallback ties break by object id.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    target = tuple(float(c) for c in point)
    nearest = getattr(index, "nearest", None)
    if nearest is not None:
        return [tuple(entry) for entry in nearest(target, k=k)]
    extent = max(
        (hi - lo for lo, hi in zip(domain.lo, domain.hi)), default=1.0
    )
    radius = max(extent / 32.0, 1e-9)
    while True:
        lo = tuple(c - radius for c in target)
        hi = tuple(c + radius for c in target)
        covers = all(
            wlo <= dlo and whi >= dhi
            for wlo, whi, dlo, dhi in zip(lo, hi, domain.lo, domain.hi)
        )
        matches = index.range_search(Rect(lo, hi))
        found = [
            (math.dist(target, pos), oid, pos) for oid, pos in matches
        ]
        if covers:
            found.sort(key=lambda e: (e[0], e[1]))
            return found[:k]
        complete = [entry for entry in found if entry[0] <= radius]
        if len(complete) >= k:
            complete.sort(key=lambda e: (e[0], e[1]))
            return complete[:k]
        radius *= 2.0


class SnapshotReplica:
    """One read-only copy of the primary at a known sequence number."""

    __slots__ = ("index", "lock", "seq", "built_at", "reads")

    def __init__(self, index, seq: int, built_at: float) -> None:
        self.index = index
        self.lock = threading.Lock()
        self.seq = seq
        self.built_at = built_at
        self.reads = 0


class ReplicaSet:
    """The daemon's rotating pool of snapshot replicas."""

    def __init__(
        self,
        n_replicas: int,
        domain: Rect,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.n_replicas = max(0, n_replicas)
        self.domain = domain
        self._clock = clock
        self._replicas: List[SnapshotReplica] = []
        self._rr = itertools.count()
        self.refreshes = 0

    @property
    def enabled(self) -> bool:
        return self.n_replicas > 0

    @property
    def ready(self) -> bool:
        return bool(self._replicas)

    @property
    def seq(self) -> int:
        """Sequence number the current replica generation was forked at."""
        return self._replicas[0].seq if self._replicas else -1

    def install(
        self, document: Dict, seq: int, built_at: Optional[float] = None
    ) -> None:
        """Load ``document`` into a fresh replica generation and cut over.

        The swap is a single reference assignment: in-flight reads finish
        on the generation they picked, new reads see the fresh one.
        """
        if not self.enabled:
            return
        at = built_at if built_at is not None else self._clock()
        fresh = [
            SnapshotReplica(load_document(document), seq, at)
            for _ in range(self.n_replicas)
        ]
        self._replicas = fresh
        self.refreshes += 1

    def _pick(self) -> SnapshotReplica:
        replicas = self._replicas
        if not replicas:
            raise RuntimeError("no replica installed yet")
        return replicas[next(self._rr) % len(replicas)]

    def staleness_of(
        self, replica: SnapshotReplica, applied_seq: int
    ) -> Dict[str, float]:
        return {
            "seq": replica.seq,
            "lag_ops": max(0, applied_seq - replica.seq),
            "age_s": max(0.0, self._clock() - replica.built_at),
        }

    def query_range(
        self, lo: Sequence[float], hi: Sequence[float], applied_seq: int
    ) -> Tuple[List[Tuple[int, Point]], Dict[str, float]]:
        replica = self._pick()
        with replica.lock:
            replica.reads += 1
            matches = replica.index.range_search(Rect(lo, hi))
        return matches, self.staleness_of(replica, applied_seq)

    def query_knn(
        self, point: Sequence[float], k: int, applied_seq: int
    ) -> Tuple[List[Neighbor], Dict[str, float]]:
        replica = self._pick()
        with replica.lock:
            replica.reads += 1
            neighbors = knn_search(replica.index, point, k, self.domain)
        return neighbors, self.staleness_of(replica, applied_seq)

    def to_dict(self, applied_seq: int) -> Dict[str, object]:
        out: Dict[str, object] = {
            "n_replicas": self.n_replicas,
            "refreshes": self.refreshes,
            "ready": self.ready,
        }
        if self._replicas:
            head = self._replicas[0]
            out.update(self.staleness_of(head, applied_seq))
            out["reads"] = sum(r.reads for r in self._replicas)
        return out
