"""In-process serve benchmarking: boot daemon, replay trace, check parity.

This is the engine behind ``repro bench-serve`` and the BENCH ``serve``
section: for each client count it boots a fresh daemon (in-process, on a
background event loop), replays the trace's online window through the
multi-process load generator, then runs the acceptance checks that make
the numbers trustworthy:

* **result parity** -- after the drain, a deterministic grid query sweep
  through the daemon (``fresh`` reads) must be *identical* to the same
  sweep over an inline index that applied the same trace in timeline
  order.  Per-object update order is preserved by the loadgen's
  oid-partitioning, so the final states must match exactly no matter how
  the concurrent clients interleaved.
* **verify clean** -- ``verify_index`` over the primary after the graceful
  drain must report zero violations.

Latency percentiles come from the loadgen's raw samples (nearest-rank);
sustained ops/sec is acked ops over loadgen wall time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.citysim import Trace
from repro.core.geometry import Rect
from repro.engine import ShardedIndex
from repro.health import verify_index
from repro.serve.loadgen import Op, build_ops, run_loadgen
from repro.serve.protocol import ServeClient
from repro.serve.server import ServeConfig, ServerThread
from repro.serve.service import EngineService
from repro.storage import Pager
from repro.workload import IndexKind, make_index

#: One sweep cell's canonical result: sorted (oid, (x, y)) tuples.
SweepCell = List[Tuple[int, Tuple[float, float]]]


def build_primary(
    kind: str,
    domain: Rect,
    *,
    histories=None,
    query_rate: float = 50.0,
    shards: int = 1,
):
    """Construct the index + store exactly as the daemon and the inline
    reference both must (identical construction => comparable results)."""
    if shards > 1:
        index = ShardedIndex(
            kind,
            domain,
            shards,
            histories=histories if kind == IndexKind.CT else None,
            query_rate=query_rate,
        )
        return index, index.pager
    pager = Pager()
    index = make_index(
        kind,
        pager,
        domain,
        histories=histories if kind == IndexKind.CT else None,
        query_rate=query_rate,
    )
    return index, pager


def sweep_cells(domain: Rect, n: int = 8) -> List[Tuple[Tuple[float, float], Tuple[float, float]]]:
    """An n x n grid of query rectangles tiling the domain."""
    (dlx, dly), (dhx, dhy) = domain.lo, domain.hi
    wx = (dhx - dlx) / n
    wy = (dhy - dly) / n
    cells = []
    for i in range(n):
        for j in range(n):
            cells.append(
                (
                    (dlx + i * wx, dly + j * wy),
                    (dlx + (i + 1) * wx, dly + (j + 1) * wy),
                )
            )
    return cells


def _canonical(matches) -> SweepCell:
    return sorted(
        (int(oid), (float(pos[0]), float(pos[1]))) for oid, pos in matches
    )


def sweep_index(index, domain: Rect, n: int = 8) -> List[SweepCell]:
    return [
        _canonical(index.range_search(Rect(lo, hi)))
        for lo, hi in sweep_cells(domain, n)
    ]


def sweep_server(
    host: str, port: int, domain: Rect, n: int = 8, *, codec: str = "json"
) -> List[SweepCell]:
    with ServeClient(host, port, codec=codec) as client:
        return [
            _canonical(
                (m[0], (m[1][0], m[1][1]))
                for m in client.range(lo, hi, fresh=True)["matches"]
            )
            for lo, hi in sweep_cells(domain, n)
        ]


def inline_reference(
    kind: str,
    domain: Rect,
    positions,
    ops: Sequence[Op],
    *,
    histories=None,
    query_rate: float = 50.0,
    load_time: Optional[float] = None,
    shards: int = 1,
):
    """Apply the ops timeline inline (single actor, timeline order)."""
    index, _store = build_primary(
        kind,
        domain,
        histories=histories,
        query_rate=query_rate,
        shards=shards,
    )
    ledger: Dict[int, Tuple[float, float]] = {}
    for oid, point in positions.items():
        pos = (float(point[0]), float(point[1]))
        index.insert(oid, pos, now=load_time)
        ledger[oid] = pos
    for op in ops:
        if op[0] != "update":
            continue
        oid, x, y, t = op[1], op[2], op[3], op[4]
        old = ledger.get(oid)
        if old is None:
            index.insert(oid, (x, y), now=t)
        else:
            index.update(oid, old, (x, y), now=t)
        ledger[oid] = (x, y)
    return index


def run_serve_bench(
    trace: Trace,
    n_history: int,
    domain: Rect,
    *,
    kind: str = IndexKind.LAZY,
    client_counts: Sequence[int] = (1, 8, 32),
    queue_depth: int = 1024,
    write_batch: int = 64,
    rate: float = 0.0,
    replicas: int = 1,
    refresh_interval: float = 0.25,
    shards: int = 1,
    query_ratio: float = 100.0,
    seed: int = 0,
    loadgen_mode: str = "process",
    sweep_n: int = 8,
) -> Dict[str, object]:
    """The BENCH ``serve`` section: one run per client count + parity."""
    histories = trace.histories(n_history) if kind == IndexKind.CT else None
    positions = trace.current_positions(n_history)
    load_time = trace.load_time(n_history)
    ops = build_ops(
        trace, n_history, domain, query_ratio=query_ratio, seed=seed
    )
    reference = inline_reference(
        kind,
        domain,
        positions,
        ops,
        histories=histories,
        load_time=load_time,
        shards=shards,
    )
    expected_sweep = sweep_index(reference, domain, sweep_n)
    runs: List[Dict[str, object]] = []
    parity_all = True
    verify_all = True
    for n_clients in client_counts:
        index, store = build_primary(
            kind, domain, histories=histories, shards=shards
        )
        service = EngineService(index, store, kind, domain)
        service.load(positions, now=load_time)
        daemon = ServerThread(
            service,
            ServeConfig(
                queue_depth=queue_depth,
                write_batch=write_batch,
                rate=rate,
                replicas=replicas,
                refresh_interval=refresh_interval,
            ),
        )
        host, port = daemon.start()
        try:
            result = run_loadgen(
                host, port, ops, n_clients=n_clients, mode=loadgen_mode
            )
            served_sweep = sweep_server(host, port, domain, sweep_n)
        finally:
            daemon.shutdown()
        if daemon.error is not None:
            raise RuntimeError(
                f"daemon failed at {n_clients} clients"
            ) from daemon.error
        identical = served_sweep == expected_sweep
        report = verify_index(service.index, kind=kind)
        parity_all = parity_all and identical
        verify_all = verify_all and report.ok
        result.update(
            {
                "parity": identical,
                "verify_ok": report.ok,
                "acked_seq": service.acked,
                "applied_seq": service.applied,
            }
        )
        runs.append(result)
    n_updates = sum(1 for op in ops if op[0] == "update")
    return {
        "kind": kind,
        "n_updates": n_updates,
        "n_queries": len(ops) - n_updates,
        "queue_depth": queue_depth,
        "write_batch": write_batch,
        "rate": rate,
        "replicas": replicas,
        "refresh_interval": refresh_interval,
        "shards": shards,
        "loadgen_mode": loadgen_mode,
        "client_counts": list(client_counts),
        "sweep_cells": sweep_n * sweep_n,
        "parity": parity_all,
        "verify_ok": verify_all,
        "runs": runs,
    }


def format_serve_table(section: Dict[str, object]) -> str:
    """Human-readable summary of a ``run_serve_bench`` section."""
    lines = [
        f"{'clients':>8} {'ops/s':>10} {'p50 ms':>8} {'p99 ms':>8} "
        f"{'max ms':>8} {'rejects':>8} {'parity':>7}"
    ]
    for run in section["runs"]:  # type: ignore[union-attr]
        lat = run["latency"]["all"]
        lines.append(
            f"{run['n_clients']:>8} {run['ops_per_s']:>10.1f} "
            f"{lat.get('p50_ms', float('nan')):>8.2f} "
            f"{lat.get('p99_ms', float('nan')):>8.2f} "
            f"{lat.get('max_ms', float('nan')):>8.2f} "
            f"{run['rejected']:>8} "
            f"{'ok' if run['parity'] else 'FAIL':>7}"
        )
    return "\n".join(lines)
