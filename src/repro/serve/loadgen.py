"""Multi-process client load generator for the serving daemon.

Replays a citysim trace's online window against a running daemon: the
trace's updates and a deterministic :class:`~repro.workload.QueryWorkload`
are merged into one timeline, partitioned across N client processes --
updates by ``oid % N`` so each object's update order is preserved by its
one owning client, queries round-robin -- and each client plays its slice
as fast as the daemon admits it, recording one end-to-end latency sample
per op (retries included: the client-observed latency is the number that
matters under load shedding).

Each client is a :class:`~repro.resilience.ResilientServeClient`: writes
carry ``(client_id, rid)`` idempotency stamps, a ``RETRY_AFTER`` response
is retried after a capped *full-jitter* backoff (the server's hint raises
the jitter ceiling, it never becomes a lockstep sleep -- N clients
sleeping exactly ``retry_after`` re-arrive as the same thundering herd
that was just shed), and connection loss reconnects transparently.  A
logical op that exhausts its retries or its deadline is dropped and said
so; acks are split into first-try and retried so shed-and-recover
behaviour is visible in the report.  p50/p99/max are computed here from
the raw samples by nearest-rank (the obs ``Summary`` keeps only
count/mean/min/max -- see EXPERIMENTS.md for the methodology note).

Process mode is the default (real client concurrency, one process per
client, fork-preferred); ``mode="thread"`` exists for fast in-process
tests and single-CPU smoke runs.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import random
import threading
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.citysim import Trace
from repro.core.geometry import Rect
from repro.resilience import (
    BreakerOpen,
    DeadlineExceeded,
    ResilientServeClient,
    RetryPolicy,
)
from repro.serve.protocol import ServeError
from repro.workload import QueryWorkload

#: Loadgen op tuples (plain data -- they cross process boundaries):
#: ("update", oid, x, y, t) and ("range", lx, ly, hx, hy, fresh).
Op = tuple


def build_ops(
    trace: Trace,
    n_history: int,
    domain: Rect,
    *,
    query_ratio: float = 100.0,
    query_extent: float = 0.001,
    seed: int = 0,
    fresh_queries: bool = False,
) -> List[Op]:
    """One merged update+query timeline from the trace's online window."""
    updates = [
        ("update", rec.oid, rec.point[0], rec.point[1], rec.t)
        for rec in trace.online_updates(n_history)
    ]
    if not updates:
        raise ValueError("trace has no online samples past the history length")
    ops: List[Tuple[float, int, Op]] = [
        (up[4], i, up) for i, up in enumerate(updates)
    ]
    if query_ratio > 0:
        t_start, t_end = trace.online_span(n_history)
        span = max(t_end - t_start, 1e-9)
        rate = len(updates) / span / query_ratio
        queries = QueryWorkload(
            domain, rate, query_extent, seed=seed
        ).between(t_start, t_end)
        for j, query in enumerate(queries):
            ops.append(
                (
                    query.t,
                    len(updates) + j,
                    (
                        "range",
                        query.rect.lo[0],
                        query.rect.lo[1],
                        query.rect.hi[0],
                        query.rect.hi[1],
                        fresh_queries,
                    ),
                )
            )
    ops.sort(key=lambda e: (e[0], e[1]))
    return [op for _t, _i, op in ops]


def split_ops(ops: Sequence[Op], n_clients: int) -> List[List[Op]]:
    """Partition the timeline: updates by ``oid % N``, queries round-robin.

    Per-object update order is preserved inside its owning client's slice,
    so the daemon's final state is the same as the inline run's no matter
    how the clients' requests interleave (last write per object wins, and
    each object has exactly one writer).
    """
    if n_clients < 1:
        raise ValueError("n_clients must be >= 1")
    slices: List[List[Op]] = [[] for _ in range(n_clients)]
    qi = 0
    for op in ops:
        if op[0] == "update":
            slices[op[1] % n_clients].append(op)
        else:
            slices[qi % n_clients].append(op)
            qi += 1
    return slices


def _run_client(
    host: str,
    port: int,
    ops: Sequence[Op],
    codec: str,
    max_retries: int,
    backoff_cap: float,
    idx: int = 0,
    seed: int = 0,
) -> Dict[str, object]:
    """One client slice on a :class:`ResilientServeClient`.

    The client handles the whole retry discipline (stamps, jittered
    backoff, reconnect); this loop only classifies terminal outcomes.
    ``idx``/``seed`` make both the client identity and its jitter stream
    deterministic per slice.
    """
    latencies: Dict[str, List[float]] = {"update": [], "range": []}
    dropped = errors = 0
    policy = RetryPolicy(
        max_attempts=max(1, max_retries + 1), backoff_cap=backoff_cap
    )
    t_start = perf_counter()
    with ResilientServeClient(
        host,
        port,
        client_id=f"lg-{idx}",
        codec=codec,
        policy=policy,
        rng=random.Random((seed << 16) ^ idx),
    ) as client:
        for op in ops:
            kind = op[0]
            t0 = perf_counter()
            try:
                if kind == "update":
                    client.update(op[1], (op[2], op[3]), op[4])
                else:
                    client.range(
                        (op[1], op[2]), (op[3], op[4]), fresh=bool(op[5])
                    )
            except (BreakerOpen, DeadlineExceeded, ServeError):
                # Retries/deadline exhausted on a shedding or draining
                # daemon: the op is dropped (for a stamped write this is
                # *ambiguous*, which is fine here -- loadgen measures
                # throughput; the chaos harness is what resolves
                # ambiguity by re-driving the same stamp).
                dropped += 1
            except (ConnectionError, OSError):
                errors += 1
            latencies[kind].append(perf_counter() - t0)
        counters = dict(client.counters)
    return {
        "ops": len(ops),
        "acked": counters["acked"],
        "acked_first_try": counters["acked_first_try"],
        "acked_retried": counters["acked_retried"],
        "rejected": counters["rejects"],
        "retries": counters["retries"],
        "dropped": dropped,
        "errors": errors + counters["transport_errors"],
        "reconnects": counters["reconnects"],
        "dedup_acks": counters["dedup_acks"],
        "wall_s": perf_counter() - t_start,
        "latencies": latencies,
    }


def _client_proc_main(
    result_queue,
    idx: int,
    host: str,
    port: int,
    ops: Sequence[Op],
    codec: str,
    max_retries: int,
    backoff_cap: float,
    seed: int,
) -> None:
    try:
        result = _run_client(
            host, port, ops, codec, max_retries, backoff_cap, idx, seed
        )
    except Exception as exc:  # surface child failures instead of hanging
        result = {"fatal": f"{type(exc).__name__}: {exc}"}
    result_queue.put((idx, result))


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over pre-sorted samples (q in [0, 1])."""
    if not sorted_values:
        return float("nan")
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


def latency_summary(values: Sequence[float]) -> Dict[str, float]:
    ordered = sorted(values)
    if not ordered:
        return {"count": 0}
    return {
        "count": len(ordered),
        "mean_ms": sum(ordered) / len(ordered) * 1e3,
        "p50_ms": percentile(ordered, 0.50) * 1e3,
        "p99_ms": percentile(ordered, 0.99) * 1e3,
        "max_ms": ordered[-1] * 1e3,
    }


def run_loadgen(
    host: str,
    port: int,
    ops: Sequence[Op],
    *,
    n_clients: int,
    mode: str = "process",
    codec: str = "json",
    max_retries: int = 16,
    backoff_cap: float = 0.2,
    seed: int = 0,
) -> Dict[str, object]:
    """Drive ``ops`` through ``n_clients`` concurrent clients -> summary."""
    if mode not in ("process", "thread"):
        raise ValueError(f"unknown loadgen mode {mode!r}")
    slices = [s for s in split_ops(ops, n_clients) if s]
    results: List[Optional[Dict[str, object]]] = [None] * len(slices)
    t0 = perf_counter()
    if mode == "process":
        method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        ctx = mp.get_context(method)
        result_queue = ctx.SimpleQueue()
        procs = [
            ctx.Process(
                target=_client_proc_main,
                args=(
                    result_queue,
                    idx,
                    host,
                    port,
                    chunk,
                    codec,
                    max_retries,
                    backoff_cap,
                    seed,
                ),
                name=f"loadgen-client-{idx}",
                daemon=True,
            )
            for idx, chunk in enumerate(slices)
        ]
        for proc in procs:
            proc.start()
        for _ in procs:
            idx, result = result_queue.get()
            results[idx] = result
        for proc in procs:
            proc.join(timeout=10.0)
            if proc.is_alive():  # pragma: no cover - hung child backstop
                proc.terminate()
    else:
        def _worker(idx: int, chunk: Sequence[Op]) -> None:
            try:
                results[idx] = _run_client(
                    host, port, chunk, codec, max_retries, backoff_cap,
                    idx, seed,
                )
            except Exception as exc:
                results[idx] = {"fatal": f"{type(exc).__name__}: {exc}"}

        threads = [
            threading.Thread(target=_worker, args=(idx, chunk), daemon=True)
            for idx, chunk in enumerate(slices)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    wall = perf_counter() - t0
    fatal = [r["fatal"] for r in results if r and "fatal" in r]
    if fatal:
        raise RuntimeError(f"loadgen client failed: {fatal[0]}")
    done: List[Dict[str, object]] = [r for r in results if r is not None]
    merged: Dict[str, List[float]] = {"update": [], "range": []}
    for result in done:
        for kind, values in result["latencies"].items():  # type: ignore[union-attr]
            merged[kind].extend(values)
    all_samples = merged["update"] + merged["range"]
    acked = sum(int(r["acked"]) for r in done)
    rejected = sum(int(r["rejected"]) for r in done)
    attempts = acked + rejected + sum(int(r["errors"]) for r in done)
    return {
        "n_clients": n_clients,
        "ops": sum(int(r["ops"]) for r in done),
        "acked": acked,
        "acked_first_try": sum(int(r.get("acked_first_try", 0)) for r in done),
        "acked_retried": sum(int(r.get("acked_retried", 0)) for r in done),
        "rejected": rejected,
        "retries": sum(int(r["retries"]) for r in done),
        "dropped": sum(int(r["dropped"]) for r in done),
        "errors": sum(int(r["errors"]) for r in done),
        "reconnects": sum(int(r.get("reconnects", 0)) for r in done),
        "dedup_acks": sum(int(r.get("dedup_acks", 0)) for r in done),
        "reject_rate": rejected / attempts if attempts else 0.0,
        "wall_s": wall,
        "ops_per_s": acked / wall if wall > 0 else 0.0,
        "latency": {
            "all": latency_summary(all_samples),
            "update": latency_summary(merged["update"]),
            "range": latency_summary(merged["range"]),
        },
    }
