"""Multi-process client load generator for the serving daemon.

Replays a citysim trace's online window against a running daemon: the
trace's updates and a deterministic :class:`~repro.workload.QueryWorkload`
are merged into one timeline, partitioned across N client processes --
updates by ``oid % N`` so each object's update order is preserved by its
one owning client, queries round-robin -- and each client plays its slice
as fast as the daemon admits it, recording one end-to-end latency sample
per op (retries included: the client-observed latency is the number that
matters under load shedding).

A ``RETRY_AFTER`` response is counted as a reject and retried after the
server-suggested backoff, up to ``max_retries``; a slice that exhausts its
retries drops the op and says so.  p50/p99/max are computed here from the
raw samples by nearest-rank (the obs ``Summary`` keeps only
count/mean/min/max -- see EXPERIMENTS.md for the methodology note).

Process mode is the default (real client concurrency, one process per
client, fork-preferred); ``mode="thread"`` exists for fast in-process
tests and single-CPU smoke runs.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import threading
import time
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.citysim import Trace
from repro.core.geometry import Rect
from repro.serve.protocol import ServeClient
from repro.workload import QueryWorkload

#: Loadgen op tuples (plain data -- they cross process boundaries):
#: ("update", oid, x, y, t) and ("range", lx, ly, hx, hy, fresh).
Op = tuple


def build_ops(
    trace: Trace,
    n_history: int,
    domain: Rect,
    *,
    query_ratio: float = 100.0,
    query_extent: float = 0.001,
    seed: int = 0,
    fresh_queries: bool = False,
) -> List[Op]:
    """One merged update+query timeline from the trace's online window."""
    updates = [
        ("update", rec.oid, rec.point[0], rec.point[1], rec.t)
        for rec in trace.online_updates(n_history)
    ]
    if not updates:
        raise ValueError("trace has no online samples past the history length")
    ops: List[Tuple[float, int, Op]] = [
        (up[4], i, up) for i, up in enumerate(updates)
    ]
    if query_ratio > 0:
        t_start, t_end = trace.online_span(n_history)
        span = max(t_end - t_start, 1e-9)
        rate = len(updates) / span / query_ratio
        queries = QueryWorkload(
            domain, rate, query_extent, seed=seed
        ).between(t_start, t_end)
        for j, query in enumerate(queries):
            ops.append(
                (
                    query.t,
                    len(updates) + j,
                    (
                        "range",
                        query.rect.lo[0],
                        query.rect.lo[1],
                        query.rect.hi[0],
                        query.rect.hi[1],
                        fresh_queries,
                    ),
                )
            )
    ops.sort(key=lambda e: (e[0], e[1]))
    return [op for _t, _i, op in ops]


def split_ops(ops: Sequence[Op], n_clients: int) -> List[List[Op]]:
    """Partition the timeline: updates by ``oid % N``, queries round-robin.

    Per-object update order is preserved inside its owning client's slice,
    so the daemon's final state is the same as the inline run's no matter
    how the clients' requests interleave (last write per object wins, and
    each object has exactly one writer).
    """
    if n_clients < 1:
        raise ValueError("n_clients must be >= 1")
    slices: List[List[Op]] = [[] for _ in range(n_clients)]
    qi = 0
    for op in ops:
        if op[0] == "update":
            slices[op[1] % n_clients].append(op)
        else:
            slices[qi % n_clients].append(op)
            qi += 1
    return slices


def _run_client(
    host: str,
    port: int,
    ops: Sequence[Op],
    codec: str,
    max_retries: int,
    backoff_cap: float,
) -> Dict[str, object]:
    latencies: Dict[str, List[float]] = {"update": [], "range": []}
    acked = rejected = retries = dropped = errors = 0
    t_start = perf_counter()
    with ServeClient(host, port, codec=codec) as client:
        for op in ops:
            kind = op[0]
            t0 = perf_counter()
            attempts = 0
            while True:
                if kind == "update":
                    response = client.request(
                        "update", oid=op[1], point=[op[2], op[3]], t=op[4]
                    )
                else:
                    response = client.request(
                        "range",
                        rect=[[op[1], op[2]], [op[3], op[4]]],
                        fresh=bool(op[5]),
                    )
                if response.get("ok"):
                    acked += 1
                    break
                if response.get("code") == "RETRY_AFTER":
                    rejected += 1
                    if attempts >= max_retries:
                        dropped += 1
                        break
                    attempts += 1
                    retries += 1
                    time.sleep(
                        min(float(response.get("retry_after", 0.01)), backoff_cap)
                    )
                    continue
                errors += 1
                break
            latencies[kind].append(perf_counter() - t0)
    return {
        "ops": len(ops),
        "acked": acked,
        "rejected": rejected,
        "retries": retries,
        "dropped": dropped,
        "errors": errors,
        "wall_s": perf_counter() - t_start,
        "latencies": latencies,
    }


def _client_proc_main(
    result_queue,
    idx: int,
    host: str,
    port: int,
    ops: Sequence[Op],
    codec: str,
    max_retries: int,
    backoff_cap: float,
) -> None:
    try:
        result = _run_client(host, port, ops, codec, max_retries, backoff_cap)
    except Exception as exc:  # surface child failures instead of hanging
        result = {"fatal": f"{type(exc).__name__}: {exc}"}
    result_queue.put((idx, result))


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over pre-sorted samples (q in [0, 1])."""
    if not sorted_values:
        return float("nan")
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


def latency_summary(values: Sequence[float]) -> Dict[str, float]:
    ordered = sorted(values)
    if not ordered:
        return {"count": 0}
    return {
        "count": len(ordered),
        "mean_ms": sum(ordered) / len(ordered) * 1e3,
        "p50_ms": percentile(ordered, 0.50) * 1e3,
        "p99_ms": percentile(ordered, 0.99) * 1e3,
        "max_ms": ordered[-1] * 1e3,
    }


def run_loadgen(
    host: str,
    port: int,
    ops: Sequence[Op],
    *,
    n_clients: int,
    mode: str = "process",
    codec: str = "json",
    max_retries: int = 16,
    backoff_cap: float = 0.2,
) -> Dict[str, object]:
    """Drive ``ops`` through ``n_clients`` concurrent clients -> summary."""
    if mode not in ("process", "thread"):
        raise ValueError(f"unknown loadgen mode {mode!r}")
    slices = [s for s in split_ops(ops, n_clients) if s]
    results: List[Optional[Dict[str, object]]] = [None] * len(slices)
    t0 = perf_counter()
    if mode == "process":
        method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        ctx = mp.get_context(method)
        result_queue = ctx.SimpleQueue()
        procs = [
            ctx.Process(
                target=_client_proc_main,
                args=(
                    result_queue,
                    idx,
                    host,
                    port,
                    chunk,
                    codec,
                    max_retries,
                    backoff_cap,
                ),
                name=f"loadgen-client-{idx}",
                daemon=True,
            )
            for idx, chunk in enumerate(slices)
        ]
        for proc in procs:
            proc.start()
        for _ in procs:
            idx, result = result_queue.get()
            results[idx] = result
        for proc in procs:
            proc.join(timeout=10.0)
            if proc.is_alive():  # pragma: no cover - hung child backstop
                proc.terminate()
    else:
        def _worker(idx: int, chunk: Sequence[Op]) -> None:
            try:
                results[idx] = _run_client(
                    host, port, chunk, codec, max_retries, backoff_cap
                )
            except Exception as exc:
                results[idx] = {"fatal": f"{type(exc).__name__}: {exc}"}

        threads = [
            threading.Thread(target=_worker, args=(idx, chunk), daemon=True)
            for idx, chunk in enumerate(slices)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    wall = perf_counter() - t0
    fatal = [r["fatal"] for r in results if r and "fatal" in r]
    if fatal:
        raise RuntimeError(f"loadgen client failed: {fatal[0]}")
    done: List[Dict[str, object]] = [r for r in results if r is not None]
    merged: Dict[str, List[float]] = {"update": [], "range": []}
    for result in done:
        for kind, values in result["latencies"].items():  # type: ignore[union-attr]
            merged[kind].extend(values)
    all_samples = merged["update"] + merged["range"]
    acked = sum(int(r["acked"]) for r in done)
    rejected = sum(int(r["rejected"]) for r in done)
    attempts = acked + rejected + sum(int(r["errors"]) for r in done)
    return {
        "n_clients": n_clients,
        "ops": sum(int(r["ops"]) for r in done),
        "acked": acked,
        "rejected": rejected,
        "retries": sum(int(r["retries"]) for r in done),
        "dropped": sum(int(r["dropped"]) for r in done),
        "errors": sum(int(r["errors"]) for r in done),
        "reject_rate": rejected / attempts if attempts else 0.0,
        "wall_s": wall,
        "ops_per_s": acked / wall if wall > 0 else 0.0,
        "latency": {
            "all": latency_summary(all_samples),
            "update": latency_summary(merged["update"]),
            "range": latency_summary(merged["range"]),
        },
    }
