"""``repro.serve`` -- the concurrent serving layer.

A long-lived asyncio TCP daemon around the repo's index engines: a single
writer task behind a bounded queue absorbs a sustained update stream while
snapshot read replicas serve range/kNN with bounded, reported staleness,
per-client token buckets shed overload with explicit ``RETRY_AFTER``
responses, and the durability layer's WAL/checkpoints make every
acknowledged write crash-recoverable.  ``repro serve`` runs the daemon;
``repro bench-serve`` drives it with the multi-process load generator and
emits the BENCH ``serve`` section (p50/p99/max latency, sustained ops/sec,
reject rate per client count).
"""

from repro.serve.admission import AdmissionController, TokenBucket
from repro.serve.lifecycle import (
    ShutdownRequested,
    describe_teardown,
    handle_signals,
    teardown_run,
)
from repro.serve.protocol import (
    ProtocolError,
    ServeClient,
    ServeError,
    codecs_available,
)
from repro.serve.replica import ReplicaSet, knn_search
from repro.serve.server import ServeConfig, ServerThread, ServeServer
from repro.serve.service import EngineService

__all__ = [
    "AdmissionController",
    "EngineService",
    "ProtocolError",
    "ReplicaSet",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeServer",
    "ServerThread",
    "ShutdownRequested",
    "TokenBucket",
    "codecs_available",
    "describe_teardown",
    "handle_signals",
    "knn_search",
    "teardown_run",
]
