"""The engine service behind the daemon: one index, one writing actor.

:class:`EngineService` wraps a registered index (or a sharded/parallel
router) the same way :class:`~repro.workload.SimulationDriver` does for the
batch path: it keeps the acknowledged-positions ledger, logs every write to
the WAL *before* acknowledging it, charges I/O under the standard
categories, and checkpoints only at quiescent points.  The concurrency
contract mirrors the worker-pool one (one actor touches the structure at a
time):

* ``ack_update`` runs on the event-loop thread -- it is pure bookkeeping
  (WAL append + ledger write), never touches the index.
* ``apply``, ``query_*``, ``fork_document`` and ``checkpoint`` touch the
  index and therefore run only on the daemon's single writer executor
  (or on the event loop while it is provably quiescent).

Because the WAL is written before the ack and the ledger tracks *acked*
(not applied) positions, a crash at any point recovers exactly the acked
prefix: :func:`repro.durability.recover` replays what was acknowledged,
nothing more, nothing less -- the same guarantee the batch driver gives.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.geometry import Point, Rect
from repro.engine.buffer import PendingUpdate
from repro.resilience.dedup import DedupJournal
from repro.serve.replica import Neighbor, knn_search
from repro.storage.iostats import IOCategory
from repro.storage.snapshot import build_document

#: One acknowledged write queued for the writer task:
#: (oid, old position or None, new position, timestamp, ack sequence).
WriteOp = Tuple[int, Optional[Point], Point, float, int]


class EngineService:
    """Owns the primary index and its durability hooks for the daemon."""

    def __init__(
        self,
        index,
        store,
        kind: str,
        domain: Rect,
        *,
        durability=None,
    ) -> None:
        self.index = index
        self.store = store
        self.kind = kind
        self.domain = domain
        self.durability = durability
        if durability is not None and not durability.attached:
            durability.attach(index, kind=kind)
        #: Last *acknowledged* position per object -- the ``old_point`` the
        #: next update for that object logs and applies with.
        self.positions: Dict[int, Point] = {}
        #: Monotone op counters: acked advances at WAL-log time (event
        #: loop), applied advances when the writer lands the op.
        self.acked = 0
        self.applied = 0
        #: Per-client idempotency watermarks (event-loop only, like the
        #: ledger).  Journaled through checkpoints so a stamped retry
        #: dedups across a daemon restart.
        self.dedup = DedupJournal()
        if durability is not None:
            durability.state_provider = lambda: {"dedup": self.dedup.to_state()}

    # -- load (writer thread or pre-serving setup) -----------------------

    def load(
        self, positions: Mapping[int, Point], now: Optional[float] = None
    ) -> None:
        """Bulk-load current positions as BUILD I/O + baseline checkpoint."""
        stats = getattr(self.store, "stats", None)
        ctx = stats.category(IOCategory.BUILD) if stats else nullcontext()
        with ctx:
            for oid, point in positions.items():
                pos = tuple(point)
                self.index.insert(oid, pos, now=now)
                self.positions[oid] = pos
        if self.durability is not None:
            self.durability.checkpoint()

    def adopt_recovered(self, recovery_report=None) -> None:
        """Take over state rebuilt by :func:`repro.durability.recover`.

        The constructor's ``index`` is the recovered structure; this
        derives the acked-positions ledger from it and restores the dedup
        journal from the checkpoint's ``app_state`` plus the replayed WAL
        tail's idempotency stamps -- the restart half of exactly-once.
        Called instead of :meth:`load` (which bulk-inserts from a trace and
        would double-apply everything the recovered index already holds).
        """
        self.positions = {
            oid: tuple(pos)
            for oid, pos in self.index.range_search(self.domain)
        }
        if recovery_report is not None:
            app_state = recovery_report.app_state or {}
            self.dedup = DedupJournal.from_state(app_state.get("dedup"))
            self.dedup.absorb_replay(recovery_report.dedup_records)
            if self.durability is not None:
                self.durability.state_provider = (
                    lambda: {"dedup": self.dedup.to_state()}
                )

    # -- write path ------------------------------------------------------

    def ack_update(
        self,
        oid: int,
        point: Sequence[float],
        t: float,
        *,
        client: Optional[str] = None,
        rid: Optional[int] = None,
    ) -> WriteOp:
        """Log + ledger one write; returns the op to queue.  Loop thread.

        The WAL append happens here, *before* the caller sends the ack --
        so an ack always implies durability (per the sync policy), even
        though the index applies the op later.  If the append raises
        (e.g. an injected crash), nothing was acked and the ledger is
        untouched.  ``client``/``rid`` is the caller's idempotency stamp,
        journaled on the record; the caller must have consulted
        :attr:`dedup` first -- this method always applies.
        """
        pos = tuple(float(c) for c in point)
        old = self.positions.get(oid)
        if self.durability is not None:
            if old is None:
                self.durability.log_insert(oid, pos, t, client=client, rid=rid)
            else:
                self.durability.log_update(
                    oid, old, pos, t, client=client, rid=rid
                )
        self.positions[oid] = pos
        self.acked += 1
        return (oid, old, pos, t, self.acked)

    def apply(self, batch: Sequence[WriteOp]) -> int:
        """Apply acked ops in ack order.  Writer thread only."""
        stats = getattr(self.store, "stats", None)
        ctx = stats.category(IOCategory.UPDATE) if stats else nullcontext()
        applied = 0
        apply_batch = getattr(self.index, "apply_batch", None)
        with ctx:
            if apply_batch is not None:
                pending = [
                    PendingUpdate(
                        oid=oid, old_point=old, point=pos, t=t, seq=seq
                    )
                    for oid, old, pos, t, seq in batch
                ]
                applied = int(apply_batch(pending))
            else:
                for oid, old, pos, t, _seq in batch:
                    if old is None:
                        self.index.insert(oid, pos, now=t)
                    else:
                        self.index.update(oid, old, pos, now=t)
                    applied += 1
        self.applied += applied
        if self.durability is not None:
            self.durability.note_applied(applied)
        return applied

    # -- read path (writer thread for fresh reads; replicas elsewhere) ---

    def query_range(
        self, lo: Sequence[float], hi: Sequence[float]
    ) -> List[Tuple[int, Point]]:
        stats = getattr(self.store, "stats", None)
        ctx = stats.category(IOCategory.QUERY) if stats else nullcontext()
        with ctx:
            return self.index.range_search(Rect(lo, hi))

    def query_knn(self, point: Sequence[float], k: int) -> List[Neighbor]:
        stats = getattr(self.store, "stats", None)
        ctx = stats.category(IOCategory.QUERY) if stats else nullcontext()
        with ctx:
            return knn_search(self.index, point, k, self.domain)

    # -- snapshots / checkpoints -----------------------------------------

    def fork_document(self) -> Tuple[int, Dict]:
        """-> (applied seq, snapshot document).  Writer thread only, so the
        document is a consistent fork: no apply races the page walk."""
        return self.applied, build_document(self.index, kind=self.kind)

    def maybe_checkpoint(self) -> None:
        """Cadence-driven checkpoint; caller must hold quiescence."""
        if self.durability is not None:
            self.durability.maybe_checkpoint()

    def checkpoint(self) -> Optional[int]:
        """Forced checkpoint; caller must hold quiescence (queue empty and
        the writer idle) so the covered WAL seq is truthful."""
        if self.durability is None:
            return None
        info = self.durability.checkpoint()
        return getattr(info, "ordinal", None)

    # -- lifecycle / introspection ---------------------------------------

    def close_durability(self) -> None:
        if self.durability is not None:
            self.durability.close()

    def close_index(self) -> None:
        closer = getattr(self.index, "close", None)
        if closer is not None:
            closer()

    def stats_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "kind": self.kind,
            "objects": len(self.positions),
            "acked": self.acked,
            "applied": self.applied,
            "dedup": self.dedup.metrics_dict(),
        }
        stats = getattr(self.store, "stats", None)
        if stats is not None:
            out["io"] = stats.to_dict()
        if self.durability is not None:
            out["durability"] = self.durability.metrics_dict()
        return out
