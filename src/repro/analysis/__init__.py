"""Index diagnostics: the structural quantities the paper reasons about.

The CT-R-tree's design arguments are about *structure*: MBR tightness and
overlap (query cost), page occupancy (space), split counts (update cost),
how many objects sit in overflow buffers.  This package measures them
directly on live indexes, for experiment logs and for tests that pin the
paper's structural claims (e.g. "qs-regions are never split").
"""

from repro.analysis.stats import (
    CTRTreeStats,
    RTreeStats,
    ct_tree_stats,
    overlap_factor,
    rtree_stats,
)
from repro.analysis.workload_stats import TrailStats, trail_stats

__all__ = [
    "CTRTreeStats",
    "RTreeStats",
    "ct_tree_stats",
    "overlap_factor",
    "rtree_stats",
    "TrailStats",
    "trail_stats",
]
