"""Structural statistics for the R-tree family and the CT-R-tree."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.ctrtree import CTRTree
from repro.core.geometry import Rect
from repro.core.overflow import NodeBuffer
from repro.rtree.rtree import RTree


@dataclass
class RTreeStats:
    """A structural snapshot of one R-tree."""

    height: int
    node_count: int
    leaf_count: int
    object_count: int
    avg_leaf_fill: float
    avg_leaf_area: float
    leaf_overlap_factor: float
    dead_space_ratio: float

    def as_row(self) -> dict:
        return {
            "height": self.height,
            "nodes": self.node_count,
            "leaves": self.leaf_count,
            "objects": self.object_count,
            "avg fill": self.avg_leaf_fill,
            "avg leaf area": self.avg_leaf_area,
            "overlap": self.leaf_overlap_factor,
            "dead space": self.dead_space_ratio,
        }


def overlap_factor(rects: List[Rect]) -> float:
    """Average number of *other* rectangles each rectangle intersects.

    The quantity behind "searching an object may involve traversing several
    paths": higher overlap means more subtrees qualify per query point.
    Quadratic in the input; intended for diagnostics, not hot paths.
    """
    n = len(rects)
    if n < 2:
        return 0.0
    intersections = 0
    for i, a in enumerate(rects):
        for b in rects[i + 1 :]:
            if a.intersects(b):
                intersections += 1
    return 2.0 * intersections / n


def _dead_space(leaf_rects: List[Rect], leaf_tights: List[Rect]) -> float:
    """Fraction of the registered leaf area not covered by the tight MBR of
    the leaf's actual objects -- the alpha-tree's looseness made measurable."""
    registered = sum(r.area for r in leaf_rects)
    tight = sum(t.area for t in leaf_tights)
    if registered <= 0:
        return 0.0
    return max(0.0, 1.0 - tight / registered)


def rtree_stats(tree: RTree) -> RTreeStats:
    leaves = list(tree.iter_leaves())
    leaf_rects = [leaf.mbr for leaf in leaves if leaf.mbr is not None]
    leaf_tights = [
        leaf.tight_mbr() for leaf in leaves if leaf.tight_mbr() is not None
    ]
    object_count = sum(len(leaf.entries) for leaf in leaves)
    return RTreeStats(
        height=tree.height,
        node_count=tree.node_count(),
        leaf_count=len(leaves),
        object_count=object_count,
        avg_leaf_fill=(object_count / len(leaves) / tree.max_entries) if leaves else 0.0,
        avg_leaf_area=(
            sum(r.area for r in leaf_rects) / len(leaf_rects) if leaf_rects else 0.0
        ),
        leaf_overlap_factor=overlap_factor(leaf_rects),
        dead_space_ratio=_dead_space(leaf_rects, leaf_tights),
    )


@dataclass
class CTRTreeStats:
    """A structural snapshot of one CT-R-tree."""

    height: int
    structural_nodes: int
    region_count: int
    object_count: int
    buffered_objects: int
    chain_pages: int
    avg_chain_length: float
    avg_region_area: float
    region_overlap_factor: float
    empty_regions: int
    list_buffers: int
    tree_buffers: int

    @property
    def buffered_fraction(self) -> float:
        return self.buffered_objects / self.object_count if self.object_count else 0.0

    def as_row(self) -> dict:
        return {
            "height": self.height,
            "nodes": self.structural_nodes,
            "regions": self.region_count,
            "objects": self.object_count,
            "buffered": self.buffered_objects,
            "chain pages": self.chain_pages,
            "avg chain": self.avg_chain_length,
            "avg region area": self.avg_region_area,
            "overlap": self.region_overlap_factor,
            "empty regions": self.empty_regions,
        }


def ct_tree_stats(tree: CTRTree) -> CTRTreeStats:
    nodes = list(tree.iter_nodes())
    qs_entries = [qs for _node, qs in tree.iter_qs_entries()]
    rects = [qs.rect for qs in qs_entries]
    chain_pages = sum(len(qs.chain) for qs in qs_entries)
    chains = [len(qs.chain) for qs in qs_entries if qs.chain]
    list_buffers = sum(
        1
        for node in nodes
        if node.buffer.kind == NodeBuffer.KIND_LIST and node.buffer.pages
    )
    tree_buffers = sum(
        1 for node in nodes if node.buffer.kind == NodeBuffer.KIND_TREE
    )
    return CTRTreeStats(
        height=tree.height,
        structural_nodes=len(nodes),
        region_count=len(qs_entries),
        object_count=len(tree),
        buffered_objects=tree.buffered_object_count(),
        chain_pages=chain_pages,
        avg_chain_length=(sum(chains) / len(chains)) if chains else 0.0,
        avg_region_area=(sum(r.area for r in rects) / len(rects)) if rects else 0.0,
        region_overlap_factor=overlap_factor(rects),
        empty_regions=sum(1 for qs in qs_entries if not qs.chain),
        list_buffers=list_buffers,
        tree_buffers=tree_buffers,
    )
