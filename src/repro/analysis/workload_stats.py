"""Workload diagnostics: is a trace change-tolerant-friendly?

The CT-R-tree's premise (paper Section 2) is a specific movement shape:
long confined dwells punctuated by short fast transitions.  This module
quantifies that shape for a trace -- useful both to validate the City
Simulator substitute against the paper's description and to predict, before
building anything, whether a workload will reward a CT-R-tree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.params import CTParams
from repro.core.qsregion import TrailSample, identify_qs_regions


@dataclass
class TrailStats:
    """Movement-shape statistics over a set of trails."""

    object_count: int
    sample_count: int
    #: Median distance between consecutive reports (metres).
    median_step: float
    #: 90th-percentile step -- the travel regime.
    p90_step: float
    #: Fraction of steps below ``dwell_step`` (the confined regime).
    dwell_step_fraction: float
    #: Fraction of total time covered by Phase-1 qs-regions.
    dwell_time_fraction: float
    #: Mean qs-regions per object.
    regions_per_object: float

    @property
    def is_change_tolerant_friendly(self) -> bool:
        """Heuristic: most steps confined, most time inside qs-regions."""
        return self.dwell_step_fraction > 0.6 and self.dwell_time_fraction > 0.5


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def trail_stats(
    histories: Mapping[int, Sequence[TrailSample]],
    params: CTParams = None,
    dwell_step: float = 15.0,
) -> TrailStats:
    """Measure the dwell/travel shape of ``histories``.

    Args:
        histories: per-object trails.
        params: thresholds for the qs-region mining pass (Table-1 defaults).
        dwell_step: step length (metres) below which a report counts as
            confined movement.
    """
    if params is None:
        params = CTParams()
    steps = []
    total_time = 0.0
    dwell_time = 0.0
    region_count = 0
    sample_count = 0
    for trail in histories.values():
        sample_count += len(trail)
        for (p1, _t1), (p2, _t2) in zip(trail, trail[1:]):
            steps.append(math.dist(p1, p2))
        if len(trail) >= 2:
            total_time += trail[-1][1] - trail[0][1]
        regions = identify_qs_regions(trail, params)
        region_count += len(regions)
        dwell_time += sum(region.dwell_time for region in regions)

    steps.sort()
    n_objects = len(histories)
    return TrailStats(
        object_count=n_objects,
        sample_count=sample_count,
        median_step=_percentile(steps, 0.5),
        p90_step=_percentile(steps, 0.9),
        dwell_step_fraction=(
            sum(1 for s in steps if s < dwell_step) / len(steps) if steps else 0.0
        ),
        dwell_time_fraction=(dwell_time / total_time) if total_time > 0 else 0.0,
        regions_per_object=(region_count / n_objects) if n_objects else 0.0,
    )
