"""``repro.resilience`` -- exactly-once serving under failure.

The serving daemon (PR 8) made the index concurrent; this package makes it
survive the failures a long-lived service actually meets:

* :mod:`repro.resilience.dedup` -- the bounded per-client idempotency
  watermark the server journals through the WAL and checkpoint
  ``app_state``, so a retried write acks its original result instead of
  double-applying, across daemon restarts;
* :mod:`repro.resilience.client` -- :class:`ResilientServeClient`: stamped
  retries with capped full-jitter backoff, per-request deadlines,
  transparent reconnect, and a circuit breaker;
* :mod:`repro.resilience.supervisor` -- the ``repro serve --supervise``
  loop: crash detection, budgeted backoff restarts through WAL recovery,
  readiness re-signalling, and MTTR accounting.

The deterministic chaos harness that drives all three against injected
faults lives in :mod:`repro.chaos`.
"""

from repro.resilience.client import (
    BreakerOpen,
    CircuitBreaker,
    DeadlineExceeded,
    ResilientServeClient,
    RetryPolicy,
)
from repro.resilience.dedup import DedupHit, DedupJournal
from repro.resilience.supervisor import (
    RestartEvent,
    Supervisor,
    SupervisorError,
    SupervisorPolicy,
    file_ready_check,
)

__all__ = [
    "BreakerOpen",
    "CircuitBreaker",
    "DeadlineExceeded",
    "DedupHit",
    "DedupJournal",
    "ResilientServeClient",
    "RestartEvent",
    "RetryPolicy",
    "Supervisor",
    "SupervisorError",
    "SupervisorPolicy",
    "file_ready_check",
]
