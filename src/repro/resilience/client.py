"""The resilient client: deadlines, jittered backoff, reconnect, breaker.

:class:`ResilientServeClient` wraps the blocking
:class:`~repro.serve.protocol.ServeClient` with the retry discipline a
client needs when the daemon sheds load, the network resets, or the
process dies mid-request:

* **Idempotency stamps** -- every write carries ``(client_id, rid)``; a
  retry of one logical write reuses its rid, so the server's dedup journal
  (:mod:`repro.resilience.dedup`) acks the original result instead of
  double-applying.  One write is in flight at a time, so rids are a
  monotone watermark on the server.
* **Capped exponential backoff with full jitter** -- sleep
  ``uniform(0, min(cap, max(base * 2^attempt, retry_after_hint)))``.  The
  server's ``retry_after`` hint raises the jitter ceiling, it never becomes
  a fixed lockstep sleep (that is the stampede the jitter exists to break).
* **Transparent reconnect** -- a ``ConnectionError``/timeout/desync closes
  the socket (the stream can be half-read) and the next attempt dials
  fresh.
* **Circuit breaker** -- N consecutive transport failures open the
  circuit; requests fail fast until the cooldown elapses, then exactly one
  half-open probe decides between closing and re-opening.  Clock and sleep
  are injectable so the state machine unit-tests against a fake clock.
* **Per-request deadlines** -- the retry loop never sleeps past the
  deadline; an expired deadline raises :class:`DeadlineExceeded`, which
  marks the write *ambiguous* (maybe applied): resolve by retrying with
  the same stamp, never by assuming it was lost.
"""

from __future__ import annotations

import random
import time
import uuid
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence

from repro.obs import get_registry
from repro.serve.protocol import (
    ERR_RETRY_AFTER,
    ERR_SHUTTING_DOWN,
    ProtocolError,
    ServeClient,
    ServeError,
)


class DeadlineExceeded(RuntimeError):
    """The per-request deadline expired; the write may or may not have been
    applied (ambiguous) -- only a same-stamp retry can resolve it."""

    def __init__(self, op: str, attempts: int, deadline_s: float) -> None:
        super().__init__(
            f"{op!r} exceeded its {deadline_s:.3f}s deadline "
            f"after {attempts} attempt(s)"
        )
        self.op = op
        self.attempts = attempts


class BreakerOpen(RuntimeError):
    """The circuit is open and will not admit a probe before the caller's
    deadline; fail fast instead of queueing doomed work."""

    def __init__(self, retry_after: float) -> None:
        super().__init__(f"circuit open; retry after {retry_after:.3f}s")
        self.retry_after = retry_after


class CircuitBreaker:
    """CLOSED -> OPEN -> HALF_OPEN -> {CLOSED, OPEN} on transport health.

    Only *transport* failures (connection refused/reset, timeout, protocol
    desync) trip it -- an orderly ``RETRY_AFTER`` is the server working as
    designed, not the server being down.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        *,
        threshold: int = 5,
        cooldown_s: float = 1.0,
        clock=time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        if cooldown_s <= 0:
            raise ValueError("breaker cooldown must be > 0")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opens = 0
        self._opened_at = 0.0

    def acquire(self) -> float:
        """0.0 -> proceed (closed, or the half-open probe); > 0 -> the
        circuit is open, wait this long before asking again."""
        if self.state == self.OPEN:
            remaining = self.cooldown_s - (self._clock() - self._opened_at)
            if remaining > 0:
                return remaining
            self.state = self.HALF_OPEN
        return 0.0

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.state = self.CLOSED

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == self.HALF_OPEN or (
            self.state == self.CLOSED
            and self.consecutive_failures >= self.threshold
        ):
            self.state = self.OPEN
            self.opens += 1
            self._opened_at = self._clock()

    def to_dict(self) -> Dict[str, object]:
        return {
            "state": self.state,
            "threshold": self.threshold,
            "cooldown_s": self.cooldown_s,
            "consecutive_failures": self.consecutive_failures,
            "opens": self.opens,
        }


@dataclass(frozen=True)
class RetryPolicy:
    """The retry dial of one :class:`ResilientServeClient`."""

    max_attempts: int = 16
    deadline_s: float = 30.0
    backoff_base: float = 0.02
    backoff_cap: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.deadline_s <= 0 or self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("deadline and backoff bounds must be positive")

    def delay(self, attempt: int, hint: float, rng: random.Random) -> float:
        """Full-jitter backoff for the given (1-based) failed attempt."""
        ceiling = min(
            self.backoff_cap,
            max(self.backoff_base * (2 ** (attempt - 1)), hint),
        )
        return rng.uniform(0.0, ceiling) if ceiling > 0 else 0.0


#: Transport-level failures: retry on a fresh connection.
_TRANSPORT_ERRORS = (ConnectionError, TimeoutError, OSError, ProtocolError)


class ResilientServeClient:
    """A :class:`ServeClient` that survives resets, sheds, and restarts."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        client_id: Optional[str] = None,
        codec: str = "json",
        timeout: float = 5.0,
        policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        clock=time.monotonic,
        sleep=time.sleep,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.codec = codec
        self.timeout = timeout
        self.client_id = client_id or f"rc-{uuid.uuid4().hex[:12]}"
        self.policy = policy or RetryPolicy()
        self.breaker = breaker or CircuitBreaker(clock=clock)
        self._clock = clock
        self._sleep = sleep
        self._rng = rng or random.Random()
        self._client: Optional[ServeClient] = None
        self._rid = 0
        self._connects = 0
        self.counters: Dict[str, int] = {
            "attempts": 0,
            "acked": 0,
            "acked_first_try": 0,
            "acked_retried": 0,
            "rejects": 0,
            "retries": 0,
            "transport_errors": 0,
            "reconnects": 0,
            "dedup_acks": 0,
        }

    # -- connection management ---------------------------------------------

    def _ensure_connected(self) -> ServeClient:
        if self._client is None:
            self._client = ServeClient(
                self.host, self.port, codec=self.codec, timeout=self.timeout
            )
            self._connects += 1
            if self._connects > 1:
                self._count("reconnects")
        return self._client

    def _drop_connection(self) -> None:
        if self._client is not None:
            self._client.close()
            self._client = None

    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "ResilientServeClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def _count(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value
        registry = get_registry()
        if registry.enabled:
            registry.inc(f"resilience.client.{name}", value)

    # -- the retry loop ----------------------------------------------------

    def request(
        self,
        op: str,
        *,
        idempotent: bool = False,
        deadline_s: Optional[float] = None,
        **fields: Any,
    ) -> Dict[str, Any]:
        """One logical request, retried to success, a non-retryable error,
        exhausted attempts, or the deadline.

        ``idempotent=True`` stamps the request with ``(client_id, rid)``;
        the stamp is minted once here and reused verbatim by every retry,
        which is what makes retrying after an ambiguous failure safe.
        """
        if idempotent:
            self._rid += 1
            fields["client"] = self.client_id
            fields["rid"] = self._rid
        deadline = self._clock() + (
            deadline_s if deadline_s is not None else self.policy.deadline_s
        )
        attempts = 0
        last_error: Optional[BaseException] = None
        last_response: Optional[Dict[str, Any]] = None
        while True:
            wait = self.breaker.acquire()
            if wait > 0.0:
                if self._clock() + wait > deadline:
                    raise BreakerOpen(wait)
                self._sleep(wait)
                continue
            attempts += 1
            self._count("attempts")
            hint = 0.0
            try:
                response = self._ensure_connected().request(op, **fields)
            except _TRANSPORT_ERRORS as exc:
                self.breaker.record_failure()
                self._count("transport_errors")
                self._drop_connection()
                last_error, last_response = exc, None
            else:
                self.breaker.record_success()
                if response.get("ok"):
                    self._count("acked")
                    self._count(
                        "acked_first_try" if attempts == 1 else "acked_retried"
                    )
                    if response.get("deduped"):
                        self._count("dedup_acks")
                    return response
                code = response.get("code")
                if code not in (ERR_RETRY_AFTER, ERR_SHUTTING_DOWN):
                    raise ServeError(response)  # not retryable
                self._count("rejects")
                hint = float(response.get("retry_after") or 0.0)
                last_error, last_response = None, response
            if attempts >= self.policy.max_attempts:
                if last_error is not None:
                    raise last_error
                raise ServeError(last_response or {"code": "RETRIES_EXHAUSTED"})
            delay = self.policy.delay(attempts, hint, self._rng)
            if self._clock() + delay > deadline:
                raise DeadlineExceeded(op, attempts, self.policy.deadline_s)
            self._count("retries")
            if delay > 0:
                self._sleep(delay)

    # -- op wrappers (writes stamped, reads naturally idempotent) ----------

    def update(
        self,
        oid: int,
        point: Sequence[float],
        t: float,
        *,
        deadline_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        return self.request(
            "update",
            idempotent=True,
            deadline_s=deadline_s,
            oid=oid,
            point=list(point),
            t=t,
        )

    def batch_update(
        self, updates: Sequence[Sequence[float]], *,
        deadline_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        return self.request(
            "batch_update",
            idempotent=True,
            deadline_s=deadline_s,
            updates=[list(u) for u in updates],
        )

    def range(
        self,
        lo: Sequence[float],
        hi: Sequence[float],
        *,
        fresh: bool = False,
        deadline_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        return self.request(
            "range",
            deadline_s=deadline_s,
            rect=[list(lo), list(hi)],
            fresh=fresh,
        )

    def knn(
        self,
        point: Sequence[float],
        k: int = 1,
        *,
        fresh: bool = False,
        deadline_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        return self.request(
            "knn", deadline_s=deadline_s, point=list(point), k=k, fresh=fresh
        )

    def server_stats(self) -> Dict[str, Any]:
        return self.request("stats")["stats"]

    # -- introspection -----------------------------------------------------

    @property
    def last_rid(self) -> int:
        return self._rid

    def stats(self) -> Dict[str, object]:
        return {
            "client_id": self.client_id,
            "counters": dict(self.counters),
            "breaker": self.breaker.to_dict(),
        }

    def __repr__(self) -> str:
        return (
            f"ResilientServeClient({self.client_id} -> "
            f"{self.host}:{self.port}, breaker={self.breaker.state})"
        )
