"""Idempotent writes: the per-client dedup watermark journal.

Exactly-once semantics under retries rest on one rule: every logical write
carries a ``(client_id, request_id)`` stamp, retries of the same logical
write reuse the same stamp, and the server checks the stamp *before* the
write path runs.  A stamp at or below the client's watermark is a replay:
the server acks with the cached result of the original attempt instead of
applying again.  The stamp rides on the WAL record (``WalRecord.client`` /
``rid``), so the journal is rebuilt after a crash from the checkpoint's
``app_state`` plus the replayed WAL tail -- a retry that straddles a daemon
restart still dedups.

The journal is bounded: per client it keeps the watermark (highest rid
seen) plus a window of the most recent cached acks.  A replay that falls
below the window is still *detected* (rid <= watermark) -- only the cached
ack payload is gone, so the response degrades to a bare dedup ack.  Clients
issue rids monotonically with one logical write in flight per connection
(:class:`repro.resilience.client.ResilientServeClient` enforces this), so
"rid <= watermark" and "already applied" coincide.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple


@dataclass(frozen=True)
class DedupHit:
    """A detected replay: the cached ack of the original application."""

    rid: int
    #: Ack sequence of the original apply; ``None`` when the cached ack was
    #: evicted from the bounded window (the replay is still a replay).
    seq: Optional[int]
    #: How many updates the original (batch) request applied.
    accepted: int = 1


class _ClientState:
    __slots__ = ("max_rid", "acks")

    def __init__(self) -> None:
        self.max_rid = 0
        #: rid -> (seq, accepted), oldest first, bounded by the journal window.
        self.acks: "OrderedDict[int, Tuple[int, int]]" = OrderedDict()


class DedupJournal:
    """Bounded per-client idempotency watermarks + cached acks.

    Single-threaded by design: the daemon consults it only on the event
    loop, the same place WAL appends happen, so check-then-record is atomic
    with respect to other requests.
    """

    def __init__(self, window: int = 256) -> None:
        if window < 1:
            raise ValueError("dedup window must be >= 1")
        self.window = window
        self._clients: Dict[str, _ClientState] = {}
        self.hits = 0
        self.misses = 0
        #: Replays whose cached ack had been evicted (detected, degraded).
        self.evicted_hits = 0

    # -- the serving-path surface -----------------------------------------

    def check(self, client: str, rid: int) -> Optional[DedupHit]:
        """``None`` -> a new write (caller applies then :meth:`record`);
        a :class:`DedupHit` -> a replay (caller acks it, applies nothing)."""
        state = self._clients.get(client)
        if state is None or rid > state.max_rid:
            self.misses += 1
            return None
        self.hits += 1
        cached = state.acks.get(rid)
        if cached is None:
            self.evicted_hits += 1
            return DedupHit(rid=rid, seq=None)
        seq, accepted = cached
        return DedupHit(rid=rid, seq=seq, accepted=accepted)

    def record(self, client: str, rid: int, seq: int, accepted: int = 1) -> None:
        """Remember one applied write's ack under its stamp."""
        state = self._clients.setdefault(client, _ClientState())
        state.max_rid = max(state.max_rid, rid)
        state.acks[rid] = (seq, accepted)
        state.acks.move_to_end(rid)
        while len(state.acks) > self.window:
            state.acks.popitem(last=False)

    # -- journaling through checkpoint + WAL tail --------------------------

    def to_state(self) -> Dict[str, object]:
        """JSON-safe snapshot for the checkpoint envelope's ``app_state``."""
        return {
            "window": self.window,
            "clients": {
                client: {
                    "max_rid": state.max_rid,
                    "acks": [
                        [rid, seq, accepted]
                        for rid, (seq, accepted) in state.acks.items()
                    ],
                }
                for client, state in self._clients.items()
            },
        }

    @classmethod
    def from_state(cls, state: Optional[Dict[str, object]]) -> "DedupJournal":
        if not state:
            return cls()
        journal = cls(window=int(state.get("window", 256)))
        clients = state.get("clients") or {}
        for client, doc in clients.items():
            cs = _ClientState()
            cs.max_rid = int(doc.get("max_rid", 0))
            for rid, seq, accepted in doc.get("acks", []):
                cs.acks[int(rid)] = (int(seq), int(accepted))
            journal._clients[str(client)] = cs
        return journal

    def absorb_replay(
        self, stamps: Iterable[Tuple[str, int, int]]
    ) -> int:
        """Fold the WAL tail's ``(client, rid, seq)`` stamps in (recovery's
        ``RecoveryReport.dedup_records``); returns stamps absorbed.

        Batch stamps repeat one rid across the batch's records; the last
        record's seq wins, matching the live ack (the batch's last seq).
        """
        n = 0
        for client, rid, seq in stamps:
            state = self._clients.setdefault(client, _ClientState())
            if rid in state.acks:
                old_seq, accepted = state.acks[rid]
                state.acks[rid] = (max(old_seq, seq), accepted + 1)
                state.acks.move_to_end(rid)
            else:
                self.record(client, rid, seq)
            n += 1
        return n

    # -- introspection -----------------------------------------------------

    @property
    def clients(self) -> int:
        return len(self._clients)

    @property
    def entries(self) -> int:
        return sum(len(s.acks) for s in self._clients.values())

    def watermark(self, client: str) -> int:
        state = self._clients.get(client)
        return state.max_rid if state is not None else 0

    def metrics_dict(self) -> Dict[str, int]:
        return {
            "window": self.window,
            "clients": self.clients,
            "entries": self.entries,
            "hits": self.hits,
            "misses": self.misses,
            "evicted_hits": self.evicted_hits,
        }

    def __repr__(self) -> str:
        return (
            f"DedupJournal(clients={self.clients}, entries={self.entries}, "
            f"hits={self.hits})"
        )
