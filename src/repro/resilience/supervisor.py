"""The supervisor: crash detection, budgeted restart, readiness re-signal.

``repro serve --supervise`` runs this loop as the parent of the daemon
process: spawn the child, wait for its readiness signal, monitor for exit.
A non-zero exit is a crash: the supervisor (optionally) lets a hook inspect
or damage the WAL directory first (the chaos harness injects torn tails /
CRC flips here -- the crash already happened, the damage models what the
dying process left behind), backs off exponentially, respawns the child --
which recovers through the WAL -- and waits for readiness to reappear.
Each recovery's MTTR (crash detected -> ready again) is recorded.

The restart budget bounds the loop: a daemon that keeps dying (bad disk,
poisoned WAL it cannot repair) stops being restarted instead of flapping
forever.  A clean exit (code 0) or an operator stop ends supervision.

Everything is injectable -- ``spawn`` returns any object with the
``subprocess.Popen`` surface (``poll``/``pid``/``terminate``/``kill``/
``wait``), and clock/sleep are parameters -- so the state machine unit
tests with fake processes and a fake clock, no forking required.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union


class SupervisorError(RuntimeError):
    """The supervised daemon could not be brought (back) to readiness."""


@dataclass(frozen=True)
class SupervisorPolicy:
    """Restart budget and cadence of one supervisor."""

    max_restarts: int = 5
    backoff_base: float = 0.2
    backoff_cap: float = 5.0
    ready_timeout: float = 30.0
    poll_interval: float = 0.05

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff bounds must be >= 0")
        if self.ready_timeout <= 0 or self.poll_interval <= 0:
            raise ValueError("timeouts must be > 0")

    def backoff(self, restart: int) -> float:
        """Delay before the ``restart``-th (1-based) respawn."""
        return min(self.backoff_cap, self.backoff_base * (2 ** (restart - 1)))


@dataclass
class RestartEvent:
    """One crash -> recovery cycle, the unit MTTR is measured over."""

    restart: int
    exit_code: Optional[int]
    backoff_s: float = 0.0
    mttr_s: float = 0.0
    ready: bool = False
    surgery: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "restart": self.restart,
            "exit_code": self.exit_code,
            "backoff_s": self.backoff_s,
            "mttr_s": self.mttr_s,
            "ready": self.ready,
            "surgery": list(self.surgery),
        }


def file_ready_check(
    ready_file: Union[str, Path]
) -> Callable[[object], bool]:
    """Readiness = the ready file exists and names the *current* child.

    The daemon writes ``{host, port, pid}`` atomically once accepting; a
    SIGKILL leaves the previous incarnation's file behind, so the pid match
    is what distinguishes "still stale" from "recovered".
    """
    path = Path(ready_file)

    def check(child: object) -> bool:
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return False
        return doc.get("pid") == getattr(child, "pid", None)

    return check


class Supervisor:
    """Spawn, watch, and restart one daemon process within a budget."""

    def __init__(
        self,
        spawn: Callable[[], object],
        *,
        ready_check: Callable[[object], bool],
        policy: Optional[SupervisorPolicy] = None,
        on_crash: Optional[Callable[[int], Optional[List[str]]]] = None,
        clock=time.monotonic,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        self._spawn = spawn
        self._ready_check = ready_check
        self.policy = policy or SupervisorPolicy()
        self._on_crash = on_crash
        self._clock = clock
        self._stop_event = threading.Event()
        self._custom_sleep = sleep
        self.child: Optional[object] = None
        self.restarts = 0
        self.events: List[RestartEvent] = []
        self.exhausted = False
        self.last_exit_code: Optional[int] = None

    # -- helpers -----------------------------------------------------------

    def _sleep(self, delay: float) -> None:
        if self._custom_sleep is not None:
            self._custom_sleep(delay)
        else:
            # Event.wait so an operator stop() interrupts long backoffs.
            self._stop_event.wait(delay)

    @property
    def child_pid(self) -> Optional[int]:
        return getattr(self.child, "pid", None)

    @property
    def stopping(self) -> bool:
        return self._stop_event.is_set()

    def _wait_ready(self, child: object) -> bool:
        t_end = self._clock() + self.policy.ready_timeout
        while self._clock() < t_end:
            if self._stop_event.is_set():
                return True  # the stop path takes over
            if child.poll() is not None:
                return False  # died before signalling readiness
            if self._ready_check(child):
                return True
            self._sleep(self.policy.poll_interval)
        return False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> object:
        """Spawn the first incarnation and wait for readiness."""
        self.child = self._spawn()
        if not self._wait_ready(self.child):
            if self.child.poll() is None:
                self.child.kill()
                self.child.wait(timeout=10.0)
            raise SupervisorError(
                "daemon did not become ready within "
                f"{self.policy.ready_timeout:.1f}s"
            )
        return self.child

    def run(self) -> int:
        """Supervise until clean exit, operator stop, or budget exhaustion.

        Returns the final child exit code (non-zero when the budget ran
        out on a still-crashing daemon).
        """
        if self.child is None:
            self.start()
        assert self.child is not None
        while True:
            if self._stop_event.is_set():
                return self._stop_child()
            code = self.child.poll()
            if code is None:
                self._sleep(self.policy.poll_interval)
                continue
            self.last_exit_code = code
            if code == 0:
                return 0  # clean drain: supervision is over
            detected = self._clock()
            if self.restarts >= self.policy.max_restarts:
                self.exhausted = True
                return code
            self.restarts += 1
            event = RestartEvent(restart=self.restarts, exit_code=code)
            if self._on_crash is not None:
                event.surgery = list(self._on_crash(self.restarts) or [])
            event.backoff_s = self.policy.backoff(self.restarts)
            self._sleep(event.backoff_s)
            if self._stop_event.is_set():
                self.events.append(event)
                return self._stop_child()
            self.child = self._spawn()
            event.ready = self._wait_ready(self.child)
            event.mttr_s = self._clock() - detected
            self.events.append(event)
            if not event.ready and not self._stop_event.is_set():
                # Ready never came: treat as another crash on the next
                # iteration (kill a hung child so poll() turns non-None).
                if self.child.poll() is None:
                    self.child.kill()

    def stop(self) -> None:
        """Request an orderly end: SIGTERM the child (graceful drain) and
        let :meth:`run` return once it exits.  Thread-safe."""
        self._stop_event.set()

    def _stop_child(self) -> int:
        child = self.child
        if child is None:
            return self.last_exit_code or 0
        if child.poll() is None:
            try:
                child.terminate()
            except OSError:
                pass
            try:
                code = child.wait(timeout=30.0)
            except Exception:
                child.kill()
                code = child.wait(timeout=10.0)
        else:
            code = child.poll()
        self.last_exit_code = code
        return code if code is not None else 0

    # -- introspection -----------------------------------------------------

    def mttr_values(self) -> List[float]:
        return [e.mttr_s for e in self.events if e.ready]

    def to_dict(self) -> Dict[str, object]:
        mttrs = self.mttr_values()
        return {
            "restarts": self.restarts,
            "budget": self.policy.max_restarts,
            "exhausted": self.exhausted,
            "last_exit_code": self.last_exit_code,
            "mttr_mean_s": sum(mttrs) / len(mttrs) if mttrs else None,
            "mttr_max_s": max(mttrs) if mttrs else None,
            "events": [e.to_dict() for e in self.events],
        }
