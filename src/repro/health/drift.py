"""Online drift detection over windowed update telemetry.

The change tolerance of Eq. 1 is a property of the *workload the index
was mined for*; when movement patterns drift, the observable symptom is
the fraction of updates the index absorbs without structural work (its
empirical change tolerance) sliding down while per-update page I/O
climbs.  :class:`DriftMonitor` watches exactly those signals:

* **windowed change tolerance** -- the fraction of updates in the last
  window that were non-structural (lazy hits / in-region rewrites);
* **qs-region residency** -- the fraction of objects currently stored
  inside qs-regions rather than overflow buffers (CT-R-tree only,
  sampled at window close via an uncharged probe);
* **update-I/O EWMA** -- exponentially weighted page I/O per update,
  compared against the best (lowest) window seen since the last reset.

Transitions use double hysteresis: *enter* and *exit* thresholds are
separated (so the state does not flap around one boundary), and a
candidate state must persist for ``confirm_windows`` consecutive windows
before it is committed (so one noisy window cannot demote the index).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, get_registry


class HealthState:
    """The monitor's three-level verdict; ordered worst-last."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    CRITICAL = "critical"
    ALL = (HEALTHY, DEGRADED, CRITICAL)

    #: Numeric severity for ordering comparisons.
    RANK = {HEALTHY: 0, DEGRADED: 1, CRITICAL: 2}


@dataclass(frozen=True)
class DriftThresholds:
    """Hysteresis bands for the state machine.

    Enter thresholds are crossed going *down* in change tolerance; exit
    thresholds sit strictly above them so recovery needs genuinely better
    windows, not boundary noise.
    """

    #: Enter DEGRADED when the tolerance EWMA drops below this.
    degraded_enter: float = 0.5
    #: Return to HEALTHY only when the tolerance EWMA exceeds this.
    degraded_exit: float = 0.65
    #: Enter CRITICAL when the tolerance EWMA drops below this.
    critical_enter: float = 0.2
    #: Leave CRITICAL (back to DEGRADED) above this.
    critical_exit: float = 0.35
    #: DEGRADED when the I/O EWMA exceeds baseline * this factor.
    io_degraded_factor: float = 1.5
    #: CRITICAL when the I/O EWMA exceeds baseline * this factor.
    io_critical_factor: float = 3.0
    #: Consecutive windows a candidate state must persist.
    confirm_windows: int = 2

    def __post_init__(self) -> None:
        if not self.critical_enter <= self.critical_exit:
            raise ValueError("critical_exit must be >= critical_enter")
        if not self.degraded_enter <= self.degraded_exit:
            raise ValueError("degraded_exit must be >= degraded_enter")
        if self.critical_enter > self.degraded_enter:
            raise ValueError("critical_enter must be <= degraded_enter")
        if self.confirm_windows < 1:
            raise ValueError("confirm_windows must be at least 1")


@dataclass(frozen=True)
class WindowStats:
    """One closed window of update telemetry."""

    index: int
    n_updates: int
    change_tolerance: float
    ios_per_update: float
    ewma_tolerance: float
    ewma_io: float
    residency: Optional[float]
    state: str

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "n_updates": self.n_updates,
            "change_tolerance": self.change_tolerance,
            "ios_per_update": self.ios_per_update,
            "ewma_tolerance": self.ewma_tolerance,
            "ewma_io": self.ewma_io,
            "residency": self.residency,
            "state": self.state,
        }


class DriftMonitor:
    """Accumulates per-update telemetry and emits health transitions.

    Args:
        window: updates per window; a window closes (and the state
            machine steps) every ``window`` calls to :meth:`note_update`.
        thresholds: hysteresis bands; defaults to :class:`DriftThresholds`.
        ewma_alpha: weight of the newest window in the EWMAs.
        residency_probe: optional zero-argument callable returning the
            current qs-region residency fraction (or None); sampled once
            per window close, so it may walk the tree uncharged.
        metrics: registry for ``health.*`` counters; defaults to the
            process-global registry (recording only when enabled).
    """

    def __init__(
        self,
        window: int = 256,
        *,
        thresholds: Optional[DriftThresholds] = None,
        ewma_alpha: float = 0.3,
        residency_probe: Optional[Callable[[], Optional[float]]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        self.window = window
        self.thresholds = thresholds if thresholds is not None else DriftThresholds()
        self.ewma_alpha = ewma_alpha
        self.residency_probe = residency_probe
        self._metrics = metrics

        self.state: str = HealthState.HEALTHY
        self.windows: List[WindowStats] = []
        #: (window index, old state, new state) log.
        self.transitions: List[Tuple[int, str, str]] = []

        self._n = 0
        self._lazy = 0
        self._ios = 0
        self._ewma_tolerance: Optional[float] = None
        self._ewma_io: Optional[float] = None
        #: Best (lowest) per-window I/O since the last reset: the healthy
        #: baseline the I/O factors compare against.
        self._io_baseline: Optional[float] = None
        self._candidate: Optional[str] = None
        self._candidate_streak = 0
        self._critical_pending = False

    # -- feeding -----------------------------------------------------------

    def note_update(self, ios: int, lazy: bool) -> Optional[Tuple[str, str]]:
        """Record one applied update; returns ``(old, new)`` on transition.

        Args:
            ios: page I/Os this update cost.
            lazy: True when the update was non-structural (absorbed by a
                qs-region / same-MBR rewrite / leaf-interval hit).
        """
        self._n += 1
        self._ios += ios
        if lazy:
            self._lazy += 1
        if self._n >= self.window:
            return self._close_window()
        return None

    def _close_window(self) -> Optional[Tuple[str, str]]:
        n = self._n
        tolerance = self._lazy / n
        ios_per_update = self._ios / n
        self._n = self._lazy = self._ios = 0

        alpha = self.ewma_alpha
        if self._ewma_tolerance is None:
            self._ewma_tolerance = tolerance
            self._ewma_io = ios_per_update
        else:
            self._ewma_tolerance += alpha * (tolerance - self._ewma_tolerance)
            assert self._ewma_io is not None
            self._ewma_io += alpha * (ios_per_update - self._ewma_io)
        if self._io_baseline is None or ios_per_update < self._io_baseline:
            self._io_baseline = ios_per_update

        residency = self.residency_probe() if self.residency_probe else None
        transition = self._step(self._ewma_tolerance, self._ewma_io)
        stats = WindowStats(
            index=len(self.windows),
            n_updates=n,
            change_tolerance=tolerance,
            ios_per_update=ios_per_update,
            ewma_tolerance=self._ewma_tolerance,
            ewma_io=self._ewma_io,
            residency=residency,
            state=self.state,
        )
        self.windows.append(stats)

        registry = self._metrics if self._metrics is not None else get_registry()
        if registry.enabled:
            registry.inc("health.windows")
            registry.observe("health.window.change_tolerance", tolerance)
            registry.observe("health.window.ios_per_update", ios_per_update)
            if residency is not None:
                registry.observe("health.window.residency", residency)
            if transition is not None:
                registry.inc("health.transitions")
                registry.inc(f"health.transition.{transition[0]}_{transition[1]}")
        return transition

    # -- state machine -----------------------------------------------------

    def _classify(self, tolerance: float, ios: float) -> str:
        """The state the current EWMAs point at, honouring exit bands."""
        t = self.thresholds
        baseline = self._io_baseline if self._io_baseline else 0.0
        io_critical = baseline > 0.0 and ios > baseline * t.io_critical_factor
        io_degraded = baseline > 0.0 and ios > baseline * t.io_degraded_factor
        if self.state == HealthState.CRITICAL:
            # Exit CRITICAL only above the exit band (and calm I/O).
            if tolerance > t.critical_exit and not io_critical:
                if tolerance > t.degraded_exit and not io_degraded:
                    return HealthState.HEALTHY
                return HealthState.DEGRADED
            return HealthState.CRITICAL
        if tolerance < t.critical_enter or io_critical:
            return HealthState.CRITICAL
        if self.state == HealthState.DEGRADED:
            # Exit DEGRADED only above the exit band (and calm I/O).
            if tolerance > t.degraded_exit and not io_degraded:
                return HealthState.HEALTHY
            return HealthState.DEGRADED
        if tolerance < t.degraded_enter or io_degraded:
            return HealthState.DEGRADED
        return HealthState.HEALTHY

    def _step(self, tolerance: float, ios: float) -> Optional[Tuple[str, str]]:
        target = self._classify(tolerance, ios)
        if target == self.state:
            self._candidate = None
            self._candidate_streak = 0
            return None
        if target != self._candidate:
            self._candidate = target
            self._candidate_streak = 0
        self._candidate_streak += 1
        if self._candidate_streak < self.thresholds.confirm_windows:
            return None
        old = self.state
        self.state = target
        self._candidate = None
        self._candidate_streak = 0
        self.transitions.append((len(self.windows), old, target))
        if target == HealthState.CRITICAL:
            self._critical_pending = True
        return (old, target)

    # -- consumers ---------------------------------------------------------

    def consume_critical_transition(self) -> bool:
        """True exactly once per transition into CRITICAL (the driver's
        flush-now trigger)."""
        pending = self._critical_pending
        self._critical_pending = False
        return pending

    def reset(self) -> None:
        """Restart monitoring after a cutover: fresh EWMAs and baseline,
        state back to HEALTHY; the window/transition history is kept."""
        old = self.state
        self.state = HealthState.HEALTHY
        self._n = self._lazy = self._ios = 0
        self._ewma_tolerance = None
        self._ewma_io = None
        self._io_baseline = None
        self._candidate = None
        self._candidate_streak = 0
        self._critical_pending = False
        if old != HealthState.HEALTHY:
            self.transitions.append((len(self.windows), old, HealthState.HEALTHY))

    # -- introspection -----------------------------------------------------

    @property
    def ewma_tolerance(self) -> Optional[float]:
        return self._ewma_tolerance

    @property
    def ewma_io(self) -> Optional[float]:
        return self._ewma_io

    def to_dict(self) -> dict:
        return {
            "state": self.state,
            "window": self.window,
            "windows_closed": len(self.windows),
            "ewma_tolerance": self._ewma_tolerance,
            "ewma_io": self._ewma_io,
            "io_baseline": self._io_baseline,
            "transitions": [list(t) for t in self.transitions],
        }

    def __repr__(self) -> str:
        return (
            f"DriftMonitor(state={self.state}, windows={len(self.windows)}, "
            f"ewma_tolerance={self._ewma_tolerance}, ewma_io={self._ewma_io})"
        )
