"""Online self-healing: shadow rebuild with atomic cutover.

The paper's answer to drifting movement patterns is to rebuild the
CT-R-tree from fresher history (Section 3.4); MOIST-style systems show
the rebuild must happen *around* the live index, not instead of it.
:class:`SelfHealingIndex` wraps any registered (non-sharded) index and
runs that protocol:

1. **monitor** -- every applied update feeds a :class:`DriftMonitor`
   (page I/Os and whether the structure absorbed the update lazily);
2. **mine** -- on DEGRADED (or :meth:`request_rebuild`), re-mine
   qs-regions from the per-object trail windows the wrapper keeps and
   build an empty shadow index on a fresh pager *sharing the live I/O
   ledger* (so post-cutover accounting stays on the books the driver
   reads);
3. **load** -- migrate objects into the shadow in bounded batches, one
   batch per :meth:`advance` call, so the driver loop never stalls;
   live updates are double-applied: already-migrated objects go to both
   structures, not-yet-migrated ones only advance the position ledger
   the loader reads;
4. **verify** -- run :func:`repro.health.verify.verify_index` over the
   finished shadow and require exact object-count agreement;
5. **cut over** -- atomically swap the shadow in (a reference swap; the
   old structure keeps every update it ever acknowledged, so failure at
   any earlier step simply keeps it serving), then flag a durability
   checkpoint, which the driver takes at the next quiescent point.

If rebuild or verification fails, the shadow is discarded, the old
index keeps serving, and one immediate retry targets the robust
fallback kind (the lazy R-tree).  Rebuild and migration I/O is charged
to ``IOCategory.BUILD``; only genuine double-apply work lands in the
caller's UPDATE scope.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.geometry import Point, Rect
from repro.engine.protocol import PageStore, position_of
from repro.engine.registry import IndexOptions, get_spec
from repro.health.drift import DriftMonitor, HealthState
from repro.health.verify import verify_index
from repro.obs.metrics import get_registry
from repro.storage.iostats import IOCategory
from repro.storage.page import PageId
from repro.storage.pager import Pager


class RebuildPhase:
    """Where the shadow rebuild currently stands."""

    IDLE = "idle"
    MINING = "mining"
    LOADING = "loading"
    VERIFYING = "verifying"

    ALL = (IDLE, MINING, LOADING, VERIFYING)


@dataclass(frozen=True)
class HealPolicy:
    """Knobs of the self-healing loop.

    Args:
        trail_window: position samples kept per object; the mining input
            when a rebuild re-derives qs-regions.
        rebuild_batch: objects migrated into the shadow per
            :meth:`SelfHealingIndex.advance` call (the bounded-work knob).
        cooldown_updates: applied updates required between rebuild
            attempts, so a failing rebuild cannot spin.
        fallback_kind: the kind retried immediately when a rebuild or its
            verification fails (None disables the fallback).
        verify_shadow: verify the shadow before cutover (on by default;
            tests exercising the cutover path may disable it).
    """

    trail_window: int = 8
    rebuild_batch: int = 32
    cooldown_updates: int = 1000
    fallback_kind: Optional[str] = "lazy"
    verify_shadow: bool = True

    def __post_init__(self) -> None:
        if self.trail_window < 2:
            raise ValueError("trail_window must be at least 2")
        if self.rebuild_batch < 1:
            raise ValueError("rebuild_batch must be at least 1")
        if self.cooldown_updates < 0:
            raise ValueError("cooldown_updates must be >= 0")


class SelfHealingIndex:
    """Engine wrapper adding drift detection and shadow-rebuild cutover.

    Conforms to the :class:`~repro.engine.protocol.SpatialIndex` surface,
    so the driver, buffer, and durability manager treat it as any other
    index; ``snapshot_target`` exposes the currently serving structure to
    the checkpoint layer.

    Args:
        inner: the index to wrap (any registered non-sharded kind).
        kind: the registry kind of ``inner``.
        domain: the indexed space, for shadow construction.
        monitor: drift monitor; a default one is created when omitted.
        policy: self-healing knobs.
        options: construction options reused for shadows; defaults to
            ``IndexOptions()`` with the wrapper's trail histories patched
            in at mining time.
        durability: optional
            :class:`~repro.durability.DurabilityManager`; cutover flags a
            checkpoint which :meth:`checkpoint_if_due` takes at the next
            quiescent point.
    """

    def __init__(
        self,
        inner,
        kind: str,
        domain: Rect,
        *,
        monitor: Optional[DriftMonitor] = None,
        policy: Optional[HealPolicy] = None,
        options: Optional[IndexOptions] = None,
        durability=None,
    ) -> None:
        get_spec(kind)  # validate early: the wrapper rebuilds by kind
        self.inner = inner
        self.kind = kind
        #: The kind rebuilds target (survives a fallback cutover).
        self.base_kind = kind
        self.domain = domain
        self.policy = policy if policy is not None else HealPolicy()
        self.monitor = monitor if monitor is not None else DriftMonitor()
        self.options = options if options is not None else IndexOptions()
        self.durability = durability
        if self.monitor.residency_probe is None:
            self.monitor.residency_probe = self._residency

        self._stats = inner.pager.stats
        #: Last acknowledged position per object (the loader's source of
        #: truth; uncharged bookkeeping, like the driver's own ledger).
        self._positions: Dict[int, Point] = {}
        #: Recent trail per object, the qs-region mining input.
        self._trails: Dict[int, Deque[Tuple[Point, float]]] = {}
        self._clock = 0.0

        self.phase: str = RebuildPhase.IDLE
        self._shadow = None
        self._shadow_kind = kind
        self._to_load: List[int] = []
        self._load_i = 0
        self._load_pending: Set[int] = set()
        self._migrated: Set[int] = set()

        self.rebuilds_started = 0
        self.rebuilds_completed = 0
        self.rebuilds_failed = 0
        self.cutovers = 0
        self.fallbacks = 0
        self.last_error: Optional[str] = None
        self.checkpoint_due = False
        self._fallback_armed = False
        # First DEGRADED verdict may trigger immediately; later attempts
        # wait out the cooldown.
        self._updates_since_attempt = self.policy.cooldown_updates

    # -- SpatialIndex surface ----------------------------------------------

    @property
    def pager(self) -> PageStore:
        return self.inner.pager

    @property
    def snapshot_target(self):
        """The structure checkpoints/snapshots should capture."""
        return self.inner

    def __len__(self) -> int:
        return len(self.inner)

    def insert(
        self, obj_id: int, point: Sequence[float], now: Optional[float] = None
    ) -> PageId:
        t = self._tick(now)
        pos = position_of(point)
        pid = self.inner.insert(obj_id, pos, now=now)
        self._record(obj_id, pos, t)
        if self.phase != RebuildPhase.IDLE:
            self._shadow_apply(obj_id, None, pos, t)
        self.advance(t)
        return pid

    def update(
        self,
        obj_id: int,
        old_point: Sequence[float],
        new_point: Sequence[float],
        now: Optional[float] = None,
    ) -> PageId:
        t = self._tick(now)
        new_pos = position_of(new_point)
        io_before = self._stats.total()
        lazy_before = self._lazy_counter()
        pid = self.inner.update(obj_id, old_point, new_pos, now=now)
        # Measure the serving index's own cost *before* any shadow work,
        # so the drift windows track the structure being judged.
        ios = self._stats.total() - io_before
        lazy = (
            self._lazy_counter() - lazy_before > 0 if self._tracks_lazy else True
        )
        shadow_old = self._positions.get(obj_id)
        self._record(obj_id, new_pos, t)
        if self.phase != RebuildPhase.IDLE:
            self._shadow_apply(obj_id, shadow_old, new_pos, t)
        self.monitor.note_update(ios, lazy)
        self._updates_since_attempt += 1
        if (
            self.phase == RebuildPhase.IDLE
            and self.monitor.state != HealthState.HEALTHY
            and self._updates_since_attempt > self.policy.cooldown_updates
        ):
            self._start_rebuild(self.base_kind)
        self.advance(t)
        return pid

    def delete(
        self,
        obj_id: int,
        old_point: Optional[Sequence[float]] = None,
        now: Optional[float] = None,
    ) -> bool:
        t = self._tick(now)
        old_pos = (
            self._positions.get(obj_id)
            if old_point is None
            else position_of(old_point)
        )
        removed = get_spec(self.kind).delete(self.inner, obj_id, old_pos, now)
        if removed:
            self._positions.pop(obj_id, None)
            self._trails.pop(obj_id, None)
            if self.phase != RebuildPhase.IDLE:
                self._shadow_delete(obj_id, old_pos, t)
        self.advance(t)
        return bool(removed)

    def range_search(self, rect: Rect) -> List[Tuple[int, Point]]:
        return self.inner.range_search(rect)

    def validate(self) -> List[str]:
        validate = getattr(self.inner, "validate", None)
        return validate() if validate is not None else []

    # -- telemetry delegation (treestats / driver duck-typing) -------------

    @property
    def lazy_hits(self) -> int:
        return getattr(self.inner, "lazy_hits", 0) or 0

    @property
    def relocations(self) -> int:
        return getattr(self.inner, "relocations", 0) or 0

    @property
    def health_state(self) -> str:
        return self.monitor.state

    @property
    def _tracks_lazy(self) -> bool:
        return hasattr(self.inner, "lazy_hits")

    def _lazy_counter(self) -> int:
        return getattr(self.inner, "lazy_hits", 0) or 0

    def _residency(self) -> Optional[float]:
        """Fraction of objects resident in qs-regions (CT-R-tree only)."""
        counter = getattr(self.inner, "buffered_object_count", None)
        if counter is None:
            return None
        n = len(self.inner)
        if n == 0:
            return None
        return (n - counter()) / n

    # -- bookkeeping -------------------------------------------------------

    def _tick(self, now: Optional[float]) -> float:
        if now is not None:
            self._clock = max(self._clock, float(now))
        else:
            self._clock += 1.0
        return self._clock

    def _record(self, obj_id: int, pos: Point, t: float) -> None:
        self._positions[obj_id] = pos
        trail = self._trails.get(obj_id)
        if trail is None:
            trail = self._trails[obj_id] = deque(maxlen=self.policy.trail_window)
        trail.append((pos, t))

    # -- double apply ------------------------------------------------------

    def _shadow_apply(
        self, obj_id: int, old: Optional[Point], pos: Point, t: float
    ) -> None:
        """Mirror a live insert/update into the shadow."""
        if self._shadow is None:
            # Still mining: the load list is snapshotted from the position
            # ledger after mining, so recording the position was enough.
            return
        try:
            if obj_id in self._migrated:
                if old is None:
                    # Defensive: a re-insert of a migrated object.
                    self._shadow.update(obj_id, pos, pos, now=t)
                else:
                    self._shadow.update(obj_id, old, pos, now=t)
            elif (
                self.phase == RebuildPhase.LOADING
                and obj_id in self._load_pending
            ):
                # Not yet migrated: the loader reads the position ledger,
                # which already holds this newest position.
                pass
            else:
                self._shadow.insert(obj_id, pos, now=t)
                self._migrated.add(obj_id)
        except Exception as exc:  # shadow failure never takes down serving
            self._abort(exc)

    def _shadow_delete(
        self, obj_id: int, old_pos: Optional[Point], t: float
    ) -> None:
        if self._shadow is None:
            return
        try:
            if obj_id in self._migrated:
                get_spec(self._shadow_kind).delete(
                    self._shadow, obj_id, old_pos, t
                )
                self._migrated.discard(obj_id)
            else:
                self._load_pending.discard(obj_id)
        except Exception as exc:
            self._abort(exc)

    # -- the rebuild state machine -----------------------------------------

    def request_rebuild(self, kind: Optional[str] = None) -> bool:
        """Manually start a rebuild; returns False if one is running."""
        if self.phase != RebuildPhase.IDLE:
            return False
        self._start_rebuild(kind if kind is not None else self.base_kind)
        return True

    def _start_rebuild(self, kind: str) -> None:
        self._shadow_kind = kind
        self.rebuilds_started += 1
        self._updates_since_attempt = 0
        self.phase = RebuildPhase.MINING
        registry = get_registry()
        if registry.enabled:
            registry.inc("health.rebuild.started")

    def advance(self, now: Optional[float] = None) -> None:
        """Perform one bounded slice of rebuild work (never blocks long)."""
        if self.phase == RebuildPhase.IDLE:
            return
        if now is not None:
            self._clock = max(self._clock, float(now))
        try:
            if self.phase == RebuildPhase.MINING:
                self._advance_mine()
            elif self.phase == RebuildPhase.LOADING:
                self._advance_load()
            elif self.phase == RebuildPhase.VERIFYING:
                self._advance_verify()
        except Exception as exc:
            self._abort(exc)

    def _advance_mine(self) -> None:
        spec = get_spec(self._shadow_kind)
        page_size = getattr(self.inner.pager, "page_size", 4096)
        pager = Pager(page_size=page_size, stats=self._stats)
        histories = None
        if spec.needs_histories:
            # Re-mine qs-regions from the *recent* trail windows -- the
            # whole point of the rebuild: regions matching the pattern the
            # workload has drifted to, not the one it was built for.
            histories = {
                oid: list(trail)
                for oid, trail in self._trails.items()
                if len(trail) >= 2
            }
        base = self.options
        options = IndexOptions(
            max_entries=base.max_entries,
            ct_params=base.ct_params,
            histories=histories if histories is not None else base.histories,
            query_rate=base.query_rate,
            adaptive=base.adaptive,
            split=base.split,
        )
        with self._stats.category(IOCategory.BUILD):
            self._shadow = spec.factory(pager, self.domain, options)
        self._to_load = list(self._positions)
        self._load_pending = set(self._to_load)
        self._load_i = 0
        self._migrated = set()
        self.phase = RebuildPhase.LOADING

    def _advance_load(self) -> None:
        budget = self.policy.rebuild_batch
        with self._stats.category(IOCategory.BUILD):
            while budget > 0 and self._load_i < len(self._to_load):
                obj_id = self._to_load[self._load_i]
                self._load_i += 1
                self._load_pending.discard(obj_id)
                pos = self._positions.get(obj_id)
                if pos is None or obj_id in self._migrated:
                    continue
                self._shadow.insert(obj_id, pos, now=self._clock)
                self._migrated.add(obj_id)
                budget -= 1
        if self._load_i >= len(self._to_load):
            self.phase = RebuildPhase.VERIFYING

    def _advance_verify(self) -> None:
        shadow = self._shadow
        if len(shadow) != len(self._positions):
            raise RuntimeError(
                f"shadow holds {len(shadow)} objects, "
                f"the ledger {len(self._positions)}"
            )
        if self.policy.verify_shadow:
            report = verify_index(shadow, kind=self._shadow_kind)
            if not report.ok:
                raise RuntimeError(
                    f"shadow failed verification: {report.summary()}"
                )
        self._cutover()

    def _cutover(self) -> None:
        self.inner = self._shadow
        self.kind = self._shadow_kind
        self._clear_rebuild_state()
        self.cutovers += 1
        self.rebuilds_completed += 1
        self._fallback_armed = False
        self._updates_since_attempt = 0
        # Never checkpoint mid-flush: the driver (or whoever owns the
        # update buffer) takes it at the next quiescent point, so a
        # checkpoint's covered WAL position stays truthful.
        self.checkpoint_due = self.durability is not None
        self.monitor.reset()
        registry = get_registry()
        if registry.enabled:
            registry.inc("health.rebuild.completed")
            registry.inc("health.cutover")

    def _clear_rebuild_state(self) -> None:
        self._shadow = None
        self._to_load = []
        self._load_i = 0
        self._load_pending = set()
        self._migrated = set()
        self.phase = RebuildPhase.IDLE

    def _abort(self, exc: BaseException) -> None:
        self.rebuilds_failed += 1
        self.last_error = f"{type(exc).__name__}: {exc}"
        failed_kind = self._shadow_kind
        self._clear_rebuild_state()
        registry = get_registry()
        if registry.enabled:
            registry.inc("health.rebuild.failed")
        fallback = self.policy.fallback_kind
        if (
            fallback is not None
            and not self._fallback_armed
            and failed_kind != fallback
        ):
            # One immediate retry as the robust fallback: a plain lazy
            # R-tree needs no mining and always verifies.
            self._fallback_armed = True
            self.fallbacks += 1
            self._start_rebuild(fallback)
        else:
            self._fallback_armed = False
            self._updates_since_attempt = 0

    # -- durability --------------------------------------------------------

    def checkpoint_if_due(self, durability=None) -> bool:
        """Take the post-cutover checkpoint; call at quiescent points only
        (no buffered-but-unapplied updates)."""
        manager = durability if durability is not None else self.durability
        if not self.checkpoint_due or manager is None:
            return False
        manager.checkpoint()
        self.checkpoint_due = False
        return True

    # -- introspection -----------------------------------------------------

    def health_dict(self) -> Dict[str, object]:
        return {
            "state": self.monitor.state,
            "kind": self.kind,
            "base_kind": self.base_kind,
            "phase": self.phase,
            "rebuilds_started": self.rebuilds_started,
            "rebuilds_completed": self.rebuilds_completed,
            "rebuilds_failed": self.rebuilds_failed,
            "cutovers": self.cutovers,
            "fallbacks": self.fallbacks,
            "last_error": self.last_error,
            "objects": len(self._positions),
            "monitor": self.monitor.to_dict(),
        }

    def __repr__(self) -> str:
        return (
            f"SelfHealingIndex(kind={self.kind!r}, state={self.monitor.state}, "
            f"phase={self.phase}, cutovers={self.cutovers}, "
            f"objects={len(self._positions)})"
        )
