"""Index health: invariant verification, drift detection, self-healing.

The CT-R-tree's advantage rests on qs-regions mined from *past* update
history (paper Section 3); when movement patterns drift, change tolerance
silently decays and the paper's own answer is to rebuild (Section 3.4).
This package is the runtime-robustness layer around that observation:

* :mod:`repro.health.verify` -- an fsck-style structural verifier over
  every registered index kind, returning a typed :class:`VerifyReport`
  with per-violation locations, plus a :func:`repair_index` pass for the
  recoverable violation classes (stale hash entries, escaped MBRs, stale
  fill counters, stale shard-router entries);
* :mod:`repro.health.drift` -- an online drift monitor: windowed
  change-tolerance estimate, qs-region residency, and per-window
  update-I/O EWMA, with hysteresis thresholds emitting
  :class:`HealthState` transitions (HEALTHY -> DEGRADED -> CRITICAL);
* :mod:`repro.health.heal` -- :class:`SelfHealingIndex`, an engine
  wrapper that on DEGRADED re-mines qs-regions from the recent trail
  window, rebuilds a shadow index incrementally (bounded work per
  ``advance()``), double-applies live updates to both structures,
  verifies the shadow, then atomically cuts over -- falling back to the
  lazy R-tree if rebuild or verification fails.
"""

from repro.health.drift import (
    DriftMonitor,
    DriftThresholds,
    HealthState,
    WindowStats,
)
from repro.health.heal import HealPolicy, RebuildPhase, SelfHealingIndex
from repro.health.verify import (
    RepairReport,
    VerifyReport,
    Violation,
    repair_index,
    verify_index,
)

__all__ = [
    "DriftMonitor",
    "DriftThresholds",
    "HealthState",
    "WindowStats",
    "HealPolicy",
    "RebuildPhase",
    "SelfHealingIndex",
    "RepairReport",
    "VerifyReport",
    "Violation",
    "repair_index",
    "verify_index",
]
